//! Datasets: generation presets, ordered splits and Table 1 statistics.

use crate::grid::GridSpec;
use crate::preprocess::{self, Filter};
use crate::sim::{CitySim, CitySimConfig};
use crate::types::Trajectory;
use odt_roadnet::{LngLat, Projection, RoadNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Which split a trajectory belongs to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Split {
    /// First 80% by departure time.
    Train,
    /// Next 10%.
    Val,
    /// Last 10%.
    Test,
}

/// A preprocessed, departure-ordered trajectory dataset with its grid.
pub struct Dataset {
    /// City name.
    pub name: String,
    /// All trajectories, sorted by departure time.
    pub trips: Vec<Trajectory>,
    /// The PiT grid covering the data.
    pub grid: GridSpec,
    /// Projection for distance computations.
    pub proj: Projection,
    /// The underlying road network when the dataset was simulated (routing
    /// baselines are given the road network, as in the paper §6.2.1).
    pub network: Option<Arc<RoadNetwork>>,
    train_end: usize,
    val_end: usize,
}

impl Dataset {
    /// Assemble from raw trips: preprocess with the paper's filter, sort by
    /// departure, split 8:1:1, and fit an `lg × lg` grid.
    pub fn from_trips(
        name: impl Into<String>,
        mut trips: Vec<Trajectory>,
        proj: Projection,
        lg: usize,
    ) -> Self {
        let (mut kept, _report) =
            preprocess::apply(std::mem::take(&mut trips), &proj, &Filter::default());
        assert!(kept.len() >= 10, "dataset too small after preprocessing");
        kept.sort_by(|a, b| a.departure().total_cmp(&b.departure()));
        let grid = GridSpec::covering(&kept, lg);
        let n = kept.len();
        let train_end = n * 8 / 10;
        let val_end = n * 9 / 10;
        Dataset {
            name: name.into(),
            trips: kept,
            grid,
            proj,
            network: None,
            train_end,
            val_end,
        }
    }

    /// Generate a synthetic Chengdu-like dataset (see DESIGN.md §1).
    pub fn chengdu_like(n: usize, lg: usize, seed: u64) -> Self {
        Self::simulated(CitySimConfig::chengdu_like(), n, lg, seed)
    }

    /// Generate a synthetic Harbin-like dataset.
    pub fn harbin_like(n: usize, lg: usize, seed: u64) -> Self {
        Self::simulated(CitySimConfig::harbin_like(), n, lg, seed)
    }

    /// Generate from an explicit simulator configuration. `n` is the raw
    /// trip count before preprocessing.
    pub fn simulated(config: CitySimConfig, n: usize, lg: usize, seed: u64) -> Self {
        let name = config.name.clone();
        let sim = CitySim::new(config);
        let mut rng = StdRng::seed_from_u64(seed);
        let trips = sim.generate(n, &mut rng);
        let proj = *sim.projection();
        let mut data = Self::from_trips(name, trips, proj, lg);
        data.network = Some(Arc::new(sim.network().clone()));
        data
    }

    /// A derived dataset whose training split is the first `percent`% of
    /// the original one (validation and test unchanged) — the Table 4
    /// scalability setting.
    pub fn with_train_percent(&self, percent: usize) -> Dataset {
        let sub = self.train_subsample(percent);
        let mut trips = sub.to_vec();
        let new_train_end = trips.len();
        trips.extend_from_slice(&self.trips[self.train_end..]);
        let val_len = self.val_end - self.train_end;
        Dataset {
            name: format!("{}-{}%", self.name, percent),
            trips,
            grid: self.grid,
            proj: self.proj,
            network: self.network.clone(),
            train_end: new_train_end,
            val_end: new_train_end + val_len,
        }
    }

    /// Trajectories of a split.
    pub fn split(&self, s: Split) -> &[Trajectory] {
        match s {
            Split::Train => &self.trips[..self.train_end],
            Split::Val => &self.trips[self.train_end..self.val_end],
            Split::Test => &self.trips[self.val_end..],
        }
    }

    /// A sub-sampled view of the training set (first `percent`% of trips),
    /// as used by the Table 4 scalability study.
    pub fn train_subsample(&self, percent: usize) -> &[Trajectory] {
        assert!((1..=100).contains(&percent), "percent must be 1..=100");
        let n = self.train_end * percent / 100;
        &self.trips[..n.max(1)]
    }

    /// Dataset statistics — the columns of Table 1.
    pub fn stats(&self) -> DatasetStats {
        let n = self.trips.len();
        let mean_tt: f64 = self.trips.iter().map(Trajectory::travel_time).sum::<f64>() / n as f64;
        let mean_dist: f64 = self
            .trips
            .iter()
            .map(|t| t.travel_distance(&self.proj))
            .sum::<f64>()
            / n as f64;
        let mean_interval: f64 = self
            .trips
            .iter()
            .map(Trajectory::mean_sample_interval)
            .sum::<f64>()
            / n as f64;
        let min = self.grid.min;
        let max = self.grid.max;
        let p = Projection::new(LngLat {
            lng: (min.lng + max.lng) / 2.0,
            lat: (min.lat + max.lat) / 2.0,
        });
        let sw = p.to_point(min);
        let ne = p.to_point(max);
        DatasetStats {
            num_trajectories: n,
            mean_travel_time_min: mean_tt / 60.0,
            mean_travel_distance_m: mean_dist,
            mean_sample_interval_s: mean_interval,
            area_width_km: (ne.x - sw.x) / 1_000.0,
            area_height_km: (ne.y - sw.y) / 1_000.0,
        }
    }
}

/// The Table 1 statistics of a dataset.
#[derive(Clone, Debug)]
pub struct DatasetStats {
    /// Number of trajectories after preprocessing.
    pub num_trajectories: usize,
    /// Mean travel time, minutes.
    pub mean_travel_time_min: f64,
    /// Mean travel distance, meters.
    pub mean_travel_distance_m: f64,
    /// Mean interval between GPS fixes, seconds.
    pub mean_sample_interval_s: f64,
    /// Width of the area of interest, km.
    pub area_width_km: f64,
    /// Height of the area of interest, km.
    pub area_height_km: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut cfg = CitySimConfig::chengdu_like();
        cfg.nx = 10;
        cfg.ny = 10;
        Dataset::simulated(cfg, 300, 16, 7)
    }

    #[test]
    fn splits_are_ordered_and_partition() {
        let d = tiny();
        let n = d.trips.len();
        let (tr, va, te) = (
            d.split(Split::Train).len(),
            d.split(Split::Val).len(),
            d.split(Split::Test).len(),
        );
        assert_eq!(tr + va + te, n);
        assert!((tr as f64 / n as f64 - 0.8).abs() < 0.02);
        // Ordered by departure: train's last <= val's first.
        let last_train = d.split(Split::Train).last().unwrap().departure();
        let first_val = d.split(Split::Val).first().unwrap().departure();
        assert!(last_train <= first_val);
    }

    #[test]
    fn preprocessing_enforced() {
        let d = tiny();
        for t in &d.trips {
            assert!(t.travel_time() >= 300.0 && t.travel_time() <= 3_600.0);
            assert!(t.travel_distance(&d.proj) >= 500.0);
            assert!(t.mean_sample_interval() <= 80.0);
        }
    }

    #[test]
    fn stats_plausible_for_chengdu_like() {
        let d = tiny();
        let s = d.stats();
        assert!(s.num_trajectories > 100);
        assert!(s.mean_travel_time_min > 5.0 && s.mean_travel_time_min < 40.0);
        assert!(s.mean_travel_distance_m > 500.0);
        assert!(s.mean_sample_interval_s > 20.0 && s.mean_sample_interval_s < 45.0);
        assert!(s.area_width_km > 3.0 && s.area_width_km < 12.0); // 10-node test grid
    }

    #[test]
    fn subsample_is_prefix() {
        let d = tiny();
        let sub = d.train_subsample(50);
        assert_eq!(sub.len(), d.split(Split::Train).len() / 2);
        assert_eq!(sub[0], d.trips[0]);
    }

    #[test]
    fn train_percent_preserves_val_and_test() {
        let d = tiny();
        let half = d.with_train_percent(50);
        assert_eq!(
            half.split(Split::Train).len(),
            d.split(Split::Train).len() / 2
        );
        assert_eq!(half.split(Split::Val), d.split(Split::Val));
        assert_eq!(half.split(Split::Test), d.split(Split::Test));
        assert!(half.network.is_some());
    }

    #[test]
    fn simulated_carries_network() {
        let d = tiny();
        assert!(d.network.is_some());
        assert!(d.network.as_ref().unwrap().num_nodes() > 0);
    }

    #[test]
    fn deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.trips.len(), b.trips.len());
        assert_eq!(a.trips[0], b.trips[0]);
    }
}
