//! Core trajectory types (paper Definitions 1 and 3).

use odt_roadnet::{LngLat, Projection};
use serde::{Deserialize, Serialize};

/// A timestamped GPS fix.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpsPoint {
    /// Position in degrees.
    pub loc: LngLat,
    /// Unix timestamp, seconds (fractional allowed).
    pub t: f64,
}

/// A trajectory: a time-ordered sequence of GPS fixes (Definition 1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    /// The fixes, ordered by time.
    pub points: Vec<GpsPoint>,
}

impl Trajectory {
    /// Construct, validating temporal order.
    pub fn new(points: Vec<GpsPoint>) -> Self {
        assert!(points.len() >= 2, "a trajectory needs at least two points");
        for w in points.windows(2) {
            assert!(
                w[1].t >= w[0].t,
                "trajectory timestamps must be non-decreasing"
            );
        }
        Trajectory { points }
    }

    /// Number of GPS fixes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false: construction requires two points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Departure time (first fix), Unix seconds.
    pub fn departure(&self) -> f64 {
        self.points[0].t
    }

    /// Arrival time (last fix), Unix seconds.
    pub fn arrival(&self) -> f64 {
        self.points[self.points.len() - 1].t
    }

    /// Travel time in seconds: arrival minus departure (as in Example 1).
    pub fn travel_time(&self) -> f64 {
        self.arrival() - self.departure()
    }

    /// Total along-track distance in meters, measured in the given
    /// projection's planar frame.
    pub fn travel_distance(&self, proj: &Projection) -> f64 {
        self.points
            .windows(2)
            .map(|w| proj.to_point(w[0].loc).distance(&proj.to_point(w[1].loc)))
            .sum()
    }

    /// Mean interval between consecutive fixes, seconds.
    pub fn mean_sample_interval(&self) -> f64 {
        self.travel_time() / (self.points.len() - 1) as f64
    }

    /// Second-of-day of the departure time.
    pub fn departure_second_of_day(&self) -> f64 {
        self.departure().rem_euclid(86_400.0)
    }
}

/// The ODT-Input of Definition 3: origin, destination, departure time.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OdtInput {
    /// Origin coordinate.
    pub origin: LngLat,
    /// Destination coordinate.
    pub dest: LngLat,
    /// Departure time, Unix seconds.
    pub t_dep: f64,
}

impl OdtInput {
    /// The ODT-Input affiliated with a historical trajectory.
    pub fn from_trajectory(t: &Trajectory) -> Self {
        OdtInput {
            origin: t.points[0].loc,
            dest: t.points[t.points.len() - 1].loc,
            t_dep: t.departure(),
        }
    }

    /// Second-of-day of the departure.
    pub fn second_of_day(&self) -> f64 {
        self.t_dep.rem_euclid(86_400.0)
    }

    /// The 5-feature vector the paper feeds to `FC_OD` (Eq. 13):
    /// origin lng/lat, destination lng/lat (normalized into a bounding box
    /// given by `(min, max)` corners) and time-of-day in `[-1, 1]`.
    pub fn features(&self, min: LngLat, max: LngLat) -> [f32; 5] {
        let nx = |lng: f64| (2.0 * (lng - min.lng) / (max.lng - min.lng) - 1.0) as f32;
        let ny = |lat: f64| (2.0 * (lat - min.lat) / (max.lat - min.lat) - 1.0) as f32;
        let tod = (2.0 * self.second_of_day() / 86_400.0 - 1.0) as f32;
        [
            nx(self.origin.lng),
            ny(self.origin.lat),
            nx(self.dest.lng),
            ny(self.dest.lat),
            tod,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lng: f64, lat: f64, t: f64) -> GpsPoint {
        GpsPoint {
            loc: LngLat { lng, lat },
            t,
        }
    }

    #[test]
    fn travel_time_is_arrival_minus_departure() {
        // Example 1: departs 8:00, arrives 8:15 -> 15 min.
        let t = Trajectory::new(vec![
            pt(104.0, 30.6, 8.0 * 3600.0),
            pt(104.01, 30.61, 8.25 * 3600.0),
        ]);
        assert_eq!(t.travel_time(), 900.0);
    }

    #[test]
    fn distance_uses_projection() {
        let proj = Projection::new(LngLat {
            lng: 104.0,
            lat: 30.0,
        });
        let a = proj.to_lnglat(odt_roadnet::Point::new(0.0, 0.0));
        let b = proj.to_lnglat(odt_roadnet::Point::new(300.0, 400.0));
        let t = Trajectory::new(vec![
            GpsPoint { loc: a, t: 0.0 },
            GpsPoint { loc: b, t: 60.0 },
        ]);
        assert!((t.travel_distance(&proj) - 500.0).abs() < 1e-6);
    }

    #[test]
    fn mean_interval() {
        let t = Trajectory::new(vec![
            pt(0.0, 0.0, 0.0),
            pt(0.0, 0.0, 30.0),
            pt(0.0, 0.0, 90.0),
        ]);
        assert_eq!(t.mean_sample_interval(), 45.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_travel() {
        let _ = Trajectory::new(vec![pt(0.0, 0.0, 10.0), pt(0.0, 0.0, 5.0)]);
    }

    #[test]
    fn odt_input_from_trajectory() {
        let t = Trajectory::new(vec![pt(104.0, 30.6, 100.0), pt(104.1, 30.7, 700.0)]);
        let odt = OdtInput::from_trajectory(&t);
        assert_eq!(odt.origin.lng, 104.0);
        assert_eq!(odt.dest.lat, 30.7);
        assert_eq!(odt.t_dep, 100.0);
    }

    #[test]
    fn features_normalized() {
        let odt = OdtInput {
            origin: LngLat { lng: 0.0, lat: 0.0 },
            dest: LngLat { lng: 1.0, lat: 1.0 },
            t_dep: 43_200.0, // noon
        };
        let f = odt.features(LngLat { lng: 0.0, lat: 0.0 }, LngLat { lng: 1.0, lat: 1.0 });
        assert_eq!(f[0], -1.0);
        assert_eq!(f[2], 1.0);
        assert!(f[4].abs() < 1e-6); // noon -> 0
    }
}
