//! Pixelated Trajectories (paper Definition 2).
//!
//! A PiT renders a trajectory as an `L_G × L_G` image with three channels:
//!
//! 1. **Mask** — 1 where the trajectory visits the cell;
//! 2. **ToD** — time of day of the first visit, normalized to `[-1, 1]`;
//! 3. **Time offset** — relative position of the visit within the trip,
//!    normalized to `[-1, 1]`.
//!
//! Cells never visited hold `-1` in every channel. We store the image in
//! NCHW channel-first order `[3, L_G, L_G]` so it feeds the convolutional
//! denoiser directly; accessors use the paper's `(x=row, y=col, channel)`
//! view.

use crate::grid::GridSpec;
use crate::types::Trajectory;
use odt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Number of PiT feature channels.
pub const CHANNELS: usize = 3;
/// Channel index of the visit mask.
pub const CH_MASK: usize = 0;
/// Channel index of the time-of-day feature.
pub const CH_TOD: usize = 1;
/// Channel index of the time-offset feature.
pub const CH_OFFSET: usize = 2;

/// A Pixelated Trajectory: a `[3, L_G, L_G]` image.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pit {
    tensor: Tensor,
    lg: usize,
}

impl Pit {
    /// Rasterize a trajectory onto the grid per Definition 2.
    ///
    /// For each cell, the *earliest* GPS point falling inside determines the
    /// ToD and offset channels.
    pub fn from_trajectory(traj: &Trajectory, grid: &GridSpec) -> Self {
        let lg = grid.lg;
        let mut tensor = Tensor::full(vec![CHANNELS, lg, lg], -1.0);
        let t1 = traj.departure();
        let t_end = traj.arrival();
        let span = (t_end - t1).max(1e-9);
        for p in &traj.points {
            let (row, col) = grid.cell_of(p.loc);
            // Earliest point wins; skip if the cell is already set.
            if tensor.at(&[CH_MASK, row, col]) >= 0.0 {
                continue;
            }
            let tod = 2.0 * (p.t.rem_euclid(86_400.0)) / 86_400.0 - 1.0;
            let offset = 2.0 * (p.t - t1) / span - 1.0;
            tensor.set(&[CH_MASK, row, col], 1.0);
            tensor.set(&[CH_TOD, row, col], tod as f32);
            tensor.set(&[CH_OFFSET, row, col], offset as f32);
        }
        Pit { tensor, lg }
    }

    /// Wrap a raw `[3, L_G, L_G]` tensor (e.g. a diffusion-model output).
    pub fn from_tensor(tensor: Tensor) -> Self {
        let shape = tensor.shape().to_vec();
        assert_eq!(shape.len(), 3, "PiT tensor must be [3, L, L]");
        assert_eq!(shape[0], CHANNELS, "PiT tensor must have 3 channels");
        assert_eq!(shape[1], shape[2], "PiT must be square");
        let lg = shape[1];
        Pit { tensor, lg }
    }

    /// Grid side length `L_G`.
    pub fn lg(&self) -> usize {
        self.lg
    }

    /// The underlying `[3, L_G, L_G]` tensor.
    pub fn tensor(&self) -> &Tensor {
        &self.tensor
    }

    /// Consume into the underlying tensor.
    pub fn into_tensor(self) -> Tensor {
        self.tensor
    }

    /// Value of `channel` at cell `(row, col)`.
    pub fn at(&self, channel: usize, row: usize, col: usize) -> f32 {
        self.tensor.at(&[channel, row, col])
    }

    /// Whether a cell is visited, thresholding the mask channel at 0 as in
    /// Eq. 19 (`True` iff `X[x, y, 1] >= 0`).
    pub fn is_visited(&self, row: usize, col: usize) -> bool {
        self.at(CH_MASK, row, col) >= 0.0
    }

    /// Boolean visit mask, row-major (`L_G²` entries).
    pub fn mask_bool(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.lg * self.lg);
        for row in 0..self.lg {
            for col in 0..self.lg {
                out.push(self.is_visited(row, col));
            }
        }
        out
    }

    /// Number of visited cells.
    pub fn num_visited(&self) -> usize {
        self.mask_bool().iter().filter(|&&b| b).count()
    }

    /// Flat row-major indices of visited cells, the "masked sequence" the
    /// MViT attends over (Eq. 20).
    pub fn visited_indices(&self) -> Vec<usize> {
        self.mask_bool()
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }

    /// Second-of-day of the visit to a cell decoded from the ToD channel,
    /// or `None` when unvisited.
    pub fn visit_second_of_day(&self, row: usize, col: usize) -> Option<f64> {
        if !self.is_visited(row, col) {
            return None;
        }
        let tod = self.at(CH_TOD, row, col) as f64;
        Some((tod + 1.0) / 2.0 * 86_400.0)
    }

    /// Project a raw model output onto valid PiT semantics: mask snapped to
    /// `{-1, 1}`, and where the mask is `-1`, the temporal channels are
    /// reset to `-1` as well. Temporal channels clamp to `[-1, 1]`.
    pub fn sanitized(&self) -> Pit {
        let mut t = self.tensor.clone();
        for row in 0..self.lg {
            for col in 0..self.lg {
                let visited = t.at(&[CH_MASK, row, col]) >= 0.0;
                t.set(&[CH_MASK, row, col], if visited { 1.0 } else { -1.0 });
                for ch in [CH_TOD, CH_OFFSET] {
                    let v = if visited {
                        t.at(&[ch, row, col]).clamp(-1.0, 1.0)
                    } else {
                        -1.0
                    };
                    t.set(&[ch, row, col], v);
                }
            }
        }
        Pit {
            tensor: t,
            lg: self.lg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GpsPoint;
    use odt_roadnet::LngLat;

    fn simple_grid() -> GridSpec {
        GridSpec::new(
            LngLat { lng: 0.0, lat: 0.0 },
            LngLat { lng: 3.0, lat: 3.0 },
            3,
        )
    }

    fn traj_3pt() -> Trajectory {
        // Mirrors Example 2's structure: three points in three cells, at
        // 9:00, 9:36 and 12:00.
        Trajectory::new(vec![
            GpsPoint {
                loc: LngLat { lng: 0.5, lat: 0.5 },
                t: 9.0 * 3600.0,
            },
            GpsPoint {
                loc: LngLat { lng: 1.5, lat: 1.5 },
                t: 9.6 * 3600.0,
            },
            GpsPoint {
                loc: LngLat { lng: 2.5, lat: 2.5 },
                t: 12.0 * 3600.0,
            },
        ])
    }

    #[test]
    fn channels_follow_definition_2() {
        let pit = Pit::from_trajectory(&traj_3pt(), &simple_grid());
        // Visited cells are on the diagonal.
        assert!(pit.is_visited(0, 0) && pit.is_visited(1, 1) && pit.is_visited(2, 2));
        assert_eq!(pit.num_visited(), 3);
        // ToD: 2*t/86400 - 1.
        let tod = |h: f64| (2.0 * h * 3600.0 / 86_400.0 - 1.0) as f32;
        assert!((pit.at(CH_TOD, 0, 0) - tod(9.0)).abs() < 1e-6);
        assert!((pit.at(CH_TOD, 1, 1) - tod(9.6)).abs() < 1e-6);
        assert!((pit.at(CH_TOD, 2, 2) - tod(12.0)).abs() < 1e-6);
        // Offset: first point -1, last +1, middle 2*(0.6/3)-1 = -0.6.
        assert_eq!(pit.at(CH_OFFSET, 0, 0), -1.0);
        assert!((pit.at(CH_OFFSET, 1, 1) + 0.6).abs() < 1e-6);
        assert_eq!(pit.at(CH_OFFSET, 2, 2), 1.0);
        // Unvisited cells are -1 everywhere.
        for ch in 0..CHANNELS {
            assert_eq!(pit.at(ch, 0, 2), -1.0);
        }
    }

    #[test]
    fn earliest_point_wins_cell() {
        let grid = simple_grid();
        let t = Trajectory::new(vec![
            GpsPoint {
                loc: LngLat { lng: 0.5, lat: 0.5 },
                t: 100.0,
            },
            GpsPoint {
                loc: LngLat { lng: 0.6, lat: 0.6 },
                t: 200.0,
            }, // same cell, later
            GpsPoint {
                loc: LngLat { lng: 2.5, lat: 2.5 },
                t: 300.0,
            },
        ]);
        let pit = Pit::from_trajectory(&t, &grid);
        // Offset of cell (0,0) must reflect t=100 (the earliest), i.e. -1.
        assert_eq!(pit.at(CH_OFFSET, 0, 0), -1.0);
    }

    #[test]
    fn visited_indices_row_major() {
        let pit = Pit::from_trajectory(&traj_3pt(), &simple_grid());
        assert_eq!(pit.visited_indices(), vec![0, 4, 8]);
    }

    #[test]
    fn visit_second_of_day_round_trips() {
        let pit = Pit::from_trajectory(&traj_3pt(), &simple_grid());
        let s = pit.visit_second_of_day(1, 1).unwrap();
        assert!((s - 9.6 * 3600.0).abs() < 10.0); // f32 quantization
        assert!(pit.visit_second_of_day(0, 1).is_none());
    }

    #[test]
    fn sanitize_cleans_model_output() {
        let mut t = Tensor::full(vec![3, 2, 2], -1.0);
        t.set(&[CH_MASK, 0, 0], 0.3); // weakly visited
        t.set(&[CH_TOD, 0, 0], 1.7); // out of range
        t.set(&[CH_MASK, 1, 1], -0.2); // not visited
        t.set(&[CH_TOD, 1, 1], 0.9); // stray temporal value
        let pit = Pit::from_tensor(t).sanitized();
        assert_eq!(pit.at(CH_MASK, 0, 0), 1.0);
        assert_eq!(pit.at(CH_TOD, 0, 0), 1.0); // clamped
        assert_eq!(pit.at(CH_MASK, 1, 1), -1.0);
        assert_eq!(pit.at(CH_TOD, 1, 1), -1.0); // reset
    }

    #[test]
    #[should_panic(expected = "3 channels")]
    fn from_tensor_validates_channels() {
        let _ = Pit::from_tensor(Tensor::zeros(vec![2, 4, 4]));
    }

    #[test]
    fn instant_trajectory_does_not_divide_by_zero() {
        let grid = simple_grid();
        let t = Trajectory::new(vec![
            GpsPoint {
                loc: LngLat { lng: 0.5, lat: 0.5 },
                t: 50.0,
            },
            GpsPoint {
                loc: LngLat { lng: 2.5, lat: 0.5 },
                t: 50.0,
            },
        ]);
        let pit = Pit::from_trajectory(&t, &grid);
        assert!(pit.tensor().is_finite());
    }
}
