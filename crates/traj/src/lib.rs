//! # odt-traj
//!
//! The trajectory data substrate of the DOT ODT-Oracle reproduction:
//!
//! * [`GpsPoint`], [`Trajectory`], [`OdtInput`] — the paper's Definitions
//!   1 and 3.
//! * [`GridSpec`] and [`Pit`] — Pixelated Trajectories per Definition 2,
//!   with the three channels Mask / Time-of-day / Time-offset.
//! * [`preprocess`] — the paper's §6.1 cleaning rules (drop trips shorter
//!   than 500 m or 5 min, longer than 1 h, or sampled sparser than 80 s).
//! * [`sim::CitySim`] — the synthetic-city generator standing in for the
//!   proprietary Didi Chengdu / Harbin datasets (see DESIGN.md §1): lattice
//!   road network, rush-hour congestion, hotspot OD demand, logit route
//!   choice and deliberate outlier detours.
//! * [`Dataset`] — departure-time-ordered 8:1:1 splits and the Table 1
//!   statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod grid;
mod pit;
pub mod preprocess;
pub mod sim;
mod types;

pub use dataset::{Dataset, DatasetStats, Split};
pub use grid::GridSpec;
pub use pit::Pit;
pub use types::{GpsPoint, OdtInput, Trajectory};
