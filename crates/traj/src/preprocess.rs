//! Dataset cleaning rules from the paper's §6.1:
//!
//! > "We remove trajectories that traveled less than 500 meters or
//! > 5 minutes, or more than 1 hour during preprocessing. Then, we filter
//! > out sparse trajectories by setting the minimum sampling rate to
//! > 80 seconds."

use crate::types::Trajectory;
use odt_roadnet::Projection;

/// Filtering thresholds; defaults match the paper.
#[derive(Copy, Clone, Debug)]
pub struct Filter {
    /// Minimum travel distance, meters.
    pub min_distance_m: f64,
    /// Minimum travel time, seconds.
    pub min_time_s: f64,
    /// Maximum travel time, seconds.
    pub max_time_s: f64,
    /// Maximum mean interval between fixes, seconds ("minimum sampling
    /// rate" of 80 s).
    pub max_mean_interval_s: f64,
}

impl Default for Filter {
    fn default() -> Self {
        Filter {
            min_distance_m: 500.0,
            min_time_s: 5.0 * 60.0,
            max_time_s: 3_600.0,
            max_mean_interval_s: 80.0,
        }
    }
}

/// Outcome counts of a preprocessing pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FilterReport {
    /// Trajectories kept.
    pub kept: usize,
    /// Dropped: shorter than the distance threshold.
    pub too_short_distance: usize,
    /// Dropped: shorter than the time threshold.
    pub too_short_time: usize,
    /// Dropped: longer than the time threshold.
    pub too_long: usize,
    /// Dropped: sampled too sparsely.
    pub too_sparse: usize,
}

/// Whether a single trajectory passes the filter.
pub fn passes(t: &Trajectory, proj: &Projection, f: &Filter) -> bool {
    classify(t, proj, f).is_none()
}

/// The reason a trajectory would be dropped, or `None` if it passes.
fn classify(t: &Trajectory, proj: &Projection, f: &Filter) -> Option<Reason> {
    let tt = t.travel_time();
    if tt < f.min_time_s {
        return Some(Reason::ShortTime);
    }
    if tt > f.max_time_s {
        return Some(Reason::Long);
    }
    if t.travel_distance(proj) < f.min_distance_m {
        return Some(Reason::ShortDistance);
    }
    if t.mean_sample_interval() > f.max_mean_interval_s {
        return Some(Reason::Sparse);
    }
    None
}

enum Reason {
    ShortDistance,
    ShortTime,
    Long,
    Sparse,
}

/// Apply the filter, returning survivors and a report.
pub fn apply(
    trajectories: Vec<Trajectory>,
    proj: &Projection,
    f: &Filter,
) -> (Vec<Trajectory>, FilterReport) {
    let mut report = FilterReport::default();
    let mut kept = Vec::with_capacity(trajectories.len());
    for t in trajectories {
        match classify(&t, proj, f) {
            None => {
                report.kept += 1;
                kept.push(t);
            }
            Some(Reason::ShortDistance) => report.too_short_distance += 1,
            Some(Reason::ShortTime) => report.too_short_time += 1,
            Some(Reason::Long) => report.too_long += 1,
            Some(Reason::Sparse) => report.too_sparse += 1,
        }
    }
    (kept, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GpsPoint;
    use odt_roadnet::{LngLat, Point};

    fn proj() -> Projection {
        Projection::new(LngLat {
            lng: 104.0,
            lat: 30.0,
        })
    }

    /// A straight trip of `dist` meters over `secs` seconds with `n` fixes.
    fn trip(dist: f64, secs: f64, n: usize) -> Trajectory {
        let p = proj();
        let points = (0..n)
            .map(|i| {
                let frac = i as f64 / (n - 1) as f64;
                GpsPoint {
                    loc: p.to_lnglat(Point::new(dist * frac, 0.0)),
                    t: secs * frac,
                }
            })
            .collect();
        Trajectory::new(points)
    }

    #[test]
    fn good_trip_passes() {
        let t = trip(3_000.0, 900.0, 40);
        assert!(passes(&t, &proj(), &Filter::default()));
    }

    #[test]
    fn short_distance_dropped() {
        let t = trip(400.0, 900.0, 40);
        assert!(!passes(&t, &proj(), &Filter::default()));
    }

    #[test]
    fn short_time_dropped() {
        let t = trip(3_000.0, 200.0, 20);
        assert!(!passes(&t, &proj(), &Filter::default()));
    }

    #[test]
    fn long_trip_dropped() {
        let t = trip(3_000.0, 4_000.0, 100);
        assert!(!passes(&t, &proj(), &Filter::default()));
    }

    #[test]
    fn sparse_trip_dropped() {
        // 900 s with only 5 fixes -> mean interval 225 s > 80 s.
        let t = trip(3_000.0, 900.0, 5);
        assert!(!passes(&t, &proj(), &Filter::default()));
    }

    #[test]
    fn report_counts_reasons() {
        let trips = vec![
            trip(3_000.0, 900.0, 40),   // keep
            trip(400.0, 900.0, 40),     // short distance
            trip(3_000.0, 100.0, 10),   // short time
            trip(3_000.0, 4_000.0, 99), // long
            trip(3_000.0, 900.0, 4),    // sparse
        ];
        let (kept, report) = apply(trips, &proj(), &Filter::default());
        assert_eq!(kept.len(), 1);
        assert_eq!(report.kept, 1);
        assert_eq!(report.too_short_distance, 1);
        assert_eq!(report.too_short_time, 1);
        assert_eq!(report.too_long, 1);
        assert_eq!(report.too_sparse, 1);
    }
}
