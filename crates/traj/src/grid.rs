//! The spatial grid underlying Pixelated Trajectories (Definition 2):
//! the area of interest split into `L_G × L_G` equal cells.

use crate::types::Trajectory;
use odt_roadnet::LngLat;
use serde::{Deserialize, Serialize};

/// An `L_G × L_G` grid over a geographic bounding box.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct GridSpec {
    /// South-west corner of the area of interest.
    pub min: LngLat,
    /// North-east corner of the area of interest.
    pub max: LngLat,
    /// Number of segments per axis (`L_G` in the paper).
    pub lg: usize,
}

impl GridSpec {
    /// Build a grid over an explicit bounding box.
    pub fn new(min: LngLat, max: LngLat, lg: usize) -> Self {
        assert!(lg >= 2, "grid needs at least 2 segments per axis");
        assert!(
            max.lng > min.lng && max.lat > min.lat,
            "degenerate bounding box"
        );
        GridSpec { min, max, lg }
    }

    /// The grid covering all points of the given trajectories, slightly
    /// padded so boundary points fall strictly inside ("usually, the area
    /// covering all historical trajectories").
    pub fn covering(trajectories: &[Trajectory], lg: usize) -> Self {
        let mut min = LngLat {
            lng: f64::INFINITY,
            lat: f64::INFINITY,
        };
        let mut max = LngLat {
            lng: f64::NEG_INFINITY,
            lat: f64::NEG_INFINITY,
        };
        for t in trajectories {
            for p in &t.points {
                min.lng = min.lng.min(p.loc.lng);
                min.lat = min.lat.min(p.loc.lat);
                max.lng = max.lng.max(p.loc.lng);
                max.lat = max.lat.max(p.loc.lat);
            }
        }
        assert!(min.lng.is_finite(), "no points to cover");
        let pad_lng = (max.lng - min.lng).max(1e-9) * 1e-4;
        let pad_lat = (max.lat - min.lat).max(1e-9) * 1e-4;
        GridSpec::new(
            LngLat {
                lng: min.lng - pad_lng,
                lat: min.lat - pad_lat,
            },
            LngLat {
                lng: max.lng + pad_lng,
                lat: max.lat + pad_lat,
            },
            lg,
        )
    }

    /// Map a coordinate to its `(row, col)` cell, clamping out-of-area
    /// points to the border cells. `row` indexes latitude (south → north),
    /// `col` indexes longitude (west → east).
    pub fn cell_of(&self, p: LngLat) -> (usize, usize) {
        let fx = (p.lng - self.min.lng) / (self.max.lng - self.min.lng);
        let fy = (p.lat - self.min.lat) / (self.max.lat - self.min.lat);
        let col = ((fx * self.lg as f64) as isize).clamp(0, self.lg as isize - 1) as usize;
        let row = ((fy * self.lg as f64) as isize).clamp(0, self.lg as isize - 1) as usize;
        (row, col)
    }

    /// Flatten a `(row, col)` cell to a sequence index (row-major), the
    /// order Eq. 17 flattens PiTs in.
    pub fn flat_index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.lg && col < self.lg);
        row * self.lg + col
    }

    /// Inverse of [`GridSpec::flat_index`].
    pub fn cell_of_index(&self, idx: usize) -> (usize, usize) {
        debug_assert!(idx < self.lg * self.lg);
        (idx / self.lg, idx % self.lg)
    }

    /// Center coordinate of a cell.
    pub fn cell_center(&self, row: usize, col: usize) -> LngLat {
        let dlng = (self.max.lng - self.min.lng) / self.lg as f64;
        let dlat = (self.max.lat - self.min.lat) / self.lg as f64;
        LngLat {
            lng: self.min.lng + (col as f64 + 0.5) * dlng,
            lat: self.min.lat + (row as f64 + 0.5) * dlat,
        }
    }

    /// Total number of cells (`L_G²`).
    pub fn num_cells(&self) -> usize {
        self.lg * self.lg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GpsPoint;

    fn grid() -> GridSpec {
        GridSpec::new(
            LngLat { lng: 0.0, lat: 0.0 },
            LngLat { lng: 1.0, lat: 1.0 },
            4,
        )
    }

    #[test]
    fn corners_map_to_corner_cells() {
        let g = grid();
        assert_eq!(
            g.cell_of(LngLat {
                lng: 0.01,
                lat: 0.01
            }),
            (0, 0)
        );
        assert_eq!(
            g.cell_of(LngLat {
                lng: 0.99,
                lat: 0.99
            }),
            (3, 3)
        );
        assert_eq!(
            g.cell_of(LngLat {
                lng: 0.99,
                lat: 0.01
            }),
            (0, 3)
        );
    }

    #[test]
    fn out_of_area_clamps() {
        let g = grid();
        assert_eq!(
            g.cell_of(LngLat {
                lng: -5.0,
                lat: 2.0
            }),
            (3, 0)
        );
    }

    #[test]
    fn flat_round_trip() {
        let g = grid();
        for row in 0..4 {
            for col in 0..4 {
                let i = g.flat_index(row, col);
                assert_eq!(g.cell_of_index(i), (row, col));
            }
        }
        assert_eq!(g.flat_index(0, 0), 0);
        assert_eq!(g.flat_index(3, 3), 15);
    }

    #[test]
    fn cell_center_lands_in_cell() {
        let g = grid();
        for row in 0..4 {
            for col in 0..4 {
                assert_eq!(g.cell_of(g.cell_center(row, col)), (row, col));
            }
        }
    }

    #[test]
    fn covering_encloses_all_points() {
        let t = Trajectory::new(vec![
            GpsPoint {
                loc: LngLat {
                    lng: 104.0,
                    lat: 30.6,
                },
                t: 0.0,
            },
            GpsPoint {
                loc: LngLat {
                    lng: 104.2,
                    lat: 30.8,
                },
                t: 60.0,
            },
        ]);
        let g = GridSpec::covering(&[t.clone()], 8);
        for p in &t.points {
            let (row, col) = g.cell_of(p.loc);
            assert!(row < 8 && col < 8);
        }
        assert!(g.min.lng < 104.0 && g.max.lng > 104.2);
    }
}
