//! Property tests for the cluster's rendezvous shard placement: the
//! three contracts the router leans on (`odt_net::shard` module docs) —
//! placement is a pure function of `(key, shard count, seed)`, keys
//! balance across shards within statistical tolerance, and growing the
//! cluster by one shard only moves keys *onto* the new shard, an
//! expected `1/(N+1)` fraction.

use odt_net::{Region, ShardMap};
use odt_obs::SplitMix64;
use proptest::prelude::*;

fn map(shards: usize, cells: u32, seed: u64) -> ShardMap {
    ShardMap::new(shards, cells, Region::default(), seed)
}

/// A stream of well-spread placement keys (packed OD cell pairs live in
/// the same u64 space; the scores only see the mixed key).
fn keys(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two routers built from the same `(shards, cells, seed)` config
    /// agree on every key, and every placement is in range — the
    /// precondition for retrying a request against sibling replicas.
    #[test]
    fn placement_is_deterministic_and_in_range(
        shards in 1usize..=9,
        cells in 1u32..=128,
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        let a = map(shards, cells, seed);
        let b = map(shards, cells, seed);
        let s = a.shard_of_key(key);
        prop_assert_eq!(s, b.shard_of_key(key));
        prop_assert!(s < shards);
    }

    /// Arbitrary coordinate bit patterns — NaN, infinities, way out of
    /// region — route without panicking and stay in range; rejection is
    /// the downstream oracle's job, never the router's.
    #[test]
    fn any_coordinates_route_in_range(
        shards in 1usize..=6,
        bits in prop::array::uniform4(any::<u64>()),
        t_dep in any::<f64>(),
    ) {
        let m = map(shards, 64, 0xC1A5);
        let q = odt_net::WireQuery {
            o_lng: f64::from_bits(bits[0]),
            o_lat: f64::from_bits(bits[1]),
            d_lng: f64::from_bits(bits[2]),
            d_lat: f64::from_bits(bits[3]),
            t_dep,
        };
        prop_assert!(m.shard_of(&q) < shards);
    }
}

proptest! {
    // The statistical properties sweep thousands of keys per case; a
    // smaller case count keeps the suite fast while still varying the
    // score space (every case is a fresh seed).
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Rendezvous scores are i.i.d. uniform per shard, so keys split
    /// evenly: every shard's share stays within ±30% of the mean (many
    /// standard deviations of slack at this key count).
    #[test]
    fn keys_balance_within_tolerance(
        shards in 2usize..=8,
        seed in any::<u64>(),
        key_seed in any::<u64>(),
    ) {
        let m = map(shards, 64, seed);
        let mut counts = vec![0usize; shards];
        let n_keys = 4_000;
        for k in keys(key_seed, n_keys) {
            counts[m.shard_of_key(k)] += 1;
        }
        let mean = n_keys as f64 / shards as f64;
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) > mean * 0.7 && (c as f64) < mean * 1.3,
                "shard {}/{} holds {} of {} keys (mean {:.0})",
                i, shards, c, n_keys, mean
            );
        }
    }

    /// Growing the cluster from `N` to `N+1` shards never shuffles keys
    /// between the old shards: a key's scores on them are unchanged, so
    /// every remapped key lands on the new shard, and the moved
    /// fraction is the expected `1/(N+1)` within generous slack.
    #[test]
    fn adding_a_shard_only_moves_the_expected_fraction(
        shards in 1usize..=8,
        seed in any::<u64>(),
        key_seed in any::<u64>(),
    ) {
        let old = map(shards, 64, seed);
        let new = map(shards + 1, 64, seed);
        let n_keys = 4_000;
        let mut moved = 0usize;
        for k in keys(key_seed, n_keys) {
            let before = old.shard_of_key(k);
            let after = new.shard_of_key(k);
            if before != after {
                prop_assert_eq!(
                    after, shards,
                    "a remapped key must land on the new shard"
                );
                moved += 1;
            }
        }
        let expect = n_keys as f64 / (shards + 1) as f64;
        prop_assert!(
            (moved as f64) > expect * 0.5 && (moved as f64) < expect * 1.6,
            "moved {} keys, expected ≈{:.0}",
            moved, expect
        );
    }
}
