//! The hardened TCP frontend: acceptor pool, per-connection limits,
//! bounded dispatch into a serving backend, and graceful drain.
//!
//! ## Threading model
//!
//! ```text
//!  acceptor × N ──accept──▶ conn thread (reader)
//!                             │  ▲
//!                 bounded     │  │ bounded reply channel
//!                 dispatch    │  │ (per connection)
//!                 channel     ▼  │
//!                          dispatcher (owns the backend, batches)
//!                             │
//!                             ▼
//!                          conn writer thread
//! ```
//!
//! Every hop is **bounded**: the reader stops reading once
//! `max_inflight_per_conn` requests are outstanding (kernel socket
//! buffers then exert true TCP backpressure on the client), the dispatch
//! channel is a fixed-depth `sync_channel` whose overflow is a typed
//! `backpressure` wire error, and each connection's reply channel is
//! sized to its inflight cap. Nothing buffers without a limit.
//!
//! ## Abuse defenses
//!
//! * **Oversized frames** — the length prefix is checked against
//!   `max_frame_bytes` *before* any payload allocation; the client gets a
//!   `frame_too_large` error and the connection closes (the stream cannot
//!   be resynchronized safely).
//! * **Slowloris** — a partial frame must complete within
//!   `frame_deadline_ms` of its first byte, regardless of how slowly the
//!   bytes trickle; idle connections (no partial frame) close after
//!   `idle_timeout_ms`.
//! * **Connection storms** — a global `max_connections` cap; over-cap
//!   accepts get a typed `over_capacity` error frame and an immediate
//!   close, never a thread.
//! * **Slow consumers** — response writes carry `write_timeout_ms`; a
//!   client that stops reading gets its connection marked dead and torn
//!   down instead of parking the writer forever.
//!
//! ## Graceful drain
//!
//! [`ServerHandle::drain`] flips the server to *draining*: acceptors
//! answer new connections with `server_draining`, readers stop consuming
//! frames, the dispatcher finishes everything already admitted, writers
//! flush, and connections close. If that takes longer than
//! `drain_budget_ms` the server force-stops, dumps the flight recorder,
//! and reports how many connections it had to cut.

use crate::wire::{
    write_frame, WireErrorCode, WireRequest, WireResponse, DEFAULT_MAX_FRAME_BYTES,
    FRAME_HEADER_BYTES,
};
use odt_obs::{event, Level};
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Process-wide serving-instance name, stamped into every
/// [`WireResponse::Ok`]'s `served_by` field so clients (and the router's
/// per-shard attribution) can tell *which* replica answered. Server
/// binaries set it once from `--instance` before accepting traffic.
static INSTANCE_NAME: OnceLock<String> = OnceLock::new();

/// Set this process's serving-instance name. First call wins (the name
/// must be stable for the process lifetime — it keys per-replica tallies
/// downstream); later calls are ignored.
pub fn set_instance_name(name: &str) {
    let _ = INSTANCE_NAME.set(name.to_string());
}

/// This process's serving-instance name. Defaults to `pid-<pid>` when the
/// binary never called [`set_instance_name`] — unique enough on one host
/// that two unconfigured replicas still tally separately.
pub fn instance_name() -> &'static str {
    INSTANCE_NAME.get_or_init(|| format!("pid-{}", std::process::id()))
}

/// Server tuning. `Default` is sized for tests and single-host serving.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Acceptor threads sharing the listener.
    pub acceptor_threads: usize,
    /// Global cap on concurrently served connections.
    pub max_connections: usize,
    /// Per-connection cap on requests admitted but not yet answered;
    /// reading stops (TCP backpressure) at the cap.
    pub max_inflight_per_conn: usize,
    /// Cap on a single frame's payload bytes.
    pub max_frame_bytes: usize,
    /// Socket read poll tick, ms (bounds how fast drain/stop is noticed).
    pub read_timeout_ms: u64,
    /// A partial frame must complete within this many ms of its first
    /// byte (slowloris defense).
    pub frame_deadline_ms: u64,
    /// Close connections with no traffic for this many ms.
    pub idle_timeout_ms: u64,
    /// Per-frame write timeout, ms (slow-consumer defense).
    pub write_timeout_ms: u64,
    /// Depth of the bounded dispatch queue feeding the backend.
    pub dispatch_depth: usize,
    /// Largest batch handed to the backend per dispatch cycle.
    pub max_batch: usize,
    /// Drain budget, ms: in-flight work gets this long to flush before
    /// the server force-stops.
    pub drain_budget_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            acceptor_threads: 2,
            max_connections: 256,
            max_inflight_per_conn: 32,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            read_timeout_ms: 20,
            frame_deadline_ms: 2_000,
            idle_timeout_ms: 30_000,
            write_timeout_ms: 2_000,
            dispatch_depth: 1_024,
            max_batch: 64,
            drain_budget_ms: 2_000,
        }
    }
}

/// One request as the backend sees it.
#[derive(Clone, Debug)]
pub struct NetRequest {
    /// The parsed wire request.
    pub req: WireRequest,
    /// Microseconds the request spent crossing the network boundary
    /// (read → dispatch → batch pickup); backends subtract this from the
    /// wire deadline budget so queueing at the boundary still counts.
    pub age_us: u64,
}

/// What the dispatcher plugs requests into. One instance, owned by the
/// dispatcher thread; batching amortizes any per-call overhead.
///
/// Deliberately NOT `Send`: the backend never leaves the dispatcher
/// thread. Backends over thread-local model state (`Rc`-based tensors)
/// are constructed *on* that thread via [`start_with`]; `Send` backends
/// can take the simpler [`start`].
pub trait NetBackend {
    /// Answer a batch. Each reply is `(index into batch, response)`;
    /// order is free, but every request must be answered exactly once
    /// (the dispatcher fills `internal` errors for indices a buggy
    /// backend misses).
    fn process(&mut self, batch: Vec<NetRequest>) -> Vec<(usize, WireResponse)>;

    /// Housekeeping hook, called on the dispatcher thread after every
    /// processed batch and on every idle poll tick (~20 ms apart when no
    /// traffic flows). Backends use it for work that must share the
    /// backend's thread but not the request path: shadow-scoring a
    /// holdout for model-quality telemetry, refreshing published stats.
    /// Must stay cheap — requests queue behind it.
    fn on_tick(&mut self) {}
}

/// Connection/frame counters, all monotonic except `active`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConnStatsSnapshot {
    /// TCP connections accepted (including later-rejected ones).
    pub opened: u64,
    /// Admitted connections since closed.
    pub closed: u64,
    /// Admitted connections currently open (must be 0 after drain —
    /// the leak check).
    pub active: i64,
    /// Connections refused at the global cap.
    pub rejected_capacity: u64,
    /// Connections refused while draining.
    pub rejected_draining: u64,
    /// Complete frames read.
    pub frames_in: u64,
    /// Frames written.
    pub frames_out: u64,
    /// Payloads that failed UTF-8 or `odt-wire/v1` parsing.
    pub malformed: u64,
    /// Frames refused for size.
    pub too_large: u64,
    /// Connections closed idle.
    pub timeouts_idle: u64,
    /// Connections closed for a frame that never completed (slowloris).
    pub timeouts_frame: u64,
    /// Read-side I/O errors (including peer resets).
    pub read_errors: u64,
    /// Write-side I/O errors/timeouts.
    pub write_errors: u64,
    /// Reader stall episodes at the per-connection inflight cap.
    pub backpressure_stalls: u64,
    /// Requests shed with `backpressure` because the dispatch queue was
    /// full.
    pub dispatch_shed: u64,
    /// Replies dropped because a connection's reply channel was full or
    /// gone.
    pub reply_drops: u64,
    /// Connections cut by a force-stop after the drain budget lapsed.
    pub forced_closes: u64,
}

#[derive(Default)]
struct ConnStats {
    opened: AtomicU64,
    closed: AtomicU64,
    active: AtomicI64,
    rejected_capacity: AtomicU64,
    rejected_draining: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    malformed: AtomicU64,
    too_large: AtomicU64,
    timeouts_idle: AtomicU64,
    timeouts_frame: AtomicU64,
    read_errors: AtomicU64,
    write_errors: AtomicU64,
    backpressure_stalls: AtomicU64,
    dispatch_shed: AtomicU64,
    reply_drops: AtomicU64,
    forced_closes: AtomicU64,
}

impl ConnStats {
    fn snapshot(&self) -> ConnStatsSnapshot {
        ConnStatsSnapshot {
            opened: self.opened.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            rejected_capacity: self.rejected_capacity.load(Ordering::Relaxed),
            rejected_draining: self.rejected_draining.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            too_large: self.too_large.load(Ordering::Relaxed),
            timeouts_idle: self.timeouts_idle.load(Ordering::Relaxed),
            timeouts_frame: self.timeouts_frame.load(Ordering::Relaxed),
            read_errors: self.read_errors.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
            dispatch_shed: self.dispatch_shed.load(Ordering::Relaxed),
            reply_drops: self.reply_drops.load(Ordering::Relaxed),
            forced_closes: self.forced_closes.load(Ordering::Relaxed),
        }
    }
}

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

struct Shared {
    cfg: ServerConfig,
    state: AtomicU8,
    stats: ConnStats,
    /// Requests admitted to the dispatcher and not yet routed back.
    inflight: AtomicI64,
    /// Master dispatch sender; taken (dropped) at drain so the channel
    /// disconnects once the last connection's clone goes away.
    dispatch: Mutex<Option<SyncSender<WorkItem>>>,
}

impl Shared {
    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    fn set_state(&self, s: u8) {
        self.state.store(s, Ordering::Release);
    }

    fn set_conn_gauge(&self) {
        odt_obs::gauge("net.conns.active").set(self.stats.active.load(Ordering::Relaxed) as f64);
    }
}

struct WorkItem {
    req: WireRequest,
    received: Instant,
    reply: SyncSender<WireResponse>,
    conn_inflight: Arc<AtomicI64>,
}

/// RAII guard for one admitted connection: increments `active` on
/// creation, decrements (and counts `closed`) on drop — whatever path
/// the connection thread exits by, the books balance.
struct ConnGuard {
    shared: Arc<Shared>,
}

impl ConnGuard {
    fn new(shared: Arc<Shared>) -> ConnGuard {
        shared.stats.active.fetch_add(1, Ordering::Relaxed);
        shared.stats.opened.fetch_add(1, Ordering::Relaxed);
        odt_obs::counter("net.conns.opened").inc();
        shared.set_conn_gauge();
        ConnGuard { shared }
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.shared.stats.active.fetch_sub(1, Ordering::Relaxed);
        self.shared.stats.closed.fetch_add(1, Ordering::Relaxed);
        odt_obs::counter("net.conns.closed").inc();
        self.shared.set_conn_gauge();
    }
}

/// A running server; dropping it without [`ServerHandle::drain`] leaves
/// the threads running (the process owns them — a server binary drains
/// on its shutdown signal instead).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptors: Vec<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

/// What [`ServerHandle::drain`] observed.
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// Every admitted request flushed and every connection closed within
    /// the budget.
    pub clean: bool,
    /// Connections force-closed after the budget lapsed.
    pub forced_conns: i64,
    /// Wall time the drain took, ms.
    pub wait_ms: u64,
    /// Final counters (leak check: `stats.active == 0`).
    pub stats: ConnStatsSnapshot,
    /// Flight-recorder dump path, when a force-stop triggered one.
    pub flightrec_dump: Option<String>,
}

/// Start a server: binds, spawns acceptors and the dispatcher, returns
/// immediately. The backend must be `Send` to move onto the dispatcher
/// thread; for backends that are not (the DOT model's tensors are
/// `Rc`-based), use [`start_with`].
pub fn start<B: NetBackend + Send + 'static>(
    cfg: ServerConfig,
    backend: B,
) -> io::Result<ServerHandle> {
    start_with(cfg, move || backend)
}

/// [`start`], but the backend is *constructed on the dispatcher thread*
/// by `make_backend`. Only the factory closure crosses threads, so the
/// backend itself need not be `Send` — this is how a trained DOT oracle
/// (whose parameters are `Rc`-based and thread-local) gets behind the
/// network boundary. The acceptors start immediately; requests arriving
/// while the factory is still running (e.g. training a model) wait in
/// the bounded dispatch queue.
pub fn start_with<B, F>(cfg: ServerConfig, make_backend: F) -> io::Result<ServerHandle>
where
    B: NetBackend + 'static,
    F: FnOnce() -> B + Send + 'static,
{
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let (tx, rx) = mpsc::sync_channel::<WorkItem>(cfg.dispatch_depth.max(1));
    let shared = Arc::new(Shared {
        cfg: cfg.clone(),
        state: AtomicU8::new(RUNNING),
        stats: ConnStats::default(),
        inflight: AtomicI64::new(0),
        dispatch: Mutex::new(Some(tx)),
    });

    let dispatcher = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("odt-net-dispatch".to_string())
            .spawn(move || dispatcher_main(make_backend(), rx, shared))
            .map_err(|e| io::Error::new(io::ErrorKind::Other, e))?
    };

    let mut acceptors = Vec::new();
    for i in 0..cfg.acceptor_threads.max(1) {
        let listener = listener.try_clone()?;
        let shared = Arc::clone(&shared);
        acceptors.push(
            thread::Builder::new()
                .name(format!("odt-net-accept-{i}"))
                .spawn(move || acceptor_main(listener, shared))
                .map_err(|e| io::Error::new(io::ErrorKind::Other, e))?,
        );
    }

    event(Level::Info, "net.server.start")
        .field("addr", addr.to_string())
        .field("acceptors", cfg.acceptor_threads.max(1) as u64)
        .emit();

    Ok(ServerHandle {
        addr,
        shared,
        acceptors,
        dispatcher: Some(dispatcher),
    })
}

/// A cloneable, read-only view of a running server's counters and state,
/// detached from the [`ServerHandle`]'s lifetime. The admin plane's
/// `/varz` closure holds one of these: [`ServerHandle::drain`] consumes
/// the handle, but the introspection plane must keep answering through
/// the drain.
#[derive(Clone)]
pub struct ServerStatsHandle {
    shared: Arc<Shared>,
}

impl ServerStatsHandle {
    /// Live connection/frame counters.
    pub fn stats(&self) -> ConnStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Requests admitted to the dispatcher and not yet answered.
    pub fn inflight(&self) -> i64 {
        self.shared.inflight.load(Ordering::Relaxed)
    }

    /// Lifecycle state as a stable string: `running`, `draining` or
    /// `stopped`.
    pub fn state_name(&self) -> &'static str {
        match self.shared.state() {
            RUNNING => "running",
            DRAINING => "draining",
            _ => "stopped",
        }
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> ConnStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// A counters/state view that outlives this handle (survives
    /// [`ServerHandle::drain`] — see [`ServerStatsHandle`]).
    pub fn stats_handle(&self) -> ServerStatsHandle {
        ServerStatsHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Requests admitted to the dispatcher and not yet answered.
    pub fn inflight(&self) -> i64 {
        self.shared.inflight.load(Ordering::Relaxed)
    }

    /// Graceful drain: stop admitting, flush in-flight within the
    /// configured budget, force-stop whatever remains. Consumes the
    /// handle; the listener closes when the last acceptor exits.
    pub fn drain(mut self) -> DrainReport {
        let t0 = Instant::now();
        let budget = Duration::from_millis(self.shared.cfg.drain_budget_ms);
        self.shared.set_state(DRAINING);
        event(Level::Info, "net.server.drain")
            .field("budget_ms", self.shared.cfg.drain_budget_ms)
            .emit();
        // Drop the master dispatch sender: the channel disconnects once
        // the last connection's clone is gone, which is what lets the
        // dispatcher exit after flushing everything already admitted.
        *self.shared.dispatch.lock().unwrap() = None;

        let mut clean = true;
        loop {
            let active = self.shared.stats.active.load(Ordering::Relaxed);
            let inflight = self.shared.inflight.load(Ordering::Relaxed);
            if active <= 0 && inflight <= 0 {
                break;
            }
            if t0.elapsed() > budget {
                clean = false;
                break;
            }
            thread::sleep(Duration::from_millis(2));
        }

        let forced_conns = self.shared.stats.active.load(Ordering::Relaxed).max(0);
        if forced_conns > 0 {
            self.shared
                .stats
                .forced_closes
                .fetch_add(forced_conns as u64, Ordering::Relaxed);
        }
        self.shared.set_state(STOPPED);

        for h in self.acceptors.drain(..) {
            let _ = h.join();
        }
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
        // Give force-closed connection threads a bounded grace window to
        // notice STOPPED (their read/write timeouts bound how long that
        // takes) so `active` reflects reality in the report.
        let grace = Duration::from_millis(
            2 * (self.shared.cfg.read_timeout_ms + self.shared.cfg.write_timeout_ms) + 500,
        );
        let g0 = Instant::now();
        while self.shared.stats.active.load(Ordering::Relaxed) > 0 && g0.elapsed() < grace {
            thread::sleep(Duration::from_millis(2));
        }

        let flightrec_dump = if clean {
            None
        } else {
            odt_obs::flightrec::trigger("net_drain_forced").map(|p| p.display().to_string())
        };
        let stats = self.shared.stats.snapshot();
        event(Level::Info, "net.server.drained")
            .field("clean", clean)
            .field("forced_conns", forced_conns as u64)
            .field("wait_ms", t0.elapsed().as_millis() as u64)
            .emit();
        DrainReport {
            clean,
            forced_conns,
            wait_ms: t0.elapsed().as_millis() as u64,
            stats,
            flightrec_dump,
        }
    }
}

fn acceptor_main(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match shared.state() {
            STOPPED => return,
            _ => {}
        }
        match listener.accept() {
            Ok((stream, _peer)) => admit(stream, &shared),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Best-effort typed refusal on a connection that never gets a thread.
fn refuse(mut stream: TcpStream, code: WireErrorCode, detail: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let resp = WireResponse::error(0, code, detail);
    let _ = write_frame(&mut stream, &resp.to_json());
    let _ = stream.shutdown(Shutdown::Both);
}

fn admit(stream: TcpStream, shared: &Arc<Shared>) {
    if shared.state() != RUNNING {
        shared
            .stats
            .rejected_draining
            .fetch_add(1, Ordering::Relaxed);
        odt_obs::counter("net.conns.rejected_draining").inc();
        refuse(stream, WireErrorCode::ServerDraining, "server is draining");
        return;
    }
    // Optimistic reserve-then-check keeps the cap exact under racing
    // acceptors without a lock.
    let cur = shared.stats.active.fetch_add(1, Ordering::Relaxed) + 1;
    if cur > shared.cfg.max_connections as i64 {
        shared.stats.active.fetch_sub(1, Ordering::Relaxed);
        shared
            .stats
            .rejected_capacity
            .fetch_add(1, Ordering::Relaxed);
        odt_obs::counter("net.conns.rejected_capacity").inc();
        refuse(
            stream,
            WireErrorCode::OverCapacity,
            &format!("connection cap {} reached", shared.cfg.max_connections),
        );
        return;
    }
    // Hand the reservation to the RAII guard (undo the optimistic add —
    // the guard re-adds and also counts `opened`).
    shared.stats.active.fetch_sub(1, Ordering::Relaxed);
    let dispatch = shared.dispatch.lock().unwrap().clone();
    let Some(dispatch) = dispatch else {
        shared
            .stats
            .rejected_draining
            .fetch_add(1, Ordering::Relaxed);
        refuse(stream, WireErrorCode::ServerDraining, "server is draining");
        return;
    };
    let guard = ConnGuard::new(Arc::clone(shared));
    let shared2 = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name("odt-net-conn".to_string())
        .spawn(move || conn_main(stream, shared2, guard, dispatch));
    if spawned.is_err() {
        // Guard moved into the closure that never ran? No: on spawn
        // failure the closure (owning guard + stream) is returned inside
        // the error and dropped here — the guard still balances.
        shared.stats.read_errors.fetch_add(1, Ordering::Relaxed);
    }
}

fn conn_main(
    stream: TcpStream,
    shared: Arc<Shared>,
    guard: ConnGuard,
    dispatch: SyncSender<WorkItem>,
) {
    let _guard = guard;
    let cfg = &shared.cfg;
    if stream
        .set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1))))
        .is_err()
    {
        return;
    }
    let Ok(wstream) = stream.try_clone() else {
        return;
    };
    let _ = wstream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms.max(1))));

    let inflight = Arc::new(AtomicI64::new(0));
    let dead = Arc::new(AtomicBool::new(false));
    let (reply_tx, reply_rx) =
        mpsc::sync_channel::<WireResponse>(cfg.max_inflight_per_conn.max(1) + 4);

    let writer = {
        let shared = Arc::clone(&shared);
        let dead = Arc::clone(&dead);
        thread::Builder::new()
            .name("odt-net-write".to_string())
            .spawn(move || writer_main(wstream, reply_rx, shared, dead))
    };
    let Ok(writer) = writer else {
        return;
    };

    reader_loop(&stream, &shared, &dispatch, &reply_tx, &inflight, &dead);

    // Reader is done: stop feeding the dispatcher, release our reply
    // sender, and wait for the writer to flush whatever the dispatcher
    // still owes this connection (its WorkItems hold reply-sender
    // clones; the writer exits when the last one drops).
    drop(dispatch);
    drop(reply_tx);
    let _ = stream.shutdown(Shutdown::Read);
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

fn writer_main(
    mut stream: TcpStream,
    rx: Receiver<WireResponse>,
    shared: Arc<Shared>,
    dead: Arc<AtomicBool>,
) {
    while let Ok(resp) = rx.recv() {
        if dead.load(Ordering::Relaxed) || shared.state() == STOPPED {
            // Connection is unusable (or the server force-stopped):
            // drain the channel so senders never block, write nothing.
            shared.stats.reply_drops.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        match write_frame(&mut stream, &resp.to_json()) {
            Ok(()) => {
                shared.stats.frames_out.fetch_add(1, Ordering::Relaxed);
                odt_obs::counter("net.frames.out").inc();
            }
            Err(_) => {
                shared.stats.write_errors.fetch_add(1, Ordering::Relaxed);
                odt_obs::counter("net.errors.write").inc();
                dead.store(true, Ordering::Relaxed);
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
}

#[allow(clippy::too_many_lines)]
fn reader_loop(
    mut stream: &TcpStream,
    shared: &Arc<Shared>,
    dispatch: &SyncSender<WorkItem>,
    reply_tx: &SyncSender<WireResponse>,
    inflight: &Arc<AtomicI64>,
    dead: &Arc<AtomicBool>,
) {
    let cfg = &shared.cfg;
    let frame_deadline = Duration::from_millis(cfg.frame_deadline_ms.max(1));
    let idle_timeout = Duration::from_millis(cfg.idle_timeout_ms.max(1));
    let max_inflight = cfg.max_inflight_per_conn.max(1) as i64;

    let mut acc: Vec<u8> = Vec::with_capacity(4096);
    let mut frame_started: Option<Instant> = None;
    let mut last_activity = Instant::now();
    let mut stalled = false;
    let mut chunk = [0u8; 4096];

    // Best-effort typed reply straight from the reader (protocol errors
    // that never reach the backend).
    let reader_error = |id: u64, code: WireErrorCode, detail: String| {
        if reply_tx
            .try_send(WireResponse::Err { id, code, detail })
            .is_err()
        {
            shared.stats.reply_drops.fetch_add(1, Ordering::Relaxed);
        }
    };

    loop {
        match shared.state() {
            RUNNING => {}
            // Draining: stop consuming; in-flight answers still flush
            // through the writer after we return. Stopped: bail.
            _ => return,
        }
        if dead.load(Ordering::Relaxed) {
            return;
        }

        // Process buffered complete frames first, stopping at the
        // inflight cap — unprocessed bytes stay in `acc` and, once the
        // kernel buffers fill behind them, the client feels real TCP
        // backpressure.
        loop {
            if inflight.load(Ordering::Relaxed) >= max_inflight {
                break;
            }
            if acc.len() < FRAME_HEADER_BYTES {
                break;
            }
            let declared = u32::from_be_bytes([acc[0], acc[1], acc[2], acc[3]]) as usize;
            if declared > cfg.max_frame_bytes {
                shared.stats.too_large.fetch_add(1, Ordering::Relaxed);
                odt_obs::counter("net.errors.too_large").inc();
                reader_error(
                    0,
                    WireErrorCode::FrameTooLarge,
                    format!(
                        "frame of {declared} bytes exceeds cap {}",
                        cfg.max_frame_bytes
                    ),
                );
                return; // cannot resync; close
            }
            if acc.len() < FRAME_HEADER_BYTES + declared {
                break;
            }
            let payload: Vec<u8> = acc
                .drain(..FRAME_HEADER_BYTES + declared)
                .skip(FRAME_HEADER_BYTES)
                .collect();
            frame_started = if acc.is_empty() {
                None
            } else {
                Some(Instant::now())
            };
            shared.stats.frames_in.fetch_add(1, Ordering::Relaxed);
            odt_obs::counter("net.frames.in").inc();
            if !handle_payload(payload, shared, dispatch, reply_tx, inflight, &reader_error) {
                return;
            }
        }

        if inflight.load(Ordering::Relaxed) >= max_inflight {
            if !stalled {
                stalled = true;
                shared
                    .stats
                    .backpressure_stalls
                    .fetch_add(1, Ordering::Relaxed);
                odt_obs::counter("net.backpressure.stalls").inc();
            }
            // The stall is the server's own doing — don't let it count
            // against the client's slow-frame deadline.
            if frame_started.is_some() {
                frame_started = Some(Instant::now());
            }
            last_activity = Instant::now();
            thread::sleep(Duration::from_micros(500));
            continue;
        }
        stalled = false;

        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                let now = Instant::now();
                last_activity = now;
                if frame_started.is_none() {
                    frame_started = Some(now);
                }
                acc.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Timeout tick: enforce the slow-frame and idle limits.
                if let Some(t0) = frame_started {
                    if t0.elapsed() > frame_deadline {
                        shared.stats.timeouts_frame.fetch_add(1, Ordering::Relaxed);
                        odt_obs::counter("net.timeouts.frame").inc();
                        event(Level::Warn, "net.conn.slow_frame")
                            .field("partial_bytes", acc.len() as u64)
                            .emit();
                        return;
                    }
                }
                if last_activity.elapsed() > idle_timeout {
                    shared.stats.timeouts_idle.fetch_add(1, Ordering::Relaxed);
                    odt_obs::counter("net.timeouts.idle").inc();
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                shared.stats.read_errors.fetch_add(1, Ordering::Relaxed);
                odt_obs::counter("net.errors.read").inc();
                return;
            }
        }
    }
}

/// Parse and dispatch one payload. Returns `false` when the connection
/// must close.
fn handle_payload(
    payload: Vec<u8>,
    shared: &Arc<Shared>,
    dispatch: &SyncSender<WorkItem>,
    reply_tx: &SyncSender<WireResponse>,
    inflight: &Arc<AtomicI64>,
    reader_error: &impl Fn(u64, WireErrorCode, String),
) -> bool {
    let text = match String::from_utf8(payload) {
        Ok(t) => t,
        Err(_) => {
            shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
            odt_obs::counter("net.errors.malformed").inc();
            reader_error(
                0,
                WireErrorCode::MalformedFrame,
                "payload is not UTF-8".to_string(),
            );
            return true; // frame boundary intact; keep the connection
        }
    };
    let req = match WireRequest::from_json(&text) {
        Ok(r) => r,
        Err((id, detail)) => {
            shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
            odt_obs::counter("net.errors.malformed").inc();
            reader_error(id, WireErrorCode::MalformedFrame, detail);
            return true;
        }
    };
    let id = req.id;
    inflight.fetch_add(1, Ordering::Relaxed);
    shared.inflight.fetch_add(1, Ordering::Relaxed);
    let item = WorkItem {
        req,
        received: Instant::now(),
        reply: reply_tx.clone(),
        conn_inflight: Arc::clone(inflight),
    };
    match dispatch.try_send(item) {
        Ok(()) => true,
        Err(TrySendError::Full(_)) => {
            inflight.fetch_sub(1, Ordering::Relaxed);
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
            shared.stats.dispatch_shed.fetch_add(1, Ordering::Relaxed);
            odt_obs::counter("net.dispatch.shed").inc();
            reader_error(
                id,
                WireErrorCode::Backpressure,
                format!("dispatch queue at depth {}", shared.cfg.dispatch_depth),
            );
            true
        }
        Err(TrySendError::Disconnected(_)) => {
            inflight.fetch_sub(1, Ordering::Relaxed);
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
            reader_error(
                id,
                WireErrorCode::ServerDraining,
                "server is draining".to_string(),
            );
            false
        }
    }
}

fn dispatcher_main<B: NetBackend>(mut backend: B, rx: Receiver<WorkItem>, shared: Arc<Shared>) {
    let max_batch = shared.cfg.max_batch.max(1);
    loop {
        let first = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(item) => item,
            Err(RecvTimeoutError::Timeout) => {
                if shared.state() == STOPPED {
                    break;
                }
                backend.on_tick();
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut items = vec![first];
        while items.len() < max_batch {
            match rx.try_recv() {
                Ok(item) => items.push(item),
                Err(_) => break,
            }
        }
        let batch: Vec<NetRequest> = items
            .iter()
            .map(|it| NetRequest {
                req: it.req.clone(),
                age_us: it.received.elapsed().as_micros() as u64,
            })
            .collect();
        let replies = backend.process(batch);
        let mut answered = vec![false; items.len()];
        for (idx, resp) in replies {
            if idx >= items.len() || answered[idx] {
                continue; // backend bug guard: never double-answer
            }
            answered[idx] = true;
            if items[idx].reply.try_send(resp).is_err() {
                shared.stats.reply_drops.fetch_add(1, Ordering::Relaxed);
            }
        }
        for (idx, done) in answered.iter().enumerate() {
            if !done {
                let id = items[idx].req.id;
                if items[idx]
                    .reply
                    .try_send(WireResponse::error(
                        id,
                        WireErrorCode::Internal,
                        "backend returned no reply",
                    ))
                    .is_err()
                {
                    shared.stats.reply_drops.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        for item in items {
            item.conn_inflight.fetch_sub(1, Ordering::Relaxed);
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
        }
        backend.on_tick();
    }
    // Force-stop path: the queue may still hold items whose counters
    // must balance (graceful drain never reaches here with a non-empty
    // queue — disconnection implies empty).
    while let Ok(item) = rx.try_recv() {
        item.conn_inflight.fetch_sub(1, Ordering::Relaxed);
        shared.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A model-free backend for loopback tests and loadgen self-checks:
/// answers with a deterministic pseudo travel time derived from the
/// coordinates, after an optional artificial service delay.
pub struct EchoBackend {
    /// Artificial per-batch-item service delay.
    pub delay: Duration,
}

impl EchoBackend {
    /// An echo backend with no artificial delay.
    pub fn instant() -> EchoBackend {
        EchoBackend {
            delay: Duration::ZERO,
        }
    }

    /// The deterministic pseudo estimate (Manhattan degrees at ~11.1 km
    /// per 0.1°, traversed at 10 m/s).
    pub fn estimate_seconds(q: &crate::wire::WireQuery) -> f64 {
        let deg = (q.d_lng - q.o_lng).abs() + (q.d_lat - q.o_lat).abs();
        let meters = deg * 111_000.0;
        meters / 10.0
    }
}

impl NetBackend for EchoBackend {
    fn process(&mut self, batch: Vec<NetRequest>) -> Vec<(usize, WireResponse)> {
        batch
            .iter()
            .enumerate()
            .map(|(idx, nr)| {
                if !self.delay.is_zero() {
                    thread::sleep(self.delay);
                }
                let seconds = EchoBackend::estimate_seconds(&nr.req.query);
                if !seconds.is_finite() {
                    return (
                        idx,
                        WireResponse::error(
                            nr.req.id,
                            WireErrorCode::InvalidQuery,
                            "non-finite coordinates",
                        ),
                    );
                }
                (
                    idx,
                    WireResponse::Ok {
                        id: nr.req.id,
                        seconds,
                        rung: "echo".to_string(),
                        queue_wait_us: nr.age_us,
                        service_us: self.delay.as_micros() as u64,
                        deadline_met: true,
                        trace: nr.req.trace,
                        served_by: Some(instance_name().to_string()),
                    },
                )
            })
            .collect()
    }
}

/// One registered idle-tick consumer: a named closure with its own
/// minimum re-run interval, so independent background jobs (shadow
/// scorer, cache prewarmer, drift watcher) share the dispatcher's tick
/// without stepping on each other's cadence.
struct TickConsumer {
    name: &'static str,
    min_interval: Duration,
    last_run: Option<Instant>,
    run: Box<dyn FnMut()>,
}

/// Bridge a [`odt_serve::ServeFrontend`] into the network boundary:
/// submits each batch through admission (propagating wire deadlines,
/// minus boundary age, and trace ids), drains, and maps frontend
/// responses back to wire responses.
pub struct FrontendBridge<E: odt_serve::RungExecutor, F> {
    fe: odt_serve::ServeFrontend<E>,
    make_query: F,
    adopted_traces: u64,
    shared: Option<SharedFrontendStats>,
    /// Idle-tick work (shadow quality scoring, cache prewarming, drift
    /// watching); runs on the dispatcher thread via
    /// [`NetBackend::on_tick`], so consumers may capture `!Send` state as
    /// long as the bridge is built on that thread ([`start_with`]).
    ticks: Vec<TickConsumer>,
}

/// Live frontend counters published out of the dispatcher thread.
///
/// [`start`] moves the backend into the dispatcher, so once a server is
/// running its [`FrontendBridge`] can no longer be inspected directly.
/// Callers that need end-of-run frontend numbers (the server binary's
/// final report, the chaos drills) take this handle *before* handing the
/// bridge to [`start`]; the bridge refreshes it after every batch.
#[derive(Clone)]
pub struct SharedFrontendStats(Arc<Mutex<(odt_serve::FrontendSnapshot, u64)>>);

impl SharedFrontendStats {
    /// The latest published `(frontend snapshot, adopted trace count)`.
    pub fn get(&self) -> (odt_serve::FrontendSnapshot, u64) {
        self.0.lock().unwrap().clone()
    }
}

impl<E, F> FrontendBridge<E, F>
where
    E: odt_serve::RungExecutor,
    F: FnMut(&crate::wire::WireQuery) -> E::Query,
{
    /// Wrap a frontend; `make_query` converts wire coordinates into the
    /// executor's query type.
    pub fn new(fe: odt_serve::ServeFrontend<E>, make_query: F) -> Self {
        FrontendBridge {
            fe,
            make_query,
            adopted_traces: 0,
            shared: None,
            ticks: Vec::new(),
        }
    }

    /// Register a named idle-tick consumer (see [`NetBackend::on_tick`]):
    /// the server binary hangs its shadow quality scorer, cache prewarmer
    /// and drift watcher here. Each consumer re-runs at most once per
    /// `min_interval_us` (0 = every tick); multiple consumers multiplex
    /// over the single dispatcher tick in registration order. Closures run
    /// on whatever thread owns the bridge — construct the bridge (and the
    /// closures' captures) inside the [`start_with`] factory and nothing
    /// needs `Send`.
    pub fn add_tick(
        &mut self,
        name: &'static str,
        min_interval_us: u64,
        run: impl FnMut() + 'static,
    ) {
        self.ticks.push(TickConsumer {
            name,
            min_interval: Duration::from_micros(min_interval_us),
            last_run: None,
            run: Box::new(run),
        });
    }

    /// [`FrontendBridge::add_tick`] with no throttle, kept for callers
    /// that register a single consumer.
    pub fn set_tick(&mut self, tick: impl FnMut() + 'static) {
        self.add_tick("tick", 0, tick);
    }

    /// Names of the registered idle-tick consumers, in run order.
    pub fn tick_consumers(&self) -> Vec<&'static str> {
        self.ticks.iter().map(|t| t.name).collect()
    }

    /// A handle this bridge will refresh after every processed batch;
    /// survives the bridge moving into a running server.
    pub fn shared_stats(&mut self) -> SharedFrontendStats {
        self.shared
            .get_or_insert_with(|| {
                SharedFrontendStats(Arc::new(Mutex::new((self.fe.snapshot(), 0))))
            })
            .clone()
    }

    /// The wrapped frontend's counters.
    pub fn snapshot(&self) -> odt_serve::FrontendSnapshot {
        self.fe.snapshot()
    }

    /// Requests whose wire trace id the server adopted.
    pub fn adopted_traces(&self) -> u64 {
        self.adopted_traces
    }

    /// The wrapped frontend, for drill assertions.
    pub fn frontend(&self) -> &odt_serve::ServeFrontend<E> {
        &self.fe
    }
}

fn shed_to_wire(wire_id: u64, reason: &odt_serve::ShedReason, detail: &str) -> WireResponse {
    WireResponse::error(
        wire_id,
        WireErrorCode::from_shed_name(reason.name()),
        detail,
    )
}

impl<E, F> NetBackend for FrontendBridge<E, F>
where
    E: odt_serve::RungExecutor,
    F: FnMut(&crate::wire::WireQuery) -> E::Query,
{
    fn process(&mut self, batch: Vec<NetRequest>) -> Vec<(usize, WireResponse)> {
        let mut out = Vec::with_capacity(batch.len());
        // Frontend id → (batch index, wire id, adopted trace).
        let mut pending: HashMap<u64, (usize, u64, Option<odt_obs::TraceId>)> = HashMap::new();
        for (idx, nr) in batch.iter().enumerate() {
            let budget_us = nr
                .req
                .deadline_ms
                .map(|ms| ms.saturating_mul(1_000).saturating_sub(nr.age_us));
            let trace = nr.req.trace;
            let parent = nr.req.parent_span.unwrap_or(0);
            let fid = self.fe.next_request_id();
            match self
                .fe
                .submit_traced((self.make_query)(&nr.req.query), budget_us, trace, parent)
            {
                Ok(got) => {
                    debug_assert_eq!(got, fid);
                    if trace.is_some() {
                        self.adopted_traces += 1;
                        odt_obs::counter("net.trace.adopted").inc();
                    }
                    pending.insert(got, (idx, nr.req.id, trace));
                }
                Err(odt_serve::Response::Shed { id, reason, detail }) => {
                    if id == fid {
                        // The submitted request itself was refused.
                        out.push((idx, shed_to_wire(nr.req.id, &reason, &detail)));
                    } else {
                        // Reject-oldest evicted an *earlier* admitted
                        // request from this batch; the current one is in
                        // the queue under `fid`.
                        if let Some((pidx, wid, _)) = pending.remove(&id) {
                            out.push((pidx, shed_to_wire(wid, &reason, &detail)));
                        }
                        if trace.is_some() {
                            self.adopted_traces += 1;
                            odt_obs::counter("net.trace.adopted").inc();
                        }
                        pending.insert(fid, (idx, nr.req.id, trace));
                    }
                }
                Err(_) => {
                    out.push((
                        idx,
                        WireResponse::error(nr.req.id, WireErrorCode::Internal, "unexpected"),
                    ));
                }
            }
        }
        for resp in self.fe.drain() {
            let Some((idx, wire_id, trace)) = pending.remove(&resp.id()) else {
                continue;
            };
            let wr = match resp {
                odt_serve::Response::Served {
                    seconds,
                    rung,
                    queue_wait_us,
                    service_us,
                    deadline_met,
                    ..
                } => WireResponse::Ok {
                    id: wire_id,
                    seconds,
                    rung: rung.name().to_string(),
                    queue_wait_us,
                    service_us,
                    deadline_met,
                    trace,
                    served_by: Some(instance_name().to_string()),
                },
                odt_serve::Response::Shed { reason, detail, .. } => {
                    shed_to_wire(wire_id, &reason, &detail)
                }
            };
            out.push((idx, wr));
        }
        // Anything still pending got no frontend response (should not
        // happen — drain answers everything admitted).
        for (_, (idx, wire_id, _)) in pending {
            out.push((
                idx,
                WireResponse::error(wire_id, WireErrorCode::Internal, "lost in frontend"),
            ));
        }
        if let Some(shared) = &self.shared {
            *shared.0.lock().unwrap() = (self.fe.snapshot(), self.adopted_traces);
        }
        out
    }

    fn on_tick(&mut self) {
        let now = Instant::now();
        for c in &mut self.ticks {
            let due = match c.last_run {
                None => true,
                Some(t) => now.duration_since(t) >= c.min_interval,
            };
            if due {
                c.last_run = Some(now);
                (c.run)();
            }
        }
        // Refresh published stats on idle ticks too, so `/varz` reflects
        // breaker half-open transitions and SLO window decay even when no
        // traffic flows.
        if let Some(shared) = &self.shared {
            *shared.0.lock().unwrap() = (self.fe.snapshot(), self.adopted_traces);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_frame, FrameError, FrameRead, WireQuery};

    fn test_cfg() -> ServerConfig {
        ServerConfig {
            acceptor_threads: 1,
            max_connections: 8,
            read_timeout_ms: 5,
            frame_deadline_ms: 150,
            idle_timeout_ms: 60_000,
            write_timeout_ms: 500,
            drain_budget_ms: 3_000,
            ..ServerConfig::default()
        }
    }

    fn q(o_lng: f64) -> WireQuery {
        WireQuery {
            o_lng,
            o_lat: 39.9,
            d_lng: o_lng + 0.1,
            d_lat: 40.0,
            t_dep: 28_800.0,
        }
    }

    fn connect(addr: SocketAddr) -> TcpStream {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s
    }

    fn send_req(s: &mut TcpStream, req: &WireRequest) {
        write_frame(s, &req.to_json()).expect("write");
    }

    fn recv_resp(s: &mut TcpStream) -> WireResponse {
        match read_frame(s, DEFAULT_MAX_FRAME_BYTES).expect("frame") {
            FrameRead::Payload(p) => WireResponse::from_json(&p).expect("parse"),
            FrameRead::Closed => panic!("peer closed"),
        }
    }

    #[test]
    fn round_trips_pipelined_requests_and_drains_clean() {
        let h = start(test_cfg(), EchoBackend::instant()).unwrap();
        let mut s = connect(h.addr());
        for i in 1..=5u64 {
            send_req(
                &mut s,
                &WireRequest {
                    id: i,
                    query: q(116.0 + i as f64),
                    deadline_ms: Some(1_000),
                    trace: odt_obs::TraceId::from_raw(0xabc0 + i),
                    parent_span: None,
                },
            );
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5 {
            match recv_resp(&mut s) {
                WireResponse::Ok {
                    id, seconds, trace, ..
                } => {
                    assert!(seconds > 0.0);
                    // The echo backend reflects the adopted trace id.
                    assert_eq!(trace, odt_obs::TraceId::from_raw(0xabc0 + id));
                    seen.insert(id);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen.len(), 5);
        drop(s);
        let report = h.drain();
        assert!(report.clean, "{report:?}");
        assert_eq!(report.stats.active, 0, "leaked connections: {report:?}");
        assert_eq!(report.stats.frames_in, 5);
        assert_eq!(report.stats.frames_out, 5);
    }

    #[test]
    fn oversized_frames_get_a_typed_error_and_a_close() {
        let mut cfg = test_cfg();
        cfg.max_frame_bytes = 256;
        let h = start(cfg, EchoBackend::instant()).unwrap();
        let mut s = connect(h.addr());
        // Declare a 1 MiB frame; never send the payload.
        use std::io::Write as _;
        s.write_all(&(1_048_576u32).to_be_bytes()).unwrap();
        match recv_resp(&mut s) {
            WireResponse::Err { code, .. } => assert_eq!(code, WireErrorCode::FrameTooLarge),
            other => panic!("unexpected {other:?}"),
        }
        // Server closes after the refusal.
        match read_frame(&mut s, DEFAULT_MAX_FRAME_BYTES) {
            Ok(FrameRead::Closed) | Err(FrameError::Io(_)) => {}
            other => panic!("expected close, got {other:?}"),
        }
        let report = h.drain();
        assert_eq!(report.stats.too_large, 1);
        assert_eq!(report.stats.active, 0);
    }

    #[test]
    fn malformed_payloads_error_but_keep_the_connection() {
        let h = start(test_cfg(), EchoBackend::instant()).unwrap();
        let mut s = connect(h.addr());
        write_frame(&mut s, "this is not json").unwrap();
        match recv_resp(&mut s) {
            WireResponse::Err { code, .. } => assert_eq!(code, WireErrorCode::MalformedFrame),
            other => panic!("unexpected {other:?}"),
        }
        // The connection survives: a valid request still round-trips.
        send_req(
            &mut s,
            &WireRequest {
                id: 9,
                query: q(116.0),
                deadline_ms: None,
                trace: None,
                parent_span: None,
            },
        );
        match recv_resp(&mut s) {
            WireResponse::Ok { id, .. } => assert_eq!(id, 9),
            other => panic!("unexpected {other:?}"),
        }
        drop(s);
        let report = h.drain();
        assert_eq!(report.stats.malformed, 1);
        assert_eq!(report.stats.active, 0);
    }

    #[test]
    fn connection_cap_rejects_with_over_capacity() {
        let mut cfg = test_cfg();
        cfg.max_connections = 1;
        let h = start(cfg, EchoBackend::instant()).unwrap();
        let mut s1 = connect(h.addr());
        // Prove s1 is fully admitted before racing a second connect.
        send_req(
            &mut s1,
            &WireRequest {
                id: 1,
                query: q(116.0),
                deadline_ms: None,
                trace: None,
                parent_span: None,
            },
        );
        let _ = recv_resp(&mut s1);
        let mut s2 = connect(h.addr());
        match recv_resp(&mut s2) {
            WireResponse::Err { code, .. } => assert_eq!(code, WireErrorCode::OverCapacity),
            other => panic!("unexpected {other:?}"),
        }
        drop(s2);
        drop(s1);
        let report = h.drain();
        assert_eq!(report.stats.rejected_capacity, 1);
        assert_eq!(report.stats.active, 0);
    }

    #[test]
    fn slow_partial_frames_are_cut_by_the_frame_deadline() {
        let h = start(test_cfg(), EchoBackend::instant()).unwrap();
        let mut s = connect(h.addr());
        use std::io::Write as _;
        // First half of a header, then silence.
        s.write_all(&[0u8, 0]).unwrap();
        // Frame deadline is 150ms in the test config.
        let t0 = Instant::now();
        let closed = loop {
            match read_frame(&mut s, DEFAULT_MAX_FRAME_BYTES) {
                Ok(FrameRead::Closed) | Err(FrameError::Io(_)) => break true,
                Ok(FrameRead::Payload(_)) | Err(_) => break false,
            }
        };
        assert!(closed, "server should cut the slow connection");
        assert!(t0.elapsed() < Duration::from_secs(4));
        let report = h.drain();
        assert_eq!(report.stats.timeouts_frame, 1);
        assert_eq!(report.stats.active, 0);
    }

    #[test]
    fn disconnect_mid_request_never_leaks_the_connection() {
        let h = start(
            test_cfg(),
            EchoBackend {
                delay: Duration::from_millis(30),
            },
        )
        .unwrap();
        let mut s = connect(h.addr());
        send_req(
            &mut s,
            &WireRequest {
                id: 1,
                query: q(116.0),
                deadline_ms: None,
                trace: None,
                parent_span: None,
            },
        );
        // Hang up before the (delayed) reply can be written.
        drop(s);
        let report = h.drain();
        assert!(report.clean, "{report:?}");
        assert_eq!(report.stats.active, 0, "leaked connection: {report:?}");
    }

    #[test]
    fn backpressure_stalls_the_reader_instead_of_buffering() {
        let mut cfg = test_cfg();
        cfg.max_inflight_per_conn = 2;
        let h = start(
            cfg,
            EchoBackend {
                delay: Duration::from_millis(10),
            },
        )
        .unwrap();
        let mut s = connect(h.addr());
        // Pipeline 10 requests without reading a single reply.
        for i in 1..=10u64 {
            send_req(
                &mut s,
                &WireRequest {
                    id: i,
                    query: q(116.0),
                    deadline_ms: None,
                    trace: None,
                    parent_span: None,
                },
            );
        }
        // All replies still arrive (bounded, not dropped).
        let mut got = 0;
        for _ in 0..10 {
            match recv_resp(&mut s) {
                WireResponse::Ok { .. } => got += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(got, 10);
        drop(s);
        let report = h.drain();
        assert!(
            report.stats.backpressure_stalls >= 1,
            "reader never stalled: {report:?}"
        );
        assert_eq!(report.stats.active, 0);
    }

    #[test]
    fn drain_under_load_flushes_in_flight_and_refuses_new_connections() {
        let h = start(
            test_cfg(),
            EchoBackend {
                delay: Duration::from_millis(5),
            },
        )
        .unwrap();
        let addr = h.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        // A client hammering the server while we drain it.
        let client = thread::spawn(move || {
            let mut s = connect(addr);
            let mut ok = 0u64;
            let mut draining_seen = false;
            for i in 1..=1_000u64 {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                send_req(
                    &mut s,
                    &WireRequest {
                        id: i,
                        query: q(116.0),
                        deadline_ms: None,
                        trace: None,
                        parent_span: None,
                    },
                );
                match read_frame(&mut s, DEFAULT_MAX_FRAME_BYTES) {
                    Ok(FrameRead::Payload(p)) => match WireResponse::from_json(&p).unwrap() {
                        WireResponse::Ok { .. } => ok += 1,
                        WireResponse::Err { code, .. } => {
                            if code == WireErrorCode::ServerDraining {
                                draining_seen = true;
                            }
                            break;
                        }
                    },
                    _ => break, // server closed on us mid-drain: fine
                }
            }
            (ok, draining_seen)
        });
        // Let some load flow, then drain mid-flight.
        thread::sleep(Duration::from_millis(100));
        let report = h.drain();
        stop.store(true, Ordering::Relaxed);
        let (ok, _draining_seen) = client.join().unwrap();
        assert!(ok > 0, "client never got a reply");
        assert!(report.clean, "drain was forced: {report:?}");
        assert_eq!(report.stats.active, 0, "leaked connections: {report:?}");
        // New connections after drain are refused outright.
        match TcpStream::connect(addr) {
            Ok(mut s) => {
                s.set_read_timeout(Some(Duration::from_millis(500)))
                    .unwrap();
                match read_frame(&mut s, DEFAULT_MAX_FRAME_BYTES) {
                    Ok(FrameRead::Payload(p)) => match WireResponse::from_json(&p).unwrap() {
                        WireResponse::Err { code, .. } => {
                            assert_eq!(code, WireErrorCode::ServerDraining)
                        }
                        other => panic!("unexpected {other:?}"),
                    },
                    // Listener already closed: equally acceptable.
                    Ok(FrameRead::Closed) | Err(_) => {}
                }
            }
            Err(_) => {} // connection refused: listener closed
        }
    }

    /// A trivial executor so the bridge can be exercised without a
    /// trained model: answers with the Manhattan degree-distance.
    struct GridExec;

    impl odt_serve::RungExecutor for GridExec {
        type Query = (f64, f64);

        fn admit(&mut self, q: &(f64, f64)) -> Result<(), String> {
            if q.0.abs() <= 360.0 && q.1.abs() <= 360.0 {
                Ok(())
            } else {
                Err("coordinates out of range".to_string())
            }
        }

        fn execute(&mut self, _rung: odt_serve::Rung, q: &(f64, f64)) -> Result<f64, String> {
            Ok((q.0 + q.1) * 100.0)
        }
    }

    #[test]
    fn frontend_bridge_serves_adopts_traces_and_types_sheds() {
        // The bridge can hold a `!Send` tick closure, so it is built on
        // the dispatcher thread via the factory (exactly how the real
        // model-backed server constructs it).
        let h = start_with(test_cfg(), || {
            let fe = odt_serve::ServeFrontend::new(GridExec, odt_serve::FrontendConfig::default());
            FrontendBridge::new(fe, |wq: &WireQuery| {
                ((wq.d_lng - wq.o_lng).abs(), (wq.d_lat - wq.o_lat).abs())
            })
        })
        .unwrap();
        let mut s = connect(h.addr());
        // A served request with a propagated trace id.
        let trace = odt_obs::TraceId::from_hex("0000000000c0ffee");
        send_req(
            &mut s,
            &WireRequest {
                id: 11,
                query: q(116.0),
                deadline_ms: Some(5_000),
                trace,
                parent_span: Some(0x77),
            },
        );
        match recv_resp(&mut s) {
            WireResponse::Ok {
                id,
                rung,
                trace: t,
                seconds,
                served_by,
                ..
            } => {
                assert_eq!(id, 11);
                assert_eq!(t, trace, "wire trace not propagated");
                assert_eq!(
                    served_by.as_deref(),
                    Some(instance_name()),
                    "replica attribution missing"
                );
                assert!(
                    // GridExec has no cache attached, so the cache rungs
                    // never serve; every model rung name is fair game.
                    ["full_ddpm", "ddim", "ddim_reduced", "fallback"].contains(&rung.as_str()),
                    "unexpected rung {rung}"
                );
                assert!((seconds - 20.0).abs() < 1e-9, "got {seconds}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // An admission-rejected query becomes a typed invalid_query error.
        send_req(
            &mut s,
            &WireRequest {
                id: 12,
                query: WireQuery {
                    o_lng: -999.0,
                    ..q(116.0)
                },
                deadline_ms: None,
                trace: None,
                parent_span: None,
            },
        );
        match recv_resp(&mut s) {
            WireResponse::Err { id, code, .. } => {
                assert_eq!(id, 12);
                assert_eq!(code, WireErrorCode::InvalidQuery);
            }
            other => panic!("unexpected {other:?}"),
        }
        drop(s);
        let report = h.drain();
        assert!(report.clean);
        assert_eq!(report.stats.active, 0);
    }

    #[test]
    fn dispatcher_ticks_the_backend_when_idle_and_after_batches() {
        struct TickBackend {
            echo: EchoBackend,
            ticks: Arc<AtomicU64>,
        }
        impl NetBackend for TickBackend {
            fn process(&mut self, batch: Vec<NetRequest>) -> Vec<(usize, WireResponse)> {
                self.echo.process(batch)
            }
            fn on_tick(&mut self) {
                self.ticks.fetch_add(1, Ordering::Relaxed);
            }
        }
        let ticks = Arc::new(AtomicU64::new(0));
        let h = start(
            test_cfg(),
            TickBackend {
                echo: EchoBackend::instant(),
                ticks: Arc::clone(&ticks),
            },
        )
        .unwrap();
        // Idle ticks accumulate with no traffic at all (20 ms poll).
        thread::sleep(Duration::from_millis(150));
        let idle_ticks = ticks.load(Ordering::Relaxed);
        assert!(idle_ticks >= 2, "only {idle_ticks} idle ticks");
        // A served batch ticks once more on top.
        let mut s = connect(h.addr());
        send_req(
            &mut s,
            &WireRequest {
                id: 1,
                query: q(116.0),
                deadline_ms: None,
                trace: None,
                parent_span: None,
            },
        );
        let _ = recv_resp(&mut s);
        assert!(ticks.load(Ordering::Relaxed) > idle_ticks);
        drop(s);
        let report = h.drain();
        assert!(report.clean);
    }

    #[test]
    fn stats_handle_tracks_state_across_drain() {
        let h = start(test_cfg(), EchoBackend::instant()).unwrap();
        let sh = h.stats_handle();
        assert_eq!(sh.state_name(), "running");
        let mut s = connect(h.addr());
        send_req(
            &mut s,
            &WireRequest {
                id: 1,
                query: q(116.0),
                deadline_ms: None,
                trace: None,
                parent_span: None,
            },
        );
        let _ = recv_resp(&mut s);
        drop(s);
        let report = h.drain();
        // The detached handle keeps answering after the ServerHandle is
        // consumed — this is what /varz holds through shutdown.
        assert_eq!(sh.state_name(), "stopped");
        assert_eq!(sh.stats().frames_in, report.stats.frames_in);
        assert_eq!(sh.inflight(), 0);
    }

    #[test]
    fn bridge_tick_closure_runs_on_idle() {
        let ticked = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&ticked);
        let (stats_tx, stats_rx) = mpsc::channel();
        let h = start_with(test_cfg(), move || {
            let fe = odt_serve::ServeFrontend::new(GridExec, odt_serve::FrontendConfig::default());
            let mut bridge = FrontendBridge::new(fe, |wq: &WireQuery| {
                ((wq.d_lng - wq.o_lng).abs(), (wq.d_lat - wq.o_lat).abs())
            });
            bridge.set_tick(move || {
                t2.fetch_add(1, Ordering::Relaxed);
            });
            let _ = stats_tx.send(bridge.shared_stats());
            bridge
        })
        .unwrap();
        let stats = stats_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        thread::sleep(Duration::from_millis(120));
        assert!(ticked.load(Ordering::Relaxed) >= 2);
        // Idle ticks also refresh the published frontend snapshot.
        let (snap, _) = stats.get();
        assert_eq!(snap.submitted, 0);
        let _ = h.drain();
    }

    #[test]
    fn bridge_multiplexes_tick_consumers_with_per_consumer_throttles() {
        let fast = Arc::new(AtomicU64::new(0));
        let slow = Arc::new(AtomicU64::new(0));
        let (f2, s2) = (Arc::clone(&fast), Arc::clone(&slow));
        let h = start_with(test_cfg(), move || {
            let fe = odt_serve::ServeFrontend::new(GridExec, odt_serve::FrontendConfig::default());
            let mut bridge = FrontendBridge::new(fe, |wq: &WireQuery| {
                ((wq.d_lng - wq.o_lng).abs(), (wq.d_lat - wq.o_lat).abs())
            });
            // An unthrottled consumer and a heavily throttled one share
            // the dispatcher's tick.
            bridge.add_tick("fast", 0, move || {
                f2.fetch_add(1, Ordering::Relaxed);
            });
            bridge.add_tick("slow", 10_000_000, move || {
                s2.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(bridge.tick_consumers(), vec!["fast", "slow"]);
            bridge
        })
        .unwrap();
        // ~20 ms idle polls: the fast consumer runs many times, the slow
        // one exactly once (its 10 s interval cannot elapse in the test).
        thread::sleep(Duration::from_millis(200));
        let _ = h.drain();
        assert!(fast.load(Ordering::Relaxed) >= 3, "fast consumer starved");
        assert_eq!(slow.load(Ordering::Relaxed), 1, "throttle not honored");
    }

    #[test]
    fn echo_estimate_is_deterministic_and_finite() {
        let a = EchoBackend::estimate_seconds(&q(116.0));
        let b = EchoBackend::estimate_seconds(&q(116.0));
        assert_eq!(a, b);
        assert!(a.is_finite() && a > 0.0);
    }
}
