//! Minimal std-only shutdown-signal latch.
//!
//! The server binary needs exactly one bit from the OS: "a drain was
//! requested" (SIGTERM from an orchestrator, SIGINT from a terminal).
//! Rather than pull in a signal-handling crate, [`install`] registers a
//! C `signal(2)` handler that flips a process-global atomic; the serving
//! loop polls [`shutdown_requested`] between accept ticks.
//!
//! The handler body is async-signal-safe: a single relaxed store, no
//! allocation, no locks, no I/O. On non-Unix targets [`install`] is a
//! no-op and only [`request_shutdown`] (used by tests and in-process
//! callers) can trip the latch.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Has a shutdown been requested (by signal or [`request_shutdown`])?
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Trip the latch from inside the process (tests, embedded callers).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Reset the latch. Test-only escape hatch: the latch is process-global,
/// so tests that trip it must clear it to avoid poisoning later tests.
pub fn reset_for_test() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // `fn(i32)` handlers and `signal` itself are in every libc we target;
    // declaring them directly keeps the crate dependency-free.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: one atomic store, nothing else.
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Register SIGINT/SIGTERM handlers that trip the latch (no-op off Unix).
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the latch is process-global and the test
    // harness runs tests concurrently.
    #[test]
    #[allow(unsafe_code)]
    fn latch_trips_on_request_and_on_a_real_signal() {
        reset_for_test();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_test();
        assert!(!shutdown_requested());

        #[cfg(unix)]
        {
            extern "C" {
                fn raise(signum: i32) -> i32;
            }
            install();
            unsafe {
                raise(15); // SIGTERM, now latched instead of fatal
            }
            assert!(shutdown_requested());
            reset_for_test();
        }
    }
}
