//! Network chaos drills: the four standing network-fault scenarios the
//! chaos harness runs on top of its serving-layer catalog.
//!
//! Each drill boots a real server on a loopback port with the provided
//! backend, applies a network abuse pattern from the *client* side, then
//! drains and checks typed expectations. The invariant every drill
//! enforces on top of its own: **zero leaked connections** — after the
//! drain, `active` must be 0 no matter what the clients did.
//!
//! | scenario              | abuse                                      |
//! |-----------------------|--------------------------------------------|
//! | `net_conn_storm`      | more simultaneous connections than the cap |
//! | `net_slow_client`     | a frame that trickles in forever           |
//! | `net_disconnect`      | clients that hang up mid-request           |
//! | `net_drain_under_load`| SIGTERM-style drain with clients attached  |

use crate::loadgen::Region;
use crate::server::{start_with, ConnStatsSnapshot, NetBackend, ServerConfig};
use crate::wire::{
    read_frame, write_frame, FrameRead, WireErrorCode, WireQuery, WireRequest, WireResponse,
    DEFAULT_MAX_FRAME_BYTES,
};
use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Which abuse pattern a drill applies.
#[derive(Copy, Clone, Debug)]
pub enum NetScenarioKind {
    /// Open `conns` connections against a server capped well below that.
    ConnStorm {
        /// Simultaneous client connections.
        conns: usize,
    },
    /// One slowloris connection (partial frame, then silence) next to a
    /// healthy one.
    SlowClient,
    /// `victims` connections that send a request and hang up before the
    /// reply; a healthy connection rides along.
    Disconnect {
        /// Connections that disconnect mid-request.
        victims: usize,
    },
    /// Closed-loop load from `clients` connections while the server
    /// drains after `load_ms` of traffic.
    DrainUnderLoad {
        /// Hammering client connections.
        clients: usize,
        /// Load duration before the drain starts, ms.
        load_ms: u64,
    },
}

/// Typed pass/fail expectations for one drill.
#[derive(Copy, Clone, Debug, Default)]
pub struct NetExpectations {
    /// At least this many OK replies across all clients.
    pub min_ok: u64,
    /// At least this many `over_capacity` connection rejections.
    pub min_capacity_rejections: u64,
    /// At least this many slow-frame cuts.
    pub min_frame_timeouts: u64,
    /// The drain must finish inside its budget with nothing forced.
    pub require_clean_drain: bool,
}

impl NetExpectations {
    /// Check the drill's observations; one string per violated
    /// expectation. The zero-leak invariant is always enforced.
    pub fn check(
        &self,
        stats: &ConnStatsSnapshot,
        drain_clean: bool,
        ok_replies: u64,
    ) -> Vec<String> {
        let mut v = Vec::new();
        if stats.active != 0 {
            v.push(format!("leaked {} connection(s) after drain", stats.active));
        }
        if ok_replies < self.min_ok {
            v.push(format!(
                "only {ok_replies} ok replies (wanted ≥ {})",
                self.min_ok
            ));
        }
        if stats.rejected_capacity < self.min_capacity_rejections {
            v.push(format!(
                "only {} capacity rejections (wanted ≥ {})",
                stats.rejected_capacity, self.min_capacity_rejections
            ));
        }
        if stats.timeouts_frame < self.min_frame_timeouts {
            v.push(format!(
                "only {} slow-frame cuts (wanted ≥ {})",
                stats.timeouts_frame, self.min_frame_timeouts
            ));
        }
        if self.require_clean_drain && !drain_clean {
            v.push("drain overran its budget and force-closed connections".to_string());
        }
        v
    }
}

/// One network drill.
#[derive(Clone, Debug)]
pub struct NetScenarioSpec {
    /// Stable scenario name (report key).
    pub name: &'static str,
    /// What the drill demonstrates.
    pub description: &'static str,
    /// The abuse pattern.
    pub kind: NetScenarioKind,
    /// Server tuning the scenario needs (cap, deadlines, budget).
    pub server: ServerConfig,
    /// Where drill queries land. Callers running a model-backed server
    /// with strict admission must shrink this onto the model's grid, or
    /// every query sheds as `invalid_query`.
    pub region: Region,
    /// Pass/fail expectations.
    pub expect: NetExpectations,
}

/// What one drill observed.
#[derive(Clone, Debug)]
pub struct NetDrillOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// OK replies across all drill clients.
    pub ok_replies: u64,
    /// Typed error replies by code name, sorted.
    pub err_replies: Vec<(String, u64)>,
    /// Final server counters.
    pub stats: ConnStatsSnapshot,
    /// Whether the drain finished inside its budget.
    pub drain_clean: bool,
    /// Connections the drain had to cut.
    pub forced_conns: i64,
    /// Flight-recorder dump from a forced drain, if any.
    pub flightrec_dump: Option<String>,
    /// Wall time, seconds.
    pub wall_s: f64,
    /// Violated expectations (empty = pass).
    pub violations: Vec<String>,
    /// `violations.is_empty()`.
    pub pass: bool,
}

fn drill_server_config() -> ServerConfig {
    ServerConfig {
        acceptor_threads: 1,
        read_timeout_ms: 5,
        frame_deadline_ms: 150,
        write_timeout_ms: 1_000,
        drain_budget_ms: 4_000,
        ..ServerConfig::default()
    }
}

/// The standing network drill catalog.
pub fn net_scenarios() -> Vec<NetScenarioSpec> {
    vec![
        NetScenarioSpec {
            name: "net_conn_storm",
            description: "12 simultaneous connections against a cap of 4: \
                          over-cap connects get a typed over_capacity frame, \
                          admitted ones are served, nothing leaks",
            region: Region::default(),
            kind: NetScenarioKind::ConnStorm { conns: 12 },
            server: ServerConfig {
                max_connections: 4,
                ..drill_server_config()
            },
            expect: NetExpectations {
                min_ok: 1,
                min_capacity_rejections: 1,
                require_clean_drain: true,
                ..NetExpectations::default()
            },
        },
        NetScenarioSpec {
            name: "net_slow_client",
            description: "a slowloris connection trickling half a header is \
                          cut at the frame deadline while a healthy \
                          connection keeps being served",
            region: Region::default(),
            kind: NetScenarioKind::SlowClient,
            server: drill_server_config(),
            expect: NetExpectations {
                min_ok: 3,
                min_frame_timeouts: 1,
                require_clean_drain: true,
                ..NetExpectations::default()
            },
        },
        NetScenarioSpec {
            name: "net_disconnect",
            description: "clients hanging up mid-request never wedge or leak \
                          their connections; concurrent healthy traffic is \
                          unaffected",
            region: Region::default(),
            kind: NetScenarioKind::Disconnect { victims: 3 },
            server: drill_server_config(),
            expect: NetExpectations {
                min_ok: 3,
                require_clean_drain: true,
                ..NetExpectations::default()
            },
        },
        NetScenarioSpec {
            name: "net_drain_under_load",
            description: "a drain issued mid-load flushes every admitted \
                          request inside the budget and closes every \
                          connection",
            region: Region::default(),
            kind: NetScenarioKind::DrainUnderLoad {
                clients: 2,
                load_ms: 150,
            },
            server: drill_server_config(),
            expect: NetExpectations {
                min_ok: 1,
                require_clean_drain: true,
                ..NetExpectations::default()
            },
        },
    ]
}

/// Shared reply tally across drill client threads.
#[derive(Default)]
struct Tally {
    ok: u64,
    errs: HashMap<String, u64>,
}

impl Tally {
    fn absorb(&mut self, resp: &WireResponse) {
        match resp {
            WireResponse::Ok { .. } => self.ok += 1,
            WireResponse::Err { code, .. } => {
                *self.errs.entry(code.name().to_string()).or_insert(0) += 1;
            }
        }
    }
}

fn drill_query(region: &Region, i: u64) -> WireQuery {
    let fx = |f: f64| region.lng0 + (region.lng1 - region.lng0) * f;
    let fy = |f: f64| region.lat0 + (region.lat1 - region.lat0) * f;
    WireQuery {
        o_lng: fx(0.2 + 0.6 * (i % 7) as f64 / 7.0),
        o_lat: fy(0.3),
        d_lng: fx(0.7),
        d_lat: fy(0.2 + 0.6 * (i % 5) as f64 / 5.0),
        t_dep: 8.0 * 3600.0 + i as f64,
    }
}

fn drill_request(region: &Region, id: u64, trace_seq: &AtomicU64) -> WireRequest {
    let raw = 0xD811_0000_0000_0000 | trace_seq.fetch_add(1, Ordering::Relaxed);
    WireRequest {
        id,
        query: drill_query(region, id),
        deadline_ms: Some(2_000),
        trace: odt_obs::TraceId::from_raw(raw),
        parent_span: None,
    }
}

fn connect(addr: SocketAddr) -> Option<TcpStream> {
    let s = TcpStream::connect(addr).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    Some(s)
}

/// One request/response exchange; `None` when the server closed on us.
fn exchange(s: &mut TcpStream, req: &WireRequest) -> Option<WireResponse> {
    write_frame(s, &req.to_json()).ok()?;
    match read_frame(s, DEFAULT_MAX_FRAME_BYTES) {
        Ok(FrameRead::Payload(p)) => WireResponse::from_json(&p).ok(),
        _ => None,
    }
}

/// Block until the server answers one probe request (any reply counts).
///
/// The factory-built barrier in [`run_net_scenario_with`] already
/// guarantees the backend exists; this probe additionally proves the
/// dispatch → backend → reply path flows end to end before the drill's
/// abuse pattern (and its request deadlines) start measuring.
fn wait_ready(addr: SocketAddr, region: &Region) -> bool {
    let give_up = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.set_read_timeout(Some(Duration::from_secs(120)));
            let req = WireRequest {
                id: 0,
                query: drill_query(region, 0),
                deadline_ms: Some(120_000),
                trace: None,
                parent_span: None,
            };
            if write_frame(&mut s, &req.to_json()).is_ok() {
                if let Ok(FrameRead::Payload(_)) = read_frame(&mut s, DEFAULT_MAX_FRAME_BYTES) {
                    return true;
                }
            }
        }
        if Instant::now() >= give_up {
            return false;
        }
        thread::sleep(Duration::from_millis(50));
    }
}

/// Run one network drill with `backend` behind the server.
pub fn run_net_scenario<B: NetBackend + Send + 'static>(
    spec: &NetScenarioSpec,
    backend: B,
) -> NetDrillOutcome {
    run_net_scenario_with(spec, move || backend)
}

/// [`run_net_scenario`], but the backend is built *on* the server's
/// dispatcher thread by a `Send` factory — required for backends over
/// the `Rc`-based DOT model (see [`crate::server::start_with`]).
pub fn run_net_scenario_with<B, F>(spec: &NetScenarioSpec, make_backend: F) -> NetDrillOutcome
where
    B: NetBackend + 'static,
    F: FnOnce() -> B + Send + 'static,
{
    let t0 = Instant::now();
    let trace_seq = AtomicU64::new(1);
    let fail = |violations: Vec<String>| NetDrillOutcome {
        name: spec.name,
        ok_replies: 0,
        err_replies: Vec::new(),
        stats: ConnStatsSnapshot::default(),
        drain_clean: false,
        forced_conns: 0,
        flightrec_dump: None,
        wall_s: t0.elapsed().as_secs_f64(),
        violations,
        pass: false,
    };
    // Machine-readable readiness: the factory signals the instant the
    // backend exists, so the drill separates "backend still constructing"
    // (wait quietly, no deadline pressure) from "server mute" (a bug the
    // probe below would surface). This mirrors the server binary's
    // "ready" line / `/readyz` flip.
    let (built_tx, built_rx) = std::sync::mpsc::channel::<()>();
    let make_backend = move || {
        let backend = make_backend();
        let _ = built_tx.send(());
        backend
    };
    let handle = match start_with(spec.server.clone(), make_backend) {
        Ok(h) => h,
        Err(e) => return fail(vec![format!("server failed to start: {e}")]),
    };
    let addr = handle.addr();
    if built_rx.recv_timeout(Duration::from_secs(600)).is_err() {
        let _ = handle.drain();
        return fail(vec!["backend factory never finished".to_string()]);
    }
    if !wait_ready(addr, &spec.region) {
        let _ = handle.drain();
        return fail(vec!["server never answered the readiness probe".to_string()]);
    }

    let tally = Arc::new(Mutex::new(Tally::default()));

    match spec.kind {
        NetScenarioKind::ConnStorm { conns } => {
            // Everyone connects and exchanges one request, then waits at
            // a barrier before hanging up — admitted connections hold
            // their slots so the rest reliably hit the cap.
            let barrier = Arc::new(Barrier::new(conns));
            let mut threads = Vec::new();
            for i in 0..conns {
                let barrier = Arc::clone(&barrier);
                let tally = Arc::clone(&tally);
                let req = drill_request(&spec.region, i as u64 + 1, &trace_seq);
                threads.push(thread::spawn(move || {
                    let resp = connect(addr).and_then(|mut s| {
                        let r = exchange(&mut s, &req);
                        barrier.wait();
                        drop(s);
                        r
                    });
                    if resp.is_none() {
                        barrier.wait(); // connect failed: release the rest
                    }
                    if let Some(r) = resp {
                        tally.lock().unwrap().absorb(&r);
                    }
                }));
            }
            for t in threads {
                let _ = t.join();
            }
        }
        NetScenarioKind::SlowClient => {
            // The slowloris: half a header, then nothing.
            let slow = connect(addr);
            if let Some(mut s) = slow {
                let _ = s.write_all(&[0u8, 0]);
                // A healthy neighbor is served while the slow one waits
                // out its frame deadline.
                if let Some(mut healthy) = connect(addr) {
                    for i in 0..4u64 {
                        if let Some(r) = exchange(
                            &mut healthy,
                            &drill_request(&spec.region, i + 1, &trace_seq),
                        ) {
                            tally.lock().unwrap().absorb(&r);
                        }
                    }
                }
                // Wait past the deadline so the server provably cut us.
                let cut_by = Instant::now();
                let deadline = Duration::from_millis(spec.server.frame_deadline_ms * 3 + 500);
                loop {
                    match read_frame(&mut s, DEFAULT_MAX_FRAME_BYTES) {
                        Ok(FrameRead::Closed) | Err(_) => break,
                        Ok(FrameRead::Payload(_)) => {}
                    }
                    if cut_by.elapsed() > deadline {
                        break;
                    }
                }
            }
        }
        NetScenarioKind::Disconnect { victims } => {
            for i in 0..victims {
                if let Some(mut s) = connect(addr) {
                    let _ = write_frame(
                        &mut s,
                        &drill_request(&spec.region, i as u64 + 1, &trace_seq).to_json(),
                    );
                    drop(s); // hang up before the reply
                }
            }
            if let Some(mut healthy) = connect(addr) {
                for i in 0..4u64 {
                    if let Some(r) = exchange(
                        &mut healthy,
                        &drill_request(&spec.region, 100 + i, &trace_seq),
                    ) {
                        tally.lock().unwrap().absorb(&r);
                    }
                }
            }
        }
        NetScenarioKind::DrainUnderLoad { clients, load_ms } => {
            let mut threads = Vec::new();
            for c in 0..clients {
                let tally = Arc::clone(&tally);
                let region = spec.region;
                let seq = AtomicU64::new(c as u64 * 10_000 + 1);
                threads.push(thread::spawn(move || {
                    let Some(mut s) = connect(addr) else { return };
                    for i in 0..100_000u64 {
                        let id = seq.fetch_add(1, Ordering::Relaxed) + i;
                        let req = WireRequest {
                            id,
                            query: drill_query(&region, id),
                            deadline_ms: Some(2_000),
                            trace: None,
                            parent_span: None,
                        };
                        let Some(r) = exchange(&mut s, &req) else {
                            return;
                        };
                        let draining = matches!(
                            r,
                            WireResponse::Err {
                                code: WireErrorCode::ServerDraining,
                                ..
                            }
                        );
                        tally.lock().unwrap().absorb(&r);
                        if draining {
                            return;
                        }
                    }
                }));
            }
            thread::sleep(Duration::from_millis(load_ms));
            // Drain while the clients are mid-conversation.
            let report = handle.drain();
            for t in threads {
                let _ = t.join();
            }
            let tally = tally.lock().unwrap();
            let mut errs: Vec<_> = tally.errs.iter().map(|(k, v)| (k.clone(), *v)).collect();
            errs.sort();
            let violations = spec.expect.check(&report.stats, report.clean, tally.ok);
            return NetDrillOutcome {
                name: spec.name,
                ok_replies: tally.ok,
                err_replies: errs,
                stats: report.stats.clone(),
                drain_clean: report.clean,
                forced_conns: report.forced_conns,
                flightrec_dump: report.flightrec_dump.clone(),
                wall_s: t0.elapsed().as_secs_f64(),
                pass: violations.is_empty(),
                violations,
            };
        }
    }

    let report = handle.drain();
    let tally = tally.lock().unwrap();
    let mut errs: Vec<_> = tally.errs.iter().map(|(k, v)| (k.clone(), *v)).collect();
    errs.sort();
    let violations = spec.expect.check(&report.stats, report.clean, tally.ok);
    NetDrillOutcome {
        name: spec.name,
        ok_replies: tally.ok,
        err_replies: errs,
        stats: report.stats.clone(),
        drain_clean: report.clean,
        forced_conns: report.forced_conns,
        flightrec_dump: report.flightrec_dump.clone(),
        wall_s: t0.elapsed().as_secs_f64(),
        pass: violations.is_empty(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::EchoBackend;

    #[test]
    fn the_catalog_has_the_four_standing_drills() {
        let names: Vec<_> = net_scenarios().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "net_conn_storm",
                "net_slow_client",
                "net_disconnect",
                "net_drain_under_load"
            ]
        );
    }

    #[test]
    fn all_net_drills_pass_against_an_echo_backend() {
        for spec in net_scenarios() {
            let delay = match spec.kind {
                // Give the drain something to actually flush.
                NetScenarioKind::DrainUnderLoad { .. } => Duration::from_millis(3),
                _ => Duration::ZERO,
            };
            let outcome = run_net_scenario(&spec, EchoBackend { delay });
            assert!(
                outcome.pass,
                "{} failed: {:?}\nstats: {:?}",
                spec.name, outcome.violations, outcome.stats
            );
            assert_eq!(outcome.stats.active, 0, "{} leaked", spec.name);
        }
    }

    #[test]
    fn expectations_catch_leaks_and_shortfalls() {
        let mut stats = ConnStatsSnapshot::default();
        stats.active = 1;
        let v = NetExpectations {
            min_ok: 5,
            ..NetExpectations::default()
        }
        .check(&stats, true, 2);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("leaked"));
        assert!(v[1].contains("ok replies"));
    }
}
