//! A minimal, std-only JSON reader for the `odt-wire/v1` protocol.
//!
//! The wire payloads are small flat objects, but a server must not trust
//! the client: the parser is a strict recursive-descent reader with a
//! depth limit, full escape handling (including surrogate pairs), and a
//! trailing-garbage check. It never panics on malformed input — every
//! failure is a typed [`JsonError`] that the frame handler turns into a
//! `malformed_frame` wire error.
//!
//! Writing is the easy direction and lives with the frame types in
//! [`crate::wire`]; this module only reads — plus [`JsonValue::render`],
//! the lossless re-serializer the federation roll-up uses to embed
//! scraped sub-documents.

use std::fmt;

/// Maximum nesting depth accepted (wire payloads are flat; anything deep
/// is hostile or broken).
const MAX_DEPTH: usize = 16;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as f64; wire ids fit exactly below
    /// 2^53, far beyond what a single connection can issue).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order (duplicate keys keep the last value
    /// via [`JsonValue::get`] scanning from the back).
    Obj(Vec<(String, JsonValue)>),
}

/// Why a payload failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where the error was detected.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl JsonValue {
    /// Parse a complete JSON document; trailing non-whitespace is an
    /// error (a frame carries exactly one document).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup (last occurrence wins on duplicate keys);
    /// `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a u64, if this is a non-negative integer that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Re-serialize this value onto `out`. Integers that fit `i64`
    /// render without a fraction; non-finite numbers render as `null`
    /// (JSON has no NaN/Inf literal). Used by the federation layer to
    /// embed scraped `/varz` sub-objects verbatim in the cluster
    /// roll-up.
    pub fn render(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    out.push_str(&(*n as i64).to_string());
                } else {
                    odt_obs::json::push_f64(out, *n);
                }
            }
            JsonValue::Str(s) => odt_obs::json::push_str_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    odt_obs::json::push_str_escaped(out, k);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn eat_lit(&mut self, lit: &str, msg: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => {
                self.eat_lit("true", "expected 'true'")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.eat_lit("false", "expected 'false'")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') => {
                self.eat_lit("null", "expected 'null'")?;
                Ok(JsonValue::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require a low surrogate.
                                self.eat_lit("\\u", "lone high surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(ch);
                            // hex4 leaves pos past the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = s.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(JsonValue::Num(n))
    }
}

/// Escape a string for embedding in a JSON document (used by the wire
/// writers). One escaper for the whole workspace: this is
/// `odt_obs::json::push_str_escaped`, re-exported under the name the
/// wire writers grew up with.
pub use odt_obs::json::push_str_escaped as escape_into;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_wire_shaped_request() {
        let v = JsonValue::parse(
            r#"{"v":"odt-wire/v1","id":42,"o":[116.3,39.9],"d":[116.5,40.0],
               "t_dep":28800.0,"deadline_ms":50,"trace":"c0ffee"}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("v").unwrap().as_str(), Some("odt-wire/v1"));
        let o = v.get("o").unwrap().as_arr().unwrap();
        assert_eq!(o[0].as_f64(), Some(116.3));
        assert_eq!(v.get("deadline_ms").unwrap().as_u64(), Some(50));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn handles_escapes_and_unicode() {
        let v = JsonValue::parse(r#""a\"b\\c\nAé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nAé😀"));
        // Lone surrogates are rejected, not panicked on.
        assert!(JsonValue::parse(r#""\ud83d""#).is_err());
        assert!(JsonValue::parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1,]",
            "[1 2]",
            "truth",
            "nul",
            "\"unterminated",
            "1e999",
            "-",
            "1.2.3",
            "{\"a\":1} extra",
            "\u{1}",
            "\"ctrl\u{1}char\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Deep nesting is bounded, not stack-overflowed.
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(JsonValue::parse(&deep).is_err());
    }

    #[test]
    fn numbers_round_trip_and_u64_guards_hold() {
        let v = JsonValue::parse("[0, -1.5, 3e2, 9007199254740992, 1.25]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(0));
        assert_eq!(a[1].as_f64(), Some(-1.5));
        assert_eq!(a[1].as_u64(), None);
        assert_eq!(a[2].as_f64(), Some(300.0));
        assert_eq!(a[3].as_u64(), Some(1u64 << 53));
        assert_eq!(a[4].as_u64(), None);
    }

    #[test]
    fn duplicate_keys_last_wins_and_escape_into_round_trips() {
        let v = JsonValue::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));

        let mut out = String::new();
        escape_into(&mut out, "he said \"hi\"\n\tπ\u{1}");
        let back = JsonValue::parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("he said \"hi\"\n\tπ\u{1}"));
    }

    #[test]
    fn render_round_trips_parsed_documents() {
        let doc = r#"{"s":"a\"b","n":-2.5,"i":42,"b":true,"z":null,"a":[1,{"k":"v"}]}"#;
        let v = JsonValue::parse(doc).unwrap();
        let mut out = String::new();
        v.render(&mut out);
        assert_eq!(JsonValue::parse(&out).unwrap(), v, "{out}");
        // Integers stay integers (no trailing .0 noise in the roll-up).
        assert!(out.contains("\"i\":42"), "{out}");
    }
}
