//! `odt-net`: the networked serving layer for the OD travel-time oracle.
//!
//! Everything here is `std`-only TCP: a length-prefixed JSON protocol
//! ([`wire`], `odt-wire/v1`), a hardened multi-threaded server
//! ([`server`]) that feeds the deadline-aware [`odt_serve`] frontend
//! through bounded queues with typed overload errors and graceful
//! drain, a coordinated-omission-free load generator ([`loadgen`]), a
//! network-fault drill catalog ([`drill`]) extending the serving chaos
//! harness, a tiny Unix signal shim ([`signal`]) so server binaries
//! can drain on SIGTERM/ctrl-c, and a live introspection plane
//! ([`admin`]): an off-band HTTP endpoint serving Prometheus
//! `/metrics`, `/healthz`/`/readyz` probes, `/varz`/`/tracez` JSON and
//! operator-triggered flight-recorder dumps.
//!
//! On top of the single-process stack sits the sharded cluster: grid-
//! region placement by rendezvous hashing ([`shard`]), a router with
//! per-replica health probing, circuit-breaker failover, and a
//! shard-dark haversine prior ([`cluster`]), plus deterministic
//! replica-kill and shard-partition drills ([`cluster_drill`]).
//!
//! The cluster observes itself through one pane: requests carry
//! trace/parent-span context across every hop (router spans and shard
//! spans stitch into one tree by trace id), and the router federates
//! every replica's `/metrics` and `/varz` into `GET /metrics/cluster` /
//! `GET /varz/cluster` with exact bucket-wise histogram merges
//! ([`fed`]).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod cluster;
pub mod cluster_drill;
pub mod drill;
pub mod fed;
pub mod json;
pub mod loadgen;
pub mod server;
pub mod shard;
pub mod signal;
pub mod wire;

pub use admin::{
    render_tracez, render_varz, start_admin, AdminConfig, AdminHandle, AdminSources, SwapFn, VarzFn,
};
pub use cluster::{
    haversine_seconds, post_flightrec, probe_readyz, render_router_varz, start_health_prober,
    ClusterConfig, ClusterShared, ClusterSnapshot, ProberHandle, ReplicaAddr, ReplicaHealth,
    ReplicaSnapshot, RouterBackend, PRIOR_RUNG,
};
pub use cluster_drill::{
    cluster_drill_names, run_cluster_drills, run_cluster_replica_kill,
    run_cluster_router_partition, run_cluster_trace_loss, ClusterDrillOutcome,
};
pub use drill::{
    net_scenarios, run_net_scenario, run_net_scenario_with, NetDrillOutcome, NetExpectations,
    NetScenarioKind, NetScenarioSpec,
};
pub use fed::{http_get, start_scraper, ClusterScraper, ScrapeTarget, ScraperHandle};
pub use loadgen::{
    coarse_od_key, KeySkew, LatencySummary, LoadConfig, LoadMode, LoadReport, OdMixer, Region,
};
pub use server::{
    instance_name, set_instance_name, start, start_with, ConnStatsSnapshot, DrainReport,
    EchoBackend, FrontendBridge, NetBackend, NetRequest, ServerConfig, ServerHandle,
    ServerStatsHandle, SharedFrontendStats,
};
pub use shard::ShardMap;
pub use wire::{
    read_frame, write_frame, FrameError, FrameRead, WireErrorCode, WireQuery, WireRequest,
    WireResponse, WIRE_SCHEMA,
};
