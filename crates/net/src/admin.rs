//! The live introspection plane: a hand-rolled HTTP/1.1 admin endpoint
//! served off-band from the wire protocol port.
//!
//! Production debugging of the oracle server needs answers *while the
//! incident is happening*: what are the latency histograms doing, which
//! breakers are open, is the model drifting, is the process even ready?
//! This module serves those answers over plain HTTP so `curl`,
//! Prometheus, and load-balancer health checks all work unmodified:
//!
//! | route             | answer                                           |
//! |-------------------|--------------------------------------------------|
//! | `GET /metrics`    | the whole metrics registry, Prometheus text
//!                       exposition 0.0.4 ([`odt_obs::expo`])              |
//! | `GET /healthz`    | liveness — `200 ok` whenever the process serves  |
//! | `GET /readyz`     | readiness — `503` until the backend factory (model
//!                       training/loading) finishes, `200 ready` after     |
//! | `GET /varz`       | JSON snapshot: server state, connection counters,
//!                       frontend/rung/breaker stats, model quality        |
//! | `GET /tracez`     | JSON: recently retained traces with per-span
//!                       self-times                                        |
//! | `GET /metrics/cluster` | routers only: federated exposition of every
//!                       replica's `/metrics` plus merged cluster
//!                       histograms ([`crate::fed`])                       |
//! | `GET /varz/cluster` | routers only: cluster topology/quality roll-up |
//! | `POST /flightrec` | trigger a flight-recorder dump, return its path  |
//! | `POST /swap`      | request a zero-downtime hot model swap; the body
//!                       is the candidate checkpoint path                  |
//!
//! ## Hardening
//!
//! The admin port is still a listening socket, so it gets the same class
//! of defenses as the wire port, scaled down: bounded header size (reject
//! oversized requests before buffering them), read/write timeouts, a cap
//! on concurrent handler threads (over-cap connections get `503` and an
//! immediate close), one request per connection (`Connection: close` —
//! no keep-alive state machine to abuse). Request bodies are read only
//! for `POST /swap`, bounded by the same byte cap as headers. The plane
//! is **read-only** except `POST /flightrec` (writes an incident dump to
//! the operator-configured directory) and `POST /swap` (hands the
//! candidate path to the server's swap controller, which validates and
//! shadow-scores it before anything changes).
//!
//! ## Liveness vs readiness
//!
//! `/healthz` answers 200 from the moment the admin socket is up — it
//! means "the process is alive and the introspection plane works", and
//! it deliberately stays green while the model trains so orchestrators
//! don't kill a booting server. `/readyz` is the routable signal: it
//! flips to 200 only when the owner calls [`AdminHandle::set_ready`]
//! (the server binary does this exactly when the backend factory
//! finishes) and back to 503 when a drain starts.

use crate::server::ConnStatsSnapshot;
use odt_obs::json::{push_f64, push_str_escaped};
use odt_obs::QualitySnapshot;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Admin endpoint tuning. `Default` binds an ephemeral loopback port.
#[derive(Clone, Debug)]
pub struct AdminConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    /// Bind this to loopback or an ops network — the plane has no auth.
    pub addr: String,
    /// Cap on a request's header bytes; larger requests get `431`.
    pub max_request_bytes: usize,
    /// Per-connection read timeout, ms (the whole request must arrive
    /// within one tick of this).
    pub read_timeout_ms: u64,
    /// Per-connection write timeout, ms.
    pub write_timeout_ms: u64,
    /// Cap on concurrent handler threads; over-cap connects get `503`.
    pub max_connections: usize,
    /// Most recent retained traces `/tracez` returns.
    pub tracez_limit: usize,
}

impl Default for AdminConfig {
    fn default() -> Self {
        AdminConfig {
            addr: "127.0.0.1:0".to_string(),
            max_request_bytes: 8 * 1024,
            read_timeout_ms: 2_000,
            write_timeout_ms: 2_000,
            max_connections: 8,
            tracez_limit: 32,
        }
    }
}

/// Closure rendering the `/varz` JSON body; installed by the server
/// binary so the admin plane stays decoupled from what it introspects.
pub type VarzFn = Box<dyn Fn() -> String + Send + Sync>;

/// Handler for `POST /swap`: takes the candidate checkpoint path (the
/// request body, trimmed) and returns `(http_status, json_body)`. The
/// server binary bridges this to its swap controller; the closure runs
/// on an admin handler thread, so it must only enqueue + wait, never
/// touch the (`!Send`) model directly.
pub type SwapFn = Box<dyn Fn(&str) -> (u16, String) + Send + Sync>;

/// Pluggable data sources for routes whose content the admin plane does
/// not own. `/metrics` and `/tracez` read the process-global `odt_obs`
/// state directly and need no source.
#[derive(Default)]
pub struct AdminSources {
    /// `/varz` body builder (see [`render_varz`]). When absent, `/varz`
    /// serves a stub that says so.
    pub varz: Option<VarzFn>,
    /// `POST /swap` handler. When absent, `/swap` answers `503` — the
    /// process has no swappable model (echo backends, routers).
    pub swap: Option<SwapFn>,
    /// `GET /metrics/cluster` body builder: the federated Prometheus
    /// exposition (router processes install [`crate::fed`]'s renderer).
    /// When absent — every non-router process — the route answers `503`.
    pub metrics_cluster: Option<VarzFn>,
    /// `GET /varz/cluster` body builder: the cluster topology/quality
    /// roll-up JSON. When absent, the route answers `503`.
    pub varz_cluster: Option<VarzFn>,
}

struct AdminShared {
    cfg: AdminConfig,
    sources: AdminSources,
    ready: AtomicBool,
    stopping: AtomicBool,
    active: AtomicI64,
    requests: AtomicU64,
}

/// A running admin endpoint. [`AdminHandle::shutdown`] stops it; dropping
/// without shutdown leaves the acceptor thread running (process-owned,
/// like the wire server).
pub struct AdminHandle {
    addr: SocketAddr,
    shared: Arc<AdminShared>,
    acceptor: Option<JoinHandle<()>>,
}

/// Start the admin endpoint: binds, spawns one acceptor thread (handler
/// threads are per-request, capped), returns immediately. Readiness
/// starts `false`.
pub fn start_admin(cfg: AdminConfig, sources: AdminSources) -> io::Result<AdminHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(AdminShared {
        cfg,
        sources,
        ready: AtomicBool::new(false),
        stopping: AtomicBool::new(false),
        active: AtomicI64::new(0),
        requests: AtomicU64::new(0),
    });
    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("odt-admin".to_string())
            .spawn(move || accept_loop(listener, shared))
            .map_err(|e| io::Error::new(io::ErrorKind::Other, e))?
    };
    odt_obs::event(odt_obs::Level::Info, "admin.start")
        .field("addr", addr.to_string())
        .emit();
    Ok(AdminHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
    })
}

impl AdminHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flip the `/readyz` signal. The owner calls `set_ready(true)`
    /// exactly when the backend can answer queries, and `set_ready(false)`
    /// when a drain starts — load balancers then stop routing before the
    /// wire port refuses.
    pub fn set_ready(&self, ready: bool) {
        let was = self.shared.ready.swap(ready, Ordering::Release);
        if was != ready {
            odt_obs::event(odt_obs::Level::Info, "admin.ready")
                .field("ready", ready)
                .emit();
            odt_obs::gauge("admin.ready").set(if ready { 1.0 } else { 0.0 });
        }
    }

    /// Current readiness.
    pub fn is_ready(&self) -> bool {
        self.shared.ready.load(Ordering::Acquire)
    }

    /// Requests handled so far (any route, any status).
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Stop accepting and join the acceptor. In-flight handlers finish
    /// on their own (bounded by the read/write timeouts).
    pub fn shutdown(mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        odt_obs::event(odt_obs::Level::Info, "admin.stop").emit();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<AdminShared>) {
    loop {
        if shared.stopping.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let cur = shared.active.fetch_add(1, Ordering::Relaxed) + 1;
                if cur > shared.cfg.max_connections as i64 {
                    shared.active.fetch_sub(1, Ordering::Relaxed);
                    over_capacity(stream, &shared.cfg);
                    continue;
                }
                let shared2 = Arc::clone(&shared);
                let spawned = thread::Builder::new()
                    .name("odt-admin-conn".to_string())
                    .spawn(move || {
                        handle_conn(stream, &shared2);
                        shared2.active.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    shared.active.fetch_sub(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn over_capacity(mut stream: TcpStream, cfg: &AdminConfig) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms.max(1))));
    let _ = stream.write_all(
        response(
            503,
            "text/plain; charset=utf-8",
            "admin connection cap reached\n",
        )
        .as_bytes(),
    );
    let _ = stream.shutdown(Shutdown::Both);
}

/// Serialize one HTTP/1.1 response; every admin reply closes the
/// connection (no keep-alive state to manage or abuse).
fn response(status: u16, content_type: &str, body: &str) -> String {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn handle_conn(mut stream: TcpStream, shared: &Arc<AdminShared>) {
    let cfg = &shared.cfg;
    if stream
        .set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1))))
        .is_err()
    {
        return;
    }
    let _ = stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms.max(1))));

    // Read the request head (everything through the blank line), bounded.
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break Some(pos);
        }
        if buf.len() > cfg.max_request_bytes {
            break None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break None, // timeout or reset: give up on the request
        }
    };
    let reply = match head_end {
        None if buf.len() > cfg.max_request_bytes => {
            odt_obs::counter("admin.errors").inc();
            response(431, "text/plain; charset=utf-8", "request too large\n")
        }
        None => {
            odt_obs::counter("admin.errors").inc();
            response(400, "text/plain; charset=utf-8", "incomplete request\n")
        }
        Some(pos) => {
            let head = String::from_utf8_lossy(&buf[..pos]).into_owned();
            shared.requests.fetch_add(1, Ordering::Relaxed);
            odt_obs::counter("admin.requests").inc();
            match read_body(&mut stream, &mut buf, pos + 4, &head, cfg) {
                Ok(body) => route(&head, &body, shared),
                Err(reply) => reply,
            }
        }
    };
    let _ = stream.write_all(reply.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Read the request body declared by `Content-Length` (anything already
/// buffered past the head counts), bounded by the same byte cap as the
/// head. Returns the body as lossy UTF-8, or a ready-to-send error
/// response.
fn read_body(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    body_start: usize,
    head: &str,
    cfg: &AdminConfig,
) -> Result<String, String> {
    let declared = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>().ok())?
        })
        .unwrap_or(0);
    if declared == 0 {
        return Ok(String::new());
    }
    if declared > cfg.max_request_bytes {
        odt_obs::counter("admin.errors").inc();
        return Err(response(
            431,
            "text/plain; charset=utf-8",
            "request body too large\n",
        ));
    }
    let mut chunk = [0u8; 1024];
    while buf.len() < body_start + declared {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break, // timeout or reset
        }
    }
    if buf.len() < body_start + declared {
        odt_obs::counter("admin.errors").inc();
        return Err(response(
            400,
            "text/plain; charset=utf-8",
            "incomplete request body\n",
        ));
    }
    Ok(String::from_utf8_lossy(&buf[body_start..body_start + declared]).into_owned())
}

fn route(head: &str, body: &str, shared: &Arc<AdminShared>) -> String {
    let mut first = head.lines().next().unwrap_or("").split_whitespace();
    let method = first.next().unwrap_or("");
    // Strip any query string: the plane takes no parameters.
    let path = first.next().unwrap_or("").split('?').next().unwrap_or("");
    match (method, path) {
        ("GET", "/metrics") => response(200, odt_obs::expo::CONTENT_TYPE, &odt_obs::expo::render()),
        ("GET", "/healthz") => response(200, "text/plain; charset=utf-8", "ok\n"),
        ("GET", "/readyz") => {
            if shared.ready.load(Ordering::Acquire) {
                response(200, "text/plain; charset=utf-8", "ready\n")
            } else {
                response(
                    503,
                    "text/plain; charset=utf-8",
                    "not ready: backend unavailable\n",
                )
            }
        }
        ("GET", "/varz") => {
            let body = match &shared.sources.varz {
                Some(f) => f(),
                None => "{\"schema\":\"odt-varz/v1\",\"available\":false}".to_string(),
            };
            response(200, "application/json; charset=utf-8", &body)
        }
        ("GET", "/tracez") => response(
            200,
            "application/json; charset=utf-8",
            &render_tracez(shared.cfg.tracez_limit),
        ),
        ("GET", "/metrics/cluster") => match &shared.sources.metrics_cluster {
            Some(f) => response(200, odt_obs::expo::CONTENT_TYPE, &f()),
            None => response(
                503,
                "text/plain; charset=utf-8",
                "no cluster federation: this process is not a router\n",
            ),
        },
        ("GET", "/varz/cluster") => match &shared.sources.varz_cluster {
            Some(f) => response(200, "application/json; charset=utf-8", &f()),
            None => response(
                503,
                "application/json; charset=utf-8",
                "{\"schema\":\"odt-cluster-varz/v1\",\"available\":false}",
            ),
        },
        ("POST", "/flightrec") => match odt_obs::flightrec::trigger("admin_request") {
            Some(path) => {
                let mut body = String::from("{\"schema\":\"odt-admin/v1\",\"dump\":");
                push_str_escaped(&mut body, &path.display().to_string());
                body.push('}');
                response(200, "application/json; charset=utf-8", &body)
            }
            None => response(
                503,
                "application/json; charset=utf-8",
                "{\"schema\":\"odt-admin/v1\",\"error\":\"flight recorder disabled\"}",
            ),
        },
        ("POST", "/swap") => match &shared.sources.swap {
            Some(f) => {
                let candidate = body.trim();
                if candidate.is_empty() {
                    response(
                        400,
                        "application/json; charset=utf-8",
                        "{\"schema\":\"odt-swap/v1\",\"accepted\":false,\
                         \"code\":\"bad_request\",\
                         \"detail\":\"body must be the candidate checkpoint path\"}",
                    )
                } else {
                    let (status, reply) = f(candidate);
                    response(status, "application/json; charset=utf-8", &reply)
                }
            }
            None => response(
                503,
                "application/json; charset=utf-8",
                "{\"schema\":\"odt-swap/v1\",\"accepted\":false,\
                 \"code\":\"unavailable\",\
                 \"detail\":\"this process has no swappable model\"}",
            ),
        },
        ("GET", "/") => response(
            200,
            "text/plain; charset=utf-8",
            "odt admin plane\n\nGET  /metrics    Prometheus exposition\n\
             GET  /healthz    liveness\nGET  /readyz     readiness\n\
             GET  /varz       server/frontend/quality JSON\n\
             GET  /tracez     retained traces JSON\n\
             GET  /metrics/cluster  federated cluster exposition (routers)\n\
             GET  /varz/cluster     cluster topology/quality roll-up (routers)\n\
             POST /flightrec  trigger a flight-recorder dump\n\
             POST /swap       hot-swap the model (body: checkpoint path)\n",
        ),
        ("GET", _) | ("POST", _) => {
            response(404, "text/plain; charset=utf-8", "unknown admin route\n")
        }
        _ => response(405, "text/plain; charset=utf-8", "method not allowed\n"),
    }
}

fn push_u64_array(out: &mut String, vals: &[u64]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn push_slo(out: &mut String, slo: &odt_obs::slo::BurnRateSnapshot) {
    out.push_str("{\"fast_burn\":");
    push_f64(out, slo.fast_burn);
    out.push_str(",\"slow_burn\":");
    push_f64(out, slo.slow_burn);
    out.push_str(&format!(
        ",\"alerting\":{},\"alerts\":{},\"total\":{},\"errors\":{}}}",
        slo.alerting, slo.alerts, slo.total, slo.errors
    ));
}

/// Render the `/varz` JSON body (`odt-varz/v1`) from the server's live
/// state. The server binary wraps this in a closure over its stats
/// handles; tests call it directly. `cache` is the estimate cache's
/// counters when the server runs with `--cache`; without one the block
/// renders as `null` so consumers can tell "disabled" from "cold".
pub fn render_varz(
    state: &str,
    conn: &ConnStatsSnapshot,
    inflight: i64,
    frontend: Option<(&odt_serve::FrontendSnapshot, u64)>,
    quality: Option<&QualitySnapshot>,
    cache: Option<&odt_serve::CacheStats>,
) -> String {
    let mut o = String::with_capacity(1024);
    o.push_str("{\"schema\":\"odt-varz/v1\",\"state\":");
    push_str_escaped(&mut o, state);
    o.push_str(&format!(",\"inflight\":{inflight},\"conns\":{{"));
    o.push_str(&format!(
        "\"opened\":{},\"closed\":{},\"active\":{},\"rejected_capacity\":{},\
         \"rejected_draining\":{},\"frames_in\":{},\"frames_out\":{},\
         \"malformed\":{},\"too_large\":{},\"timeouts_idle\":{},\
         \"timeouts_frame\":{},\"read_errors\":{},\"write_errors\":{},\
         \"backpressure_stalls\":{},\"dispatch_shed\":{},\"reply_drops\":{},\
         \"forced_closes\":{}}}",
        conn.opened,
        conn.closed,
        conn.active,
        conn.rejected_capacity,
        conn.rejected_draining,
        conn.frames_in,
        conn.frames_out,
        conn.malformed,
        conn.too_large,
        conn.timeouts_idle,
        conn.timeouts_frame,
        conn.read_errors,
        conn.write_errors,
        conn.backpressure_stalls,
        conn.dispatch_shed,
        conn.reply_drops,
        conn.forced_closes
    ));
    o.push_str(",\"frontend\":");
    match frontend {
        None => o.push_str("null"),
        Some((fe, adopted)) => {
            o.push_str(&format!(
                "{{\"submitted\":{},\"admitted\":{},\"served\":{},\
                 \"shed\":{{\"queue_full\":{},\"deadline\":{},\"invalid\":{},\
                 \"internal\":{}}},\"rung_hits\":",
                fe.submitted,
                fe.admitted,
                fe.served,
                fe.shed_queue_full,
                fe.shed_deadline,
                fe.shed_invalid,
                fe.shed_internal
            ));
            push_u64_array(&mut o, &fe.rung_hits);
            o.push_str(",\"rung_failures\":");
            push_u64_array(&mut o, &fe.rung_failures);
            o.push_str(",\"ladder_cost_us\":");
            push_u64_array(&mut o, &fe.ladder_cost_us);
            o.push_str(",\"breaker\":{\"trips\":");
            push_u64_array(&mut o, &fe.breaker_trips);
            o.push_str(",\"states\":[");
            for (i, s) in fe.breaker_states.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                push_str_escaped(&mut o, s);
            }
            o.push_str(&format!(
                "]}},\"deadline\":{{\"met\":{},\"missed\":{}}},\"slo\":",
                fe.deadline_met, fe.deadline_missed
            ));
            match &fe.slo {
                Some(slo) => push_slo(&mut o, slo),
                None => o.push_str("null"),
            }
            o.push_str(&format!(",\"adopted_traces\":{adopted}}}"));
        }
    }
    o.push_str(",\"quality\":");
    match quality {
        None => o.push_str("null"),
        Some(q) => {
            o.push_str(&format!(
                "{{\"samples\":{},\"window_len\":{},\"mae_s\":",
                q.samples, q.window_len
            ));
            push_f64(&mut o, q.mae_s);
            o.push_str(",\"mape\":");
            push_f64(&mut o, q.mape);
            o.push_str(",\"bias_s\":");
            push_f64(&mut o, q.bias_s);
            o.push_str(",\"drift_score\":");
            push_f64(&mut o, q.drift_score);
            o.push_str(&format!(
                ",\"reference_frozen\":{},\"drift_alerting\":{},\"drift_alerts\":{},\"slo\":",
                q.reference_frozen, q.drift_alerting, q.drift_alerts
            ));
            match &q.slo {
                Some(slo) => push_slo(&mut o, slo),
                None => o.push_str("null"),
            }
            o.push('}');
        }
    }
    o.push_str(",\"cache\":");
    match cache {
        None => o.push_str("null"),
        Some(c) => {
            o.push_str(&format!(
                "{{\"len\":{},\"capacity\":{},\"generation\":{},\"hits\":{},\
                 \"stale_hits\":{},\"misses\":{},\"hit_rate\":",
                c.len, c.capacity, c.generation, c.hits, c.stale_hits, c.misses
            ));
            push_f64(&mut o, c.hit_rate());
            o.push_str(&format!(
                ",\"evictions\":{},\"admission_rejects\":{},\"prewarm_batches\":{},\
                 \"invalidations\":{},\"invalidated_entries\":{}}}",
                c.evictions,
                c.admission_rejects,
                c.prewarm_batches,
                c.invalidations,
                c.invalidated_entries
            ));
        }
    }
    o.push('}');
    o
}

/// Render the `/tracez` JSON body (`odt-tracez/v1`): the most recent
/// `limit` force-retained/sampled traces with per-span *self* times
/// (duration minus the duration of direct children — where inside the
/// request the time actually went).
pub fn render_tracez(limit: usize) -> String {
    let traces = odt_obs::trace::retained_traces();
    let skip = traces.len().saturating_sub(limit);
    let mut o = String::with_capacity(1024);
    o.push_str("{\"schema\":\"odt-tracez/v1\",\"instance\":");
    push_str_escaped(&mut o, crate::server::instance_name());
    o.push_str(&format!(",\"retained\":{},\"traces\":[", traces.len()));
    for (ti, t) in traces[skip..].iter().enumerate() {
        if ti > 0 {
            o.push(',');
        }
        push_trace(&mut o, t);
    }
    o.push_str("]}");
    o
}

fn push_trace(o: &mut String, t: &odt_obs::trace::TraceRecord) {
    // Sum of each span's direct children's durations, keyed by parent.
    let mut child_us: HashMap<u64, u64> = HashMap::new();
    for s in &t.spans {
        *child_us.entry(s.parent_id).or_insert(0) += s.dur_us;
    }
    o.push_str("{\"trace_id\":");
    push_str_escaped(o, &t.trace_id.to_hex());
    o.push_str(",\"root\":");
    push_str_escaped(o, t.root_name);
    // Remote parent span ordinal (0 = rooted in this process) — the
    // cross-process stitcher attaches this fragment under that span of
    // the same trace id in the caller's `/tracez`.
    o.push_str(&format!(",\"parent_span\":{}", t.parent_span));
    o.push_str(",\"request_id\":");
    match t.request_id {
        Some(id) => o.push_str(&id.to_string()),
        None => o.push_str("null"),
    }
    o.push_str(&format!(
        ",\"start_us\":{},\"dur_us\":{},\"sampled\":{},\"truncated\":{},\
         \"retain_reasons\":[",
        t.start_us, t.dur_us, t.sampled, t.truncated
    ));
    for (i, r) in t.retain_reasons.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        push_str_escaped(o, r);
    }
    o.push_str("],\"spans\":[");
    for (i, s) in t.spans.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let self_us = s
            .dur_us
            .saturating_sub(*child_us.get(&s.span_id).unwrap_or(&0));
        o.push_str(&format!(
            "{{\"span_id\":{},\"parent_id\":{},\"name\":",
            s.span_id, s.parent_id
        ));
        push_str_escaped(o, s.name);
        o.push_str(&format!(
            ",\"start_us\":{},\"dur_us\":{},\"self_us\":{self_us},\"tid\":{}}}",
            s.start_us, s.dur_us, s.tid
        ));
    }
    o.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, request: &str) -> (u16, String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8(raw).expect("utf8 response");
        let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
        let status: u16 = head
            .lines()
            .next()
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        (status, head.to_string(), body.to_string())
    }

    fn simple_get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        get(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n"),
        )
    }

    fn boot(sources: AdminSources) -> AdminHandle {
        start_admin(AdminConfig::default(), sources).expect("admin start")
    }

    #[test]
    fn healthz_is_immediately_live_and_readyz_flips_with_set_ready() {
        let h = boot(AdminSources::default());
        let (st, _, body) = simple_get(h.addr(), "/healthz");
        assert_eq!((st, body.as_str()), (200, "ok\n"));

        let (st, _, _) = simple_get(h.addr(), "/readyz");
        assert_eq!(st, 503, "not ready until the owner says so");
        h.set_ready(true);
        let (st, _, body) = simple_get(h.addr(), "/readyz");
        assert_eq!((st, body.as_str()), (200, "ready\n"));
        h.set_ready(false);
        let (st, _, _) = simple_get(h.addr(), "/readyz");
        assert_eq!(st, 503, "drain flips readiness back off");
        assert!(h.requests() >= 4);
        h.shutdown();
    }

    #[test]
    fn metrics_route_serves_the_exposition_content_type() {
        // Touch the registry so the body is non-empty regardless of test
        // interleaving (the registry is process-global).
        odt_obs::counter("admin.test.metric").inc();
        let h = boot(AdminSources::default());
        let (st, head, body) = simple_get(h.addr(), "/metrics");
        assert_eq!(st, 200);
        assert!(
            head.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
            "{head}"
        );
        assert!(body.contains("odt_admin_test_metric_total"), "{body}");
        assert!(head.contains("Connection: close"));
        h.shutdown();
    }

    #[test]
    fn varz_uses_the_installed_source_and_query_strings_are_ignored() {
        let h = boot(AdminSources {
            varz: Some(Box::new(|| {
                render_varz(
                    "running",
                    &ConnStatsSnapshot::default(),
                    0,
                    None,
                    None,
                    None,
                )
            })),
            ..AdminSources::default()
        });
        let (st, head, body) = simple_get(h.addr(), "/varz?pretty=1");
        assert_eq!(st, 200);
        assert!(head.contains("Content-Type: application/json"));
        assert!(body.starts_with("{\"schema\":\"odt-varz/v1\""), "{body}");
        assert!(body.contains("\"state\":\"running\""));
        h.shutdown();
    }

    #[test]
    fn varz_without_a_source_says_unavailable() {
        let h = boot(AdminSources::default());
        let (st, _, body) = simple_get(h.addr(), "/varz");
        assert_eq!(st, 200);
        assert!(body.contains("\"available\":false"), "{body}");
        h.shutdown();
    }

    #[test]
    fn unknown_routes_and_methods_get_typed_statuses() {
        let h = boot(AdminSources::default());
        let (st, _, _) = simple_get(h.addr(), "/nope");
        assert_eq!(st, 404);
        let (st, _, _) = get(h.addr(), "DELETE /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(st, 405);
        let (st, _, _) = get(
            h.addr(),
            &format!(
                "GET /metrics HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
                "j".repeat(16 * 1024)
            ),
        );
        assert_eq!(st, 431, "oversized request heads are refused");
        h.shutdown();
    }

    #[test]
    fn flightrec_route_posts_a_dump_when_enabled_and_503s_when_not() {
        let dir = std::env::temp_dir().join(format!("odt_admin_fr_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let h = boot(AdminSources::default());
        // Disabled recorder: typed refusal.
        odt_obs::flightrec::disable();
        let (st, _, body) = get(h.addr(), "POST /flightrec HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(st, 503);
        assert!(body.contains("disabled"), "{body}");
        // Enabled: the dump lands and its path comes back.
        odt_obs::flightrec::enable(&dir);
        let (st, _, body) = get(h.addr(), "POST /flightrec HTTP/1.1\r\nHost: x\r\n\r\n");
        odt_obs::flightrec::disable();
        assert_eq!(st, 200, "{body}");
        assert!(body.contains("\"dump\":"), "{body}");
        assert!(body.contains("admin_request"), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
        h.shutdown();
    }

    #[test]
    fn swap_route_reads_the_body_and_bridges_to_the_installed_handler() {
        let h = boot(AdminSources {
            swap: Some(Box::new(|candidate| {
                assert_eq!(candidate, "/models/v9.dotckpt");
                (200, "{\"accepted\":true,\"version\":9}".to_string())
            })),
            ..AdminSources::default()
        });
        let body = "/models/v9.dotckpt\n";
        let (st, head, reply) = get(
            h.addr(),
            &format!(
                "POST /swap HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert_eq!(st, 200, "{reply}");
        assert!(head.contains("Content-Type: application/json"));
        assert!(reply.contains("\"version\":9"), "{reply}");

        // An empty body is a typed 400, the handler never runs.
        let (st, _, reply) = get(h.addr(), "POST /swap HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(st, 400);
        assert!(reply.contains("\"code\":\"bad_request\""), "{reply}");
        h.shutdown();
    }

    #[test]
    fn swap_route_without_a_handler_is_a_typed_503() {
        let h = boot(AdminSources::default());
        let (st, _, reply) = get(
            h.addr(),
            "POST /swap HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\n/x/y\n",
        );
        assert_eq!(st, 503);
        assert!(reply.contains("\"code\":\"unavailable\""), "{reply}");
        h.shutdown();
    }

    #[test]
    fn oversized_swap_bodies_are_refused() {
        let h = boot(AdminSources {
            swap: Some(Box::new(|_| (200, "{}".to_string()))),
            ..AdminSources::default()
        });
        let big = "p".repeat(16 * 1024);
        let (st, _, _) = get(
            h.addr(),
            &format!(
                "POST /swap HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{big}",
                big.len()
            ),
        );
        assert_eq!(st, 431);
        h.shutdown();
    }

    #[test]
    fn tracez_renders_retained_traces_with_self_times() {
        // Build one force-retained trace with a nested span.
        odt_obs::trace::set_sample_every(1);
        {
            let root = odt_obs::trace::root_span("admin.test.request");
            root.set_request_id(77);
            {
                let _child = odt_obs::span!("admin.test.stage");
                std::thread::sleep(Duration::from_millis(2));
            }
            odt_obs::trace::force_retain_current("admin_test");
        }
        let body = render_tracez(8);
        assert!(body.starts_with("{\"schema\":\"odt-tracez/v1\""), "{body}");
        assert!(body.contains("\"root\":\"admin.test.request\""), "{body}");
        assert!(body.contains("\"request_id\":77"), "{body}");
        assert!(body.contains("admin.test.stage"), "{body}");
        assert!(body.contains("\"self_us\":"), "{body}");
        // The root's self time excludes the child: find the root span and
        // check self_us < dur_us there.
        let our_trace = body
            .split("{\"trace_id\":")
            .find(|t| t.contains("\"root\":\"admin.test.request\""))
            .expect("trace rendered");
        let spans = our_trace.split("\"spans\":[").nth(1).expect("spans array");
        let root_span = spans
            .split("{\"span_id\":")
            .find(|s| s.contains("\"name\":\"admin.test.request\""))
            .expect("root span rendered");
        let field = |name: &str| -> u64 {
            root_span
                .split(&format!("\"{name}\":"))
                .nth(1)
                .unwrap()
                .split(|c: char| !c.is_ascii_digit())
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(
            field("self_us") < field("dur_us"),
            "root self time must exclude the child: {root_span}"
        );
        // Every trace carries its remote-parent ordinal and the header
        // names the process, so cross-process stitchers can work from
        // `/tracez` bodies alone.
        assert!(body.contains("\"instance\":"), "{body}");
        assert!(body.contains("\"parent_span\":"), "{body}");
    }

    #[test]
    fn cluster_routes_503_without_a_router_and_serve_installed_sources() {
        // A plain shard process: no federation sources.
        let h = boot(AdminSources::default());
        let (st, _, body) = simple_get(h.addr(), "/metrics/cluster");
        assert_eq!(st, 503, "{body}");
        let (st, _, body) = simple_get(h.addr(), "/varz/cluster");
        assert_eq!(st, 503);
        assert!(body.contains("\"available\":false"), "{body}");
        h.shutdown();

        // A router process: both sources installed.
        let h = boot(AdminSources {
            metrics_cluster: Some(Box::new(|| {
                "# TYPE odt_cluster_up gauge\nodt_cluster_up 1\n".to_string()
            })),
            varz_cluster: Some(Box::new(|| {
                "{\"schema\":\"odt-cluster-varz/v1\",\"shards\":[]}".to_string()
            })),
            ..AdminSources::default()
        });
        let (st, head, body) = simple_get(h.addr(), "/metrics/cluster");
        assert_eq!(st, 200);
        assert!(head.contains("version=0.0.4"), "{head}");
        assert!(body.contains("odt_cluster_up 1"), "{body}");
        let (st, _, body) = simple_get(h.addr(), "/varz/cluster");
        assert_eq!(st, 200);
        assert!(
            body.starts_with("{\"schema\":\"odt-cluster-varz/v1\""),
            "{body}"
        );
        h.shutdown();
    }

    #[test]
    fn varz_renders_full_frontend_and_quality_blocks() {
        let fe = odt_serve::FrontendSnapshot {
            submitted: 10,
            admitted: 9,
            served: 8,
            shed_queue_full: 1,
            rung_hits: [3, 5, 2, 1, 0, 0],
            ladder_cost_us: [5, 4_000, 1_500, 700, 5, 10],
            breaker_states: ["closed", "closed", "open", "half_open", "closed"],
            deadline_met: 7,
            deadline_missed: 1,
            ..odt_serve::FrontendSnapshot::default()
        };
        let q = QualitySnapshot {
            samples: 100,
            window_len: 64,
            mae_s: 12.5,
            mape: 0.08,
            bias_s: -3.0,
            drift_score: 0.2,
            reference_frozen: true,
            ..QualitySnapshot::default()
        };
        let cache = odt_serve::CacheStats {
            hits: 60,
            stale_hits: 10,
            misses: 30,
            evictions: 7,
            admission_rejects: 3,
            prewarm_batches: 2,
            invalidations: 1,
            invalidated_entries: 5,
            len: 40,
            capacity: 64,
            generation: 1,
        };
        let body = render_varz(
            "draining",
            &ConnStatsSnapshot {
                opened: 3,
                active: 1,
                ..ConnStatsSnapshot::default()
            },
            2,
            Some((&fe, 4)),
            Some(&q),
            Some(&cache),
        );
        for needle in [
            "\"state\":\"draining\"",
            "\"inflight\":2",
            "\"opened\":3",
            "\"rung_hits\":[3,5,2,1,0,0]",
            "\"ladder_cost_us\":[5,4000,1500,700,5,10]",
            "\"states\":[\"closed\",\"closed\",\"open\",\"half_open\",\"closed\"]",
            "\"adopted_traces\":4",
            "\"mae_s\":12.5",
            "\"drift_score\":0.2",
            "\"reference_frozen\":true",
            "\"cache\":{\"len\":40,\"capacity\":64,\"generation\":1,\"hits\":60",
            "\"hit_rate\":0.6",
            "\"prewarm_batches\":2",
            "\"invalidated_entries\":5",
        ] {
            assert!(body.contains(needle), "missing {needle} in {body}");
        }
        // Non-finite floats must not leak into the JSON.
        let nan_q = QualitySnapshot {
            mape: f64::NAN,
            ..QualitySnapshot::default()
        };
        let body = render_varz(
            "running",
            &ConnStatsSnapshot::default(),
            0,
            None,
            Some(&nan_q),
            None,
        );
        assert!(body.contains("\"mape\":null"), "{body}");
        // No cache attached: the block is null, not absent and not zeroed.
        assert!(body.contains("\"cache\":null"), "{body}");
    }
}
