//! Grid-region shard placement for the oracle cluster.
//!
//! The router partitions the OD space by hashing `(origin_cell,
//! dest_cell)` — the same cell quantization the oracle's own grid uses,
//! at a router-chosen resolution — onto `N` shards via **rendezvous
//! (highest-random-weight) hashing**: every `(key, shard)` pair gets a
//! deterministic 64-bit score and the key lives on the shard with the
//! highest score. That buys three properties the proptests pin down:
//!
//! * **Deterministic** — placement is a pure function of
//!   `(key, shard count, seed)`; two routers with the same config agree
//!   on every key, so replicas can be probed/retried freely.
//! * **Balanced** — scores are i.i.d. uniform per shard, so keys split
//!   evenly within statistical tolerance; no token-ring hot arcs.
//! * **Minimal remap** — adding shard `N` only moves the keys whose new
//!   shard *is* `N` (a key's scores on the existing shards don't change),
//!   an expected `1/(N+1)` fraction; nothing shuffles between old shards.

use crate::loadgen::Region;
use crate::wire::WireQuery;

/// SplitMix64 finalizer as a stateless 64-bit mixer: the avalanche step
/// of the PRNG `odt_obs::SplitMix64` advances with, without the stream
/// state (placement wants a hash, not a sequence).
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic `(origin_cell, dest_cell)` → shard placement.
#[derive(Clone, Debug)]
pub struct ShardMap {
    shards: usize,
    cells: u32,
    region: Region,
    seed: u64,
}

impl ShardMap {
    /// A placement over `shards` shards, quantizing coordinates onto a
    /// `cells × cells` grid over `region`. `seed` perturbs the score
    /// space (routers in one cluster must share it).
    pub fn new(shards: usize, cells: u32, region: Region, seed: u64) -> ShardMap {
        assert!(shards >= 1, "a cluster needs at least one shard");
        let cells = cells.clamp(1, 1 << 15);
        ShardMap {
            shards,
            cells,
            region,
            seed,
        }
    }

    /// Number of shards keys are placed across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Per-axis cell count of the placement grid.
    pub fn cells(&self) -> u32 {
        self.cells
    }

    /// Quantize one coordinate pair onto the placement grid (clamping
    /// out-of-region and non-finite points onto the border, mirroring
    /// `GridSpec::cell_of` — routing must never panic on bad input; the
    /// downstream oracle owns rejection).
    fn cell(&self, lng: f64, lat: f64) -> u32 {
        let span_lng = (self.region.lng1 - self.region.lng0).max(1e-12);
        let span_lat = (self.region.lat1 - self.region.lat0).max(1e-12);
        let fx = (lng - self.region.lng0) / span_lng;
        let fy = (lat - self.region.lat0) / span_lat;
        let max = (self.cells - 1) as f64;
        let col = if fx.is_finite() {
            (fx * self.cells as f64).clamp(0.0, max) as u32
        } else {
            0
        };
        let row = if fy.is_finite() {
            (fy * self.cells as f64).clamp(0.0, max) as u32
        } else {
            0
        };
        row * self.cells + col
    }

    /// The placement key for a query: packed `(origin_cell, dest_cell)`.
    pub fn od_key(&self, q: &WireQuery) -> u64 {
        let o = self.cell(q.o_lng, q.o_lat) as u64;
        let d = self.cell(q.d_lng, q.d_lat) as u64;
        (o << 32) | d
    }

    /// Rendezvous score of `key` on `shard`.
    #[inline]
    fn score(&self, key: u64, shard: usize) -> u64 {
        mix64(key ^ mix64(self.seed ^ (shard as u64).wrapping_mul(0xA24B_AED4_963E_E407)))
    }

    /// The shard owning a placement key.
    pub fn shard_of_key(&self, key: u64) -> usize {
        let mut best = 0usize;
        let mut best_score = self.score(key, 0);
        for shard in 1..self.shards {
            let s = self.score(key, shard);
            if s > best_score {
                best = shard;
                best_score = s;
            }
        }
        best
    }

    /// The shard a query routes to.
    pub fn shard_of(&self, q: &WireQuery) -> usize {
        self.shard_of_key(self.od_key(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_obs::SplitMix64;

    fn map(shards: usize) -> ShardMap {
        ShardMap::new(shards, 32, Region::default(), 0xC1A5)
    }

    fn query(rng: &mut SplitMix64, r: &Region) -> WireQuery {
        WireQuery {
            o_lng: r.lng0 + rng.next_f64() * (r.lng1 - r.lng0),
            o_lat: r.lat0 + rng.next_f64() * (r.lat1 - r.lat0),
            d_lng: r.lng0 + rng.next_f64() * (r.lng1 - r.lng0),
            d_lat: r.lat0 + rng.next_f64() * (r.lat1 - r.lat0),
            t_dep: 43_200.0,
        }
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let a = map(5);
        let b = map(5);
        let mut rng = SplitMix64::new(7);
        for _ in 0..2_000 {
            let q = query(&mut rng, &Region::default());
            let s = a.shard_of(&q);
            assert_eq!(s, b.shard_of(&q));
            assert!(s < 5);
        }
    }

    #[test]
    fn identical_od_cells_share_a_shard() {
        let m = map(4);
        // Two queries in the same origin/dest cells must co-locate: the
        // cache/affinity contract the cluster design leans on.
        let a = WireQuery {
            o_lng: 103.96,
            o_lat: 30.61,
            d_lng: 104.01,
            d_lat: 30.65,
            t_dep: 100.0,
        };
        let b = WireQuery {
            o_lng: a.o_lng + 1e-6,
            o_lat: a.o_lat + 1e-6,
            d_lng: a.d_lng - 1e-6,
            d_lat: a.d_lat - 1e-6,
            t_dep: 90_000.0,
        };
        assert_eq!(m.od_key(&a), m.od_key(&b));
        assert_eq!(m.shard_of(&a), m.shard_of(&b));
    }

    #[test]
    fn bad_coordinates_route_without_panicking() {
        let m = map(3);
        for q in [
            WireQuery {
                o_lng: f64::NAN,
                o_lat: f64::INFINITY,
                d_lng: -1e9,
                d_lat: 1e9,
                t_dep: 0.0,
            },
            WireQuery {
                o_lng: 0.0,
                o_lat: 0.0,
                d_lng: 0.0,
                d_lat: 0.0,
                t_dep: -5.0,
            },
        ] {
            assert!(m.shard_of(&q) < 3);
        }
    }

    #[test]
    fn keys_balance_within_tolerance() {
        for shards in [2usize, 3, 5, 8] {
            let m = map(shards);
            let mut counts = vec![0usize; shards];
            let n_keys = 20_000u64;
            for k in 0..n_keys {
                counts[m.shard_of_key(mix64(k))] += 1;
            }
            let mean = n_keys as f64 / shards as f64;
            for (i, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64) > mean * 0.8 && (c as f64) < mean * 1.2,
                    "shard {i}/{shards} holds {c} of {n_keys} keys (mean {mean:.0})"
                );
            }
        }
    }

    #[test]
    fn adding_a_shard_only_moves_keys_onto_it() {
        let old = map(4);
        let new = map(5);
        let mut moved = 0usize;
        let n_keys = 10_000u64;
        for k in 0..n_keys {
            let key = mix64(k ^ 0xFEED);
            let before = old.shard_of_key(key);
            let after = new.shard_of_key(key);
            if before != after {
                assert_eq!(after, 4, "remapped key must land on the new shard");
                moved += 1;
            }
        }
        // Expected fraction 1/5; allow generous statistical slack.
        let expect = n_keys as f64 / 5.0;
        assert!(
            (moved as f64) > expect * 0.6 && (moved as f64) < expect * 1.6,
            "moved {moved} keys, expected ≈{expect:.0}"
        );
    }
}
