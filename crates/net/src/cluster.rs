//! The sharded oracle cluster: a router that spreads OD queries over
//! replicated shard workers, speaking `odt-wire/v1` downstream.
//!
//! One process and one model cannot serve a metro area. The cluster
//! splits the OD space by grid region ([`crate::shard::ShardMap`],
//! rendezvous-hashed `(origin_cell, dest_cell)` keys) across `N`
//! shards with `R` replicas each. The router is itself a wire server
//! (its backend, [`RouterBackend`], plugs into [`crate::server`]), so
//! clients need no cluster awareness at all — same protocol, same
//! port discipline, same drain semantics.
//!
//! ## Failover ladder
//!
//! Per request, replicas of the owning shard are tried in round-robin
//! order; a replica is skipped or abandoned when
//!
//! 1. the health prober last saw its `/readyz` as not-ready,
//! 2. its circuit breaker ([`odt_serve::CircuitBreaker`], the same
//!    state machine the single-process ladder uses per rung) is open,
//! 3. the call fails in transport (connect refused/timeout, reset,
//!    truncated reply, request deadline), or
//! 4. the replica answers with a *retryable* typed refusal
//!    (`queue_full`, `server_draining`, ... — exactly
//!    [`crate::wire::WireErrorCode::is_retryable`]).
//!
//! A success after any skip/failure counts one **failover**. Only when
//! every replica of the shard is exhausted — the shard is dark — does
//! the router degrade to its local haversine prior (rung
//! [`PRIOR_RUNG`]), mirroring the single-process ladder's last rung:
//! an answer, always, never a hang.
//!
//! Non-retryable refusals (`invalid_query`, `malformed_frame`, ...)
//! are the client's problem, not the replica's: they propagate
//! verbatim and count as successful forwards.
//!
//! ## Health plane
//!
//! [`start_health_prober`] polls each replica's admin `/readyz`
//! (PR 7's plane) on an interval and publishes per-replica health into
//! [`ClusterShared`]; the router skips not-ready replicas *before*
//! burning a connect timeout on them, which is what makes drains
//! invisible to clients. [`ClusterShared::quorum_ready`] — every shard
//! has at least one ready replica — drives the router's own `/readyz`
//! aggregation.
//!
//! Everything is observable: per-replica health/breaker state and
//! forward/refusal/transport counters in [`ClusterSnapshot`] (rendered
//! by [`render_router_varz`] as `odt-router-varz/v1`), and cluster
//! totals as `cluster.*` metrics in the process registry.

use crate::loadgen::Region;
use crate::server::{instance_name, ConnStatsSnapshot, NetBackend, NetRequest};
use crate::shard::ShardMap;
use crate::wire::{
    write_frame, FrameRead, WireErrorCode, WireQuery, WireRequest, WireResponse,
    DEFAULT_MAX_FRAME_BYTES, FRAME_HEADER_BYTES,
};
use odt_obs::json::push_str_escaped;
use odt_obs::{counter, event, gauge, Level};
use odt_serve::{BreakerConfig, BreakerState, CircuitBreaker};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Rung name the router reports when a whole shard is dark and the
/// request is answered by the router-local haversine prior.
pub const PRIOR_RUNG: &str = "router_prior";

/// One shard replica's addresses.
#[derive(Clone, Debug)]
pub struct ReplicaAddr {
    /// The `odt-wire/v1` address queries are forwarded to.
    pub wire: String,
    /// The replica's admin-plane address (for `/readyz` probing); when
    /// absent the replica is never probed and health stays optimistic.
    pub admin: Option<String>,
}

impl ReplicaAddr {
    /// A replica with no admin plane (health learned only from calls).
    pub fn wire_only(wire: impl Into<String>) -> ReplicaAddr {
        ReplicaAddr {
            wire: wire.into(),
            admin: None,
        }
    }

    /// A replica with a probeable admin plane.
    pub fn with_admin(wire: impl Into<String>, admin: impl Into<String>) -> ReplicaAddr {
        ReplicaAddr {
            wire: wire.into(),
            admin: Some(admin.into()),
        }
    }
}

/// Cluster topology and router tuning.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Replicas per shard: `shards[s][r]` is replica `r` of shard `s`.
    /// Every shard needs at least one replica.
    pub shards: Vec<Vec<ReplicaAddr>>,
    /// Geographic region the placement grid covers.
    pub region: Region,
    /// Per-axis cell count of the placement grid.
    pub cells: u32,
    /// Placement seed; all routers of one cluster must share it.
    pub seed: u64,
    /// Downstream TCP connect timeout, ms.
    pub connect_timeout_ms: u64,
    /// Per-forwarded-request deadline (write + read), ms.
    pub request_timeout_ms: u64,
    /// Per-replica circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Speed assumed by the degraded haversine prior, m/s.
    pub prior_speed_mps: f64,
    /// Cap on downstream reply frames, bytes.
    pub max_frame_bytes: usize,
}

impl ClusterConfig {
    /// A config over `shards` with the default tuning.
    pub fn new(shards: Vec<Vec<ReplicaAddr>>) -> ClusterConfig {
        ClusterConfig {
            shards,
            region: Region::default(),
            cells: 64,
            seed: 0x0D75,
            connect_timeout_ms: 500,
            request_timeout_ms: 2_000,
            breaker: BreakerConfig::default(),
            prior_speed_mps: 10.0,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// Last-probed health of one replica.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Never probed (or unprobeable: no admin address). The router
    /// tries these — refusing traffic on ignorance would turn a probe
    /// gap into an outage.
    Unknown,
    /// `/readyz` answered 200.
    Ready,
    /// `/readyz` answered non-200 or was unreachable.
    Unready,
}

impl ReplicaHealth {
    fn from_u8(v: u8) -> ReplicaHealth {
        match v {
            1 => ReplicaHealth::Ready,
            2 => ReplicaHealth::Unready,
            _ => ReplicaHealth::Unknown,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            ReplicaHealth::Unknown => 0,
            ReplicaHealth::Ready => 1,
            ReplicaHealth::Unready => 2,
        }
    }

    /// Short tag for reports.
    pub fn name(self) -> &'static str {
        match self {
            ReplicaHealth::Unknown => "unknown",
            ReplicaHealth::Ready => "ready",
            ReplicaHealth::Unready => "unready",
        }
    }
}

#[derive(Default)]
struct ReplicaShared {
    health: AtomicU8,
    breaker_state: AtomicU8,
    breaker_trips: AtomicU64,
    forwarded: AtomicU64,
    refusals: AtomicU64,
    transport_errors: AtomicU64,
}

/// State shared between the router backend, the health prober, and the
/// admin plane (varz/readyz): per-replica health and counters, plus
/// cluster totals.
pub struct ClusterShared {
    topology: Vec<Vec<ReplicaAddr>>,
    replicas: Vec<Vec<ReplicaShared>>,
    forwarded: AtomicU64,
    failovers: AtomicU64,
    prior_serves: AtomicU64,
    refusals: AtomicU64,
    transport_errors: AtomicU64,
}

impl ClusterShared {
    /// Shared state shaped like `cfg`'s topology, all-unknown health.
    pub fn new(cfg: &ClusterConfig) -> Arc<ClusterShared> {
        assert!(!cfg.shards.is_empty(), "a cluster needs at least one shard");
        for (s, replicas) in cfg.shards.iter().enumerate() {
            assert!(!replicas.is_empty(), "shard {s} has no replicas");
        }
        Arc::new(ClusterShared {
            topology: cfg.shards.clone(),
            replicas: cfg
                .shards
                .iter()
                .map(|rs| rs.iter().map(|_| ReplicaShared::default()).collect())
                .collect(),
            forwarded: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            prior_serves: AtomicU64::new(0),
            refusals: AtomicU64::new(0),
            transport_errors: AtomicU64::new(0),
        })
    }

    /// The configured topology (shards × replicas).
    pub fn topology(&self) -> &[Vec<ReplicaAddr>] {
        &self.topology
    }

    /// Last-probed health of replica `r` of shard `s`.
    pub fn health(&self, s: usize, r: usize) -> ReplicaHealth {
        ReplicaHealth::from_u8(self.replicas[s][r].health.load(Ordering::Acquire))
    }

    /// Publish a health observation (the prober calls this; tests and
    /// drain hooks may too). Emits an event on every transition.
    pub fn set_health(&self, s: usize, r: usize, health: ReplicaHealth) {
        let was = self.replicas[s][r]
            .health
            .swap(health.as_u8(), Ordering::Release);
        if was != health.as_u8() {
            let level = if health == ReplicaHealth::Unready {
                Level::Warn
            } else {
                Level::Info
            };
            event(level, "cluster.replica_health")
                .field("shard", s as u64)
                .field("replica", r as u64)
                .field("addr", self.topology[s][r].wire.as_str())
                .field("health", health.name())
                .emit();
        }
    }

    /// Whether every shard has at least one routable replica: probed
    /// ready, or unprobeable (no admin address) and not known-bad. This
    /// drives the router's own `/readyz` aggregation — 503 until true.
    pub fn quorum_ready(&self) -> bool {
        self.topology.iter().enumerate().all(|(s, replicas)| {
            replicas.iter().enumerate().any(|(r, addr)| {
                match self.health(s, r) {
                    ReplicaHealth::Ready => true,
                    // No probe target: optimistic, same reasoning as
                    // routing to Unknown replicas.
                    ReplicaHealth::Unknown => addr.admin.is_none(),
                    ReplicaHealth::Unready => false,
                }
            })
        })
    }

    /// Total failovers (requests served by a non-first-choice replica).
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Total requests degraded to the router-local prior.
    pub fn prior_serves(&self) -> u64 {
        self.prior_serves.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of every counter for rendering.
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            shards: self
                .topology
                .iter()
                .enumerate()
                .map(|(s, replicas)| {
                    replicas
                        .iter()
                        .enumerate()
                        .map(|(r, addr)| {
                            let rs = &self.replicas[s][r];
                            ReplicaSnapshot {
                                addr: addr.wire.clone(),
                                health: self.health(s, r).name(),
                                breaker: match rs.breaker_state.load(Ordering::Relaxed) {
                                    1 => "open",
                                    2 => "half_open",
                                    _ => "closed",
                                },
                                breaker_trips: rs.breaker_trips.load(Ordering::Relaxed),
                                forwarded: rs.forwarded.load(Ordering::Relaxed),
                                refusals: rs.refusals.load(Ordering::Relaxed),
                                transport_errors: rs.transport_errors.load(Ordering::Relaxed),
                            }
                        })
                        .collect()
                })
                .collect(),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            failovers: self.failovers(),
            prior_serves: self.prior_serves(),
            refusals: self.refusals.load(Ordering::Relaxed),
            transport_errors: self.transport_errors.load(Ordering::Relaxed),
            quorum_ready: self.quorum_ready(),
        }
    }

    fn publish_breaker(&self, s: usize, r: usize, state: BreakerState, trips: u64) {
        let code = match state {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        };
        self.replicas[s][r]
            .breaker_state
            .store(code, Ordering::Relaxed);
        self.replicas[s][r]
            .breaker_trips
            .store(trips, Ordering::Relaxed);
    }
}

/// One replica's row in [`ClusterSnapshot`].
#[derive(Clone, Debug)]
pub struct ReplicaSnapshot {
    /// Wire address.
    pub addr: String,
    /// Last-probed health tag.
    pub health: &'static str,
    /// Circuit-breaker state tag.
    pub breaker: &'static str,
    /// Breaker trips so far.
    pub breaker_trips: u64,
    /// Requests this replica answered (Ok or non-retryable Err).
    pub forwarded: u64,
    /// Retryable typed refusals from this replica.
    pub refusals: u64,
    /// Transport-level failures talking to this replica.
    pub transport_errors: u64,
}

/// Cluster counters at one instant (the `/varz` source).
#[derive(Clone, Debug)]
pub struct ClusterSnapshot {
    /// Per-shard, per-replica rows.
    pub shards: Vec<Vec<ReplicaSnapshot>>,
    /// Requests answered by some replica.
    pub forwarded: u64,
    /// Requests served by a non-first-choice replica.
    pub failovers: u64,
    /// Requests degraded to the router-local prior.
    pub prior_serves: u64,
    /// Retryable refusals seen (pre-failover, so ≥ failovers' causes).
    pub refusals: u64,
    /// Transport failures seen.
    pub transport_errors: u64,
    /// Whether every shard had a routable replica.
    pub quorum_ready: bool,
}

fn resolve(addr: &str) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            "address resolved to nothing",
        )
    })
}

/// Probe one admin endpoint's `/readyz`. `Some(true)` on 200, `Some(false)`
/// on any other HTTP status, `None` when the endpoint was unreachable or
/// didn't answer HTTP within `timeout` (callers treat that as unready).
pub fn probe_readyz(admin_addr: &str, timeout: Duration) -> Option<bool> {
    let addr = resolve(admin_addr).ok()?;
    let mut s = TcpStream::connect_timeout(&addr, timeout).ok()?;
    s.set_read_timeout(Some(timeout)).ok()?;
    s.set_write_timeout(Some(timeout)).ok()?;
    s.write_all(b"GET /readyz HTTP/1.1\r\nHost: odt\r\nConnection: close\r\n\r\n")
        .ok()?;
    let mut raw = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&chunk[..n]);
                // The status line is all we need; admin replies close.
                if raw.len() >= 12 || raw.windows(2).any(|w| w == b"\r\n") {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&raw);
    let status: u16 = head
        .lines()
        .next()?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(status == 200)
}

/// A running health prober. [`ProberHandle::shutdown`] (or drop) stops
/// the thread.
pub struct ProberHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ProberHandle {
    /// Stop probing and join the thread.
    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ProberHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Start the health prober: a thread that polls every probeable
/// replica's `/readyz` each `interval_ms` and publishes the result into
/// `shared`. Unreachable probes mark the replica unready.
pub fn start_health_prober(
    shared: Arc<ClusterShared>,
    interval_ms: u64,
    timeout_ms: u64,
) -> ProberHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = thread::Builder::new()
        .name("odt-cluster-prober".to_string())
        .spawn(move || {
            let timeout = Duration::from_millis(timeout_ms.max(1));
            while !stop2.load(Ordering::Acquire) {
                for (s, replicas) in shared.topology().iter().enumerate() {
                    for (r, addr) in replicas.iter().enumerate() {
                        let Some(admin) = &addr.admin else { continue };
                        let health = match probe_readyz(admin, timeout) {
                            Some(true) => ReplicaHealth::Ready,
                            Some(false) | None => ReplicaHealth::Unready,
                        };
                        shared.set_health(s, r, health);
                    }
                }
                gauge("cluster.quorum_ready").set(if shared.quorum_ready() { 1.0 } else { 0.0 });
                // Sleep in short steps so shutdown stays prompt.
                let mut slept = 0;
                while slept < interval_ms.max(1) && !stop2.load(Ordering::Acquire) {
                    let step = (interval_ms.max(1) - slept).min(10);
                    thread::sleep(Duration::from_millis(step));
                    slept += step;
                }
            }
        })
        .expect("spawn cluster prober");
    ProberHandle {
        stop,
        thread: Some(thread),
    }
}

/// A lazily-(re)connecting synchronous client for one replica's wire
/// port. Strictly one request in flight; any transport anomaly tears
/// the connection down so the next call starts clean.
struct ReplicaClient {
    addr: String,
    connect_timeout: Duration,
    request_timeout: Duration,
    max_frame_bytes: usize,
    stream: Option<TcpStream>,
}

impl ReplicaClient {
    fn new(addr: String, cfg: &ClusterConfig) -> ReplicaClient {
        ReplicaClient {
            addr,
            connect_timeout: Duration::from_millis(cfg.connect_timeout_ms.max(1)),
            request_timeout: Duration::from_millis(cfg.request_timeout_ms.max(1)),
            max_frame_bytes: cfg.max_frame_bytes,
            stream: None,
        }
    }

    fn ensure_connected(&mut self) -> io::Result<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        let addr = resolve(&self.addr)?;
        let s = TcpStream::connect_timeout(&addr, self.connect_timeout)?;
        let _ = s.set_nodelay(true);
        s.set_read_timeout(Some(self.request_timeout.min(Duration::from_millis(50))))?;
        s.set_write_timeout(Some(self.request_timeout))?;
        self.stream = Some(s);
        Ok(())
    }

    /// Forward one request and read its reply, bounded end to end by
    /// the request timeout. Any error leaves the client disconnected.
    fn call(&mut self, req: &WireRequest) -> io::Result<WireResponse> {
        self.ensure_connected()?;
        let deadline = Instant::now() + self.request_timeout;
        let outcome = (|| {
            let stream = self.stream.as_mut().expect("connected above");
            write_frame(stream, &req.to_json())?;
            match read_frame_deadline(stream, self.max_frame_bytes, deadline)? {
                FrameRead::Payload(p) => WireResponse::from_json(&p)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
                FrameRead::Closed => Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "replica closed before replying",
                )),
            }
        })();
        match outcome {
            Ok(resp) if resp.id() == req.id => Ok(resp),
            Ok(_) => {
                // A reply for some other id means the stream is
                // desynchronized (e.g. a late reply to a timed-out
                // predecessor); drop the connection rather than serve
                // someone else's estimate.
                self.stream = None;
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "reply id mismatch; resetting replica connection",
                ))
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

/// Read one frame with a hard deadline: socket read timeouts recur
/// until the deadline, then surface as `TimedOut`. Unlike
/// [`crate::wire::read_frame`] this can never stall the router's
/// dispatcher on a wedged replica mid-frame.
fn read_frame_deadline(
    stream: &mut TcpStream,
    max: usize,
    deadline: Instant,
) -> io::Result<FrameRead> {
    let timeoutish = |e: &io::Error| {
        matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    };
    let mut hdr = [0u8; FRAME_HEADER_BYTES];
    let mut got = 0;
    while got < hdr.len() {
        match stream.read(&mut hdr[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(FrameRead::Closed)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "replica closed mid-frame",
                    ))
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if timeoutish(&e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "reply deadline"));
                }
            }
            Err(e) => return Err(e),
        }
    }
    let declared = u32::from_be_bytes(hdr) as usize;
    if declared > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("reply frame of {declared} bytes exceeds cap {max}"),
        ));
    }
    let mut buf = vec![0u8; declared];
    let mut got = 0;
    while got < declared {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "replica closed mid-frame",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if timeoutish(&e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "reply deadline"));
                }
            }
            Err(e) => return Err(e),
        }
    }
    let payload = String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "reply not UTF-8"))?;
    Ok(FrameRead::Payload(payload))
}

struct ReplicaSlot {
    client: ReplicaClient,
    breaker: CircuitBreaker,
}

/// The router's network backend: shard placement + replica failover.
/// Plug it into [`crate::server::start`] to get a wire-speaking router
/// process with the full frontend hardening for free.
pub struct RouterBackend {
    map: ShardMap,
    slots: Vec<Vec<ReplicaSlot>>,
    rr: Vec<usize>,
    dark_warned: Vec<bool>,
    shared: Arc<ClusterShared>,
    prior_speed_mps: f64,
    epoch: Instant,
    /// Breaker trips already seen per replica; a trip beyond this fans a
    /// flight-recorder dump out to the implicated shard's replicas.
    seen_trips: Vec<Vec<u64>>,
}

impl RouterBackend {
    /// A router over `cfg`'s topology publishing into `shared` (build
    /// `shared` with [`ClusterShared::new`] from the same config).
    pub fn new(cfg: ClusterConfig, shared: Arc<ClusterShared>) -> RouterBackend {
        assert_eq!(
            cfg.shards.len(),
            shared.topology().len(),
            "shared state must come from the same topology"
        );
        let map = ShardMap::new(cfg.shards.len(), cfg.cells, cfg.region, cfg.seed);
        let slots: Vec<Vec<ReplicaSlot>> = cfg
            .shards
            .iter()
            .enumerate()
            .map(|(s, replicas)| {
                replicas
                    .iter()
                    .enumerate()
                    .map(|(r, addr)| ReplicaSlot {
                        client: ReplicaClient::new(addr.wire.clone(), &cfg),
                        // Breaker names are 'static for the event plane;
                        // one small leak per replica at startup.
                        breaker: CircuitBreaker::new(
                            Box::leak(format!("shard{s}_replica{r}").into_boxed_str()),
                            cfg.breaker,
                        ),
                    })
                    .collect()
            })
            .collect();
        let n_shards = slots.len();
        let seen_trips = slots.iter().map(|rs| vec![0u64; rs.len()]).collect();
        RouterBackend {
            map,
            slots,
            rr: vec![0; n_shards],
            dark_warned: vec![false; n_shards],
            shared,
            prior_speed_mps: cfg.prior_speed_mps,
            epoch: Instant::now(),
            seen_trips,
        }
    }

    /// The router's placement map (tests and bins derive expected
    /// shards from it).
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn note_failover(&self, shard: usize, attempts: u32) {
        self.shared.failovers.fetch_add(1, Ordering::Relaxed);
        counter("cluster.failovers").inc();
        event(Level::Warn, "cluster.failover")
            .field("shard", shard as u64)
            .field("attempts_before_success", attempts as u64)
            .emit();
    }

    fn note_forward_ok(&mut self, shard: usize, ri: usize, skipped_or_failed: u32) {
        self.shared.forwarded.fetch_add(1, Ordering::Relaxed);
        self.shared.replicas[shard][ri]
            .forwarded
            .fetch_add(1, Ordering::Relaxed);
        counter("cluster.forwarded").inc();
        self.dark_warned[shard] = false;
        if skipped_or_failed > 0 {
            self.note_failover(shard, skipped_or_failed);
        }
    }

    fn route_one(&mut self, nr: NetRequest) -> WireResponse {
        let req = nr.req;
        // Root span for the routed request. A client-propagated trace is
        // adopted (with the client's span as parent) so router and shard
        // fragments stitch into the caller's trace; otherwise the router
        // mints its own, subject to head sampling.
        let root = match req.trace {
            Some(t) => {
                odt_obs::trace::root_span_adopted("router.request", t, req.parent_span.unwrap_or(0))
            }
            None => odt_obs::trace::root_span("router.request"),
        };
        root.set_request_id(req.id);
        odt_obs::trace::record_backdated_span("router.queue_wait", nr.age_us);
        let q = req.query;
        if !(q.o_lng.is_finite()
            && q.o_lat.is_finite()
            && q.d_lng.is_finite()
            && q.d_lat.is_finite()
            && q.t_dep.is_finite())
        {
            // The oracle's admission check would reject this anyway;
            // answering locally saves a replica round trip.
            return WireResponse::error(req.id, WireErrorCode::InvalidQuery, "non-finite field");
        }
        let shard = self.map.shard_of(&q);
        let n = self.slots[shard].len();
        let start = self.rr[shard] % n;
        self.rr[shard] = self.rr[shard].wrapping_add(1);
        let mut skipped_or_failed = 0u32;
        for k in 0..n {
            let ri = (start + k) % n;
            if self.shared.health(shard, ri) == ReplicaHealth::Unready {
                skipped_or_failed += 1;
                continue;
            }
            let now = self.now_us();
            if !self.slots[shard][ri].breaker.allow(now) {
                skipped_or_failed += 1;
                continue;
            }
            // Each downstream attempt is its own child span, so a stitched
            // trace shows failover retries as sibling `router.downstream`
            // hops. The forwarded frame carries the router's live context
            // — trace id plus the hop span as `parent_span` — so the
            // shard's `serve.request` fragment attributes to this attempt;
            // when tracing is off the client's own fields pass through.
            let hop = odt_obs::span("router.downstream");
            let (d_trace, d_parent) = match odt_obs::trace::current_context() {
                Some(ctx) => (Some(ctx.trace_id()), Some(ctx.span_id().raw())),
                None => (req.trace, req.parent_span),
            };
            let d_req = WireRequest {
                id: req.id,
                query: req.query,
                deadline_ms: req.deadline_ms,
                trace: d_trace,
                parent_span: d_parent,
            };
            let outcome = self.slots[shard][ri].client.call(&d_req);
            drop(hop);
            let now = self.now_us();
            match outcome {
                Ok(resp @ WireResponse::Ok { .. }) => {
                    self.slots[shard][ri].breaker.record_success(now);
                    self.note_forward_ok(shard, ri, skipped_or_failed);
                    return resp;
                }
                Ok(resp @ WireResponse::Err { code, .. }) => {
                    if code.is_retryable() {
                        // The replica refused for capacity/drain
                        // reasons — a sibling may well accept.
                        self.slots[shard][ri].breaker.record_failure(now);
                        self.shared.refusals.fetch_add(1, Ordering::Relaxed);
                        self.shared.replicas[shard][ri]
                            .refusals
                            .fetch_add(1, Ordering::Relaxed);
                        counter("cluster.replica_refusals").inc();
                        skipped_or_failed += 1;
                    } else {
                        // The request is at fault, not the replica:
                        // propagate the typed error verbatim.
                        self.slots[shard][ri].breaker.record_success(now);
                        self.note_forward_ok(shard, ri, skipped_or_failed);
                        return resp;
                    }
                }
                Err(_) => {
                    self.slots[shard][ri].breaker.record_failure(now);
                    self.shared.transport_errors.fetch_add(1, Ordering::Relaxed);
                    self.shared.replicas[shard][ri]
                        .transport_errors
                        .fetch_add(1, Ordering::Relaxed);
                    counter("cluster.replica_transport_errors").inc();
                    skipped_or_failed += 1;
                }
            }
        }
        // Every replica skipped, refused, or failed: the shard is dark.
        // Degrade to the router-local prior — an answer, never a hang.
        self.shared.prior_serves.fetch_add(1, Ordering::Relaxed);
        counter("cluster.prior_serves").inc();
        if !self.dark_warned[shard] {
            self.dark_warned[shard] = true;
            event(Level::Warn, "cluster.shard_dark")
                .field("shard", shard as u64)
                .field("replicas", n as u64)
                .emit();
        }
        WireResponse::Ok {
            id: req.id,
            seconds: haversine_seconds(&q, self.prior_speed_mps),
            rung: PRIOR_RUNG.to_string(),
            queue_wait_us: nr.age_us,
            service_us: 0,
            deadline_met: true,
            trace: req.trace,
            // The router itself answered — attribute the prior serve to
            // this process, not to any replica.
            served_by: Some(instance_name().to_string()),
        }
    }

    fn publish(&mut self) {
        let mut tripped_shards = Vec::new();
        for (s, replicas) in self.slots.iter().enumerate() {
            for (r, slot) in replicas.iter().enumerate() {
                let trips = slot.breaker.trips();
                if trips > self.seen_trips[s][r] {
                    self.seen_trips[s][r] = trips;
                    if !tripped_shards.contains(&s) {
                        tripped_shards.push(s);
                    }
                }
                self.shared
                    .publish_breaker(s, r, slot.breaker.state(), trips);
            }
        }
        for s in tripped_shards {
            self.fanout_flightrec(s, "breaker_open");
        }
        gauge("cluster.quorum_ready").set(if self.shared.quorum_ready() { 1.0 } else { 0.0 });
    }

    /// Fan a flight-recorder dump out to every replica of `shard` (fire
    /// and forget, off the dispatcher thread): on a router-side incident
    /// alert — a replica breaker opening, or the binary's SLO monitor via
    /// this public hook — each replica of the implicated shard POSTs its
    /// own `/flightrec`, so the black boxes on both sides of the wire
    /// cover the same window and correlate by trace id.
    pub fn fanout_flightrec(&self, shard: usize, reason: &'static str) {
        let admins: Vec<String> = self.shared.topology()[shard]
            .iter()
            .filter_map(|a| a.admin.clone())
            .collect();
        counter("cluster.flightrec_fanout").inc();
        event(Level::Warn, "cluster.flightrec_fanout")
            .field("shard", shard as u64)
            .field("reason", reason)
            .field("replicas", admins.len() as u64)
            .emit();
        // Dump the router's own side too, so the correlation has both ends.
        let _ = odt_obs::flightrec::trigger(reason);
        if admins.is_empty() {
            return;
        }
        let _ = thread::Builder::new()
            .name("odt-flightrec-fanout".to_string())
            .spawn(move || {
                for a in admins {
                    let _ = post_flightrec(&a, Duration::from_millis(1_000));
                }
            });
    }
}

/// POST one admin endpoint's `/flightrec` (the fan-out primitive).
/// `Some(true)` when the replica dumped (HTTP 200), `Some(false)` on any
/// other status (e.g. its recorder is disabled), `None` when the endpoint
/// was unreachable within `timeout`.
pub fn post_flightrec(admin_addr: &str, timeout: Duration) -> Option<bool> {
    let addr = resolve(admin_addr).ok()?;
    let mut s = TcpStream::connect_timeout(&addr, timeout).ok()?;
    s.set_read_timeout(Some(timeout)).ok()?;
    s.set_write_timeout(Some(timeout)).ok()?;
    s.write_all(
        b"POST /flightrec HTTP/1.1\r\nHost: odt\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
    )
    .ok()?;
    let mut raw = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&chunk[..n]);
                if raw.windows(2).any(|w| w == b"\r\n") {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&raw);
    let status: u16 = head
        .lines()
        .next()?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(status == 200)
}

impl NetBackend for RouterBackend {
    fn process(&mut self, batch: Vec<NetRequest>) -> Vec<(usize, WireResponse)> {
        let out = batch
            .into_iter()
            .enumerate()
            .map(|(i, nr)| {
                let resp = self.route_one(nr);
                (i, resp)
            })
            .collect();
        self.publish();
        out
    }

    fn on_tick(&mut self) {
        self.publish();
    }
}

/// Great-circle travel time at a constant speed — the router's shard-dark
/// prior (the same physics as the oracle's own last-rung fallback).
pub fn haversine_seconds(q: &WireQuery, speed_mps: f64) -> f64 {
    const R_EARTH_M: f64 = 6_371_000.0;
    let (lat1, lat2) = (q.o_lat.to_radians(), q.d_lat.to_radians());
    let dlat = (q.d_lat - q.o_lat).to_radians();
    let dlng = (q.d_lng - q.o_lng).to_radians();
    let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlng / 2.0).sin().powi(2);
    let meters = 2.0 * R_EARTH_M * a.sqrt().min(1.0).asin();
    let v = if speed_mps.is_finite() && speed_mps > 0.1 {
        speed_mps
    } else {
        10.0
    };
    (meters / v).clamp(0.0, 86_400.0)
}

/// Render the router's `/varz` JSON body (`odt-router-varz/v1`): server
/// state, wire-port connection counters, and the cluster block.
pub fn render_router_varz(
    state: &str,
    conn: &ConnStatsSnapshot,
    cluster: &ClusterSnapshot,
) -> String {
    let mut o = String::with_capacity(1024);
    o.push_str("{\"schema\":\"odt-router-varz/v1\",\"state\":");
    push_str_escaped(&mut o, state);
    o.push_str(",\"conns\":{");
    o.push_str(&format!(
        "\"opened\":{},\"closed\":{},\"active\":{},\"frames_in\":{},\"frames_out\":{},\
         \"malformed\":{},\"rejected_capacity\":{},\"rejected_draining\":{}}}",
        conn.opened,
        conn.closed,
        conn.active,
        conn.frames_in,
        conn.frames_out,
        conn.malformed,
        conn.rejected_capacity,
        conn.rejected_draining
    ));
    o.push_str(&format!(
        ",\"cluster\":{{\"quorum_ready\":{},\"forwarded_total\":{},\"failovers_total\":{},\
         \"prior_serves_total\":{},\"refusals_total\":{},\"transport_errors_total\":{},\"shards\":[",
        cluster.quorum_ready,
        cluster.forwarded,
        cluster.failovers,
        cluster.prior_serves,
        cluster.refusals,
        cluster.transport_errors
    ));
    for (s, replicas) in cluster.shards.iter().enumerate() {
        if s > 0 {
            o.push(',');
        }
        o.push_str("{\"replicas\":[");
        for (r, rep) in replicas.iter().enumerate() {
            if r > 0 {
                o.push(',');
            }
            o.push_str("{\"addr\":");
            push_str_escaped(&mut o, &rep.addr);
            o.push_str(",\"health\":");
            push_str_escaped(&mut o, rep.health);
            o.push_str(",\"breaker\":");
            push_str_escaped(&mut o, rep.breaker);
            o.push_str(&format!(
                ",\"breaker_trips\":{},\"forwarded\":{},\"refusals\":{},\"transport_errors\":{}}}",
                rep.breaker_trips, rep.forwarded, rep.refusals, rep.transport_errors
            ));
        }
        o.push_str("]}");
    }
    o.push_str("]}}");
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::{start_admin, AdminConfig, AdminSources};
    use crate::server::{start, EchoBackend, ServerConfig, ServerHandle};
    use odt_obs::SplitMix64;

    fn echo_server() -> ServerHandle {
        let cfg = ServerConfig {
            drain_budget_ms: 500,
            ..ServerConfig::default()
        };
        start(cfg, EchoBackend::instant()).expect("echo server")
    }

    fn test_cluster_cfg(handles: &[Vec<&ServerHandle>]) -> ClusterConfig {
        let shards = handles
            .iter()
            .map(|replicas| {
                replicas
                    .iter()
                    .map(|h| ReplicaAddr::wire_only(h.addr().to_string()))
                    .collect()
            })
            .collect();
        let mut cfg = ClusterConfig::new(shards);
        // Fail fast in tests: a dead loopback port refuses instantly,
        // but keep timeouts tight anyway.
        cfg.connect_timeout_ms = 200;
        cfg.request_timeout_ms = 1_000;
        cfg
    }

    fn request(id: u64, q: WireQuery) -> NetRequest {
        NetRequest {
            req: WireRequest {
                id,
                query: q,
                deadline_ms: None,
                trace: None,
                parent_span: None,
            },
            age_us: 0,
        }
    }

    fn random_query(rng: &mut SplitMix64) -> WireQuery {
        let r = Region::default();
        WireQuery {
            o_lng: r.lng0 + rng.next_f64() * (r.lng1 - r.lng0),
            o_lat: r.lat0 + rng.next_f64() * (r.lat1 - r.lat0),
            d_lng: r.lng0 + rng.next_f64() * (r.lng1 - r.lng0),
            d_lat: r.lat0 + rng.next_f64() * (r.lat1 - r.lat0),
            t_dep: 28_800.0,
        }
    }

    #[test]
    fn haversine_prior_is_sane() {
        let zero = WireQuery {
            o_lng: 104.0,
            o_lat: 30.7,
            d_lng: 104.0,
            d_lat: 30.7,
            t_dep: 0.0,
        };
        assert_eq!(haversine_seconds(&zero, 10.0), 0.0);
        // One degree of latitude ≈ 111.2 km; at 10 m/s that's ~11120 s.
        let one_deg = WireQuery {
            o_lng: 104.0,
            o_lat: 30.0,
            d_lng: 104.0,
            d_lat: 31.0,
            t_dep: 0.0,
        };
        let s = haversine_seconds(&one_deg, 10.0);
        assert!((10_500.0..11_700.0).contains(&s), "{s}");
        // Bad speed falls back instead of dividing by zero.
        assert!(haversine_seconds(&one_deg, 0.0).is_finite());
        assert!(haversine_seconds(&one_deg, f64::NAN).is_finite());
    }

    #[test]
    fn routes_requests_and_fails_over_when_replicas_die() {
        let mut handles: Vec<Vec<Option<ServerHandle>>> = vec![
            vec![Some(echo_server()), Some(echo_server())],
            vec![Some(echo_server()), Some(echo_server())],
        ];
        let cfg = test_cluster_cfg(&[
            vec![
                handles[0][0].as_ref().unwrap(),
                handles[0][1].as_ref().unwrap(),
            ],
            vec![
                handles[1][0].as_ref().unwrap(),
                handles[1][1].as_ref().unwrap(),
            ],
        ]);
        let shared = ClusterShared::new(&cfg);
        let mut router = RouterBackend::new(cfg, Arc::clone(&shared));
        let mut rng = SplitMix64::new(11);

        // Healthy cluster: every request is answered by a replica.
        let batch: Vec<NetRequest> = (0..40)
            .map(|i| request(i, random_query(&mut rng)))
            .collect();
        for (_, resp) in router.process(batch) {
            match resp {
                WireResponse::Ok { ref rung, .. } => assert_eq!(rung, "echo"),
                other => panic!("healthy cluster refused: {other:?}"),
            }
        }
        assert_eq!(shared.snapshot().forwarded, 40);
        assert_eq!(shared.failovers(), 0);

        // Kill one replica of shard 0: every request still succeeds,
        // and the ones that first tried the dead replica fail over.
        handles[0][0].take().unwrap().drain();
        let batch: Vec<NetRequest> = (100..180)
            .map(|i| request(i, random_query(&mut rng)))
            .collect();
        for (_, resp) in router.process(batch) {
            match resp {
                WireResponse::Ok { ref rung, .. } => assert_eq!(rung, "echo"),
                other => panic!("replica death became client-visible: {other:?}"),
            }
        }
        assert!(
            shared.failovers() > 0,
            "dead first-choice replicas must show up as failovers"
        );
        assert_eq!(shared.prior_serves(), 0, "sibling held the shard up");

        // Kill the sibling too: shard 0 is dark. Its requests degrade
        // to the router prior; shard 1 keeps being replica-served.
        handles[0][1].take().unwrap().drain();
        let map = router.map();
        let mut dark = Vec::new();
        let mut lit = Vec::new();
        let mut id = 1_000u64;
        while dark.len() < 5 || lit.len() < 5 {
            let q = random_query(&mut rng);
            id += 1;
            if map.shard_of(&q) == 0 {
                dark.push(request(id, q));
            } else {
                lit.push(request(id, q));
            }
        }
        for (_, resp) in router.process(dark) {
            match resp {
                WireResponse::Ok { ref rung, .. } => assert_eq!(rung, PRIOR_RUNG),
                other => panic!("dark shard must degrade, not error: {other:?}"),
            }
        }
        for (_, resp) in router.process(lit) {
            match resp {
                WireResponse::Ok { ref rung, .. } => assert_eq!(rung, "echo"),
                other => panic!("healthy shard affected by the other: {other:?}"),
            }
        }
        assert!(shared.prior_serves() >= 5);

        let snap = shared.snapshot();
        assert!(snap.transport_errors > 0);
        let body = render_router_varz("running", &ConnStatsSnapshot::default(), &snap);
        assert!(
            body.starts_with("{\"schema\":\"odt-router-varz/v1\""),
            "{body}"
        );
        assert!(body.contains("\"failovers_total\":"), "{body}");
        assert!(body.contains("\"breaker\":"), "{body}");

        for h in handles.into_iter().flatten().flatten() {
            h.drain();
        }
    }

    #[test]
    fn unready_replicas_are_skipped_without_a_connection_attempt() {
        let live = echo_server();
        // The "dead" replica address points at a bound-then-dropped
        // listener: connecting would refuse, but health says skip.
        let dead_addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut cfg = test_cluster_cfg(&[vec![&live]]);
        cfg.shards[0].insert(0, ReplicaAddr::wire_only(dead_addr));
        let shared = ClusterShared::new(&cfg);
        shared.set_health(0, 0, ReplicaHealth::Unready);
        let mut router = RouterBackend::new(cfg, Arc::clone(&shared));
        let mut rng = SplitMix64::new(3);
        let batch: Vec<NetRequest> = (0..8).map(|i| request(i, random_query(&mut rng))).collect();
        for (_, resp) in router.process(batch) {
            assert!(matches!(resp, WireResponse::Ok { .. }), "{resp:?}");
        }
        let snap = shared.snapshot();
        assert_eq!(
            snap.transport_errors, 0,
            "skipping by health must not attempt connects"
        );
        assert!(snap.failovers > 0, "health skips still count as failovers");
        live.drain();
    }

    #[test]
    fn invalid_queries_are_answered_locally_with_a_typed_error() {
        let live = echo_server();
        let cfg = test_cluster_cfg(&[vec![&live]]);
        let shared = ClusterShared::new(&cfg);
        let mut router = RouterBackend::new(cfg, Arc::clone(&shared));
        let bad = request(
            7,
            WireQuery {
                o_lng: f64::NAN,
                o_lat: 30.7,
                d_lng: 104.1,
                d_lat: 30.7,
                t_dep: 0.0,
            },
        );
        match &router.process(vec![bad])[0].1 {
            WireResponse::Err { id, code, .. } => {
                assert_eq!(*id, 7);
                assert_eq!(*code, WireErrorCode::InvalidQuery);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(shared.snapshot().forwarded, 0, "never left the router");
        live.drain();
    }

    #[test]
    fn quorum_needs_one_routable_replica_per_shard() {
        let cfg = ClusterConfig::new(vec![
            vec![
                ReplicaAddr::with_admin("127.0.0.1:1", "127.0.0.1:2"),
                ReplicaAddr::with_admin("127.0.0.1:3", "127.0.0.1:4"),
            ],
            vec![ReplicaAddr::wire_only("127.0.0.1:5")],
        ]);
        let shared = ClusterShared::new(&cfg);
        // Shard 1's replica is unprobeable → optimistic. Shard 0 is all
        // unknown-but-probeable → not yet ready.
        assert!(!shared.quorum_ready(), "probeable replicas start unproven");
        shared.set_health(0, 1, ReplicaHealth::Ready);
        assert!(shared.quorum_ready());
        shared.set_health(0, 1, ReplicaHealth::Unready);
        assert!(!shared.quorum_ready(), "last ready replica of a shard gone");
        shared.set_health(0, 0, ReplicaHealth::Ready);
        assert!(shared.quorum_ready());
        // An unready *unprobeable* replica also counts against quorum.
        shared.set_health(1, 0, ReplicaHealth::Unready);
        assert!(!shared.quorum_ready());
    }

    #[test]
    fn probe_readyz_reads_the_admin_plane() {
        let admin = start_admin(AdminConfig::default(), AdminSources::default()).unwrap();
        let addr = admin.addr().to_string();
        let t = Duration::from_millis(500);
        assert_eq!(probe_readyz(&addr, t), Some(false), "starts unready");
        admin.set_ready(true);
        assert_eq!(probe_readyz(&addr, t), Some(true));
        admin.set_ready(false);
        assert_eq!(probe_readyz(&addr, t), Some(false));
        admin.shutdown();
        // A dead endpoint is indistinguishable from unready: None.
        let free = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        assert_eq!(probe_readyz(&free, t), None);
    }

    #[test]
    fn prober_publishes_health_transitions() {
        let admin = start_admin(AdminConfig::default(), AdminSources::default()).unwrap();
        let cfg = ClusterConfig::new(vec![vec![ReplicaAddr::with_admin(
            "127.0.0.1:9",
            admin.addr().to_string(),
        )]]);
        let shared = ClusterShared::new(&cfg);
        let prober = start_health_prober(Arc::clone(&shared), 10, 200);
        let wait_for = |want: ReplicaHealth| {
            let t0 = Instant::now();
            while shared.health(0, 0) != want {
                assert!(
                    t0.elapsed() < Duration::from_secs(5),
                    "health never became {:?}",
                    want
                );
                thread::sleep(Duration::from_millis(5));
            }
        };
        wait_for(ReplicaHealth::Unready);
        assert!(!shared.quorum_ready());
        admin.set_ready(true);
        wait_for(ReplicaHealth::Ready);
        assert!(shared.quorum_ready());
        admin.set_ready(false);
        wait_for(ReplicaHealth::Unready);
        prober.shutdown();
        admin.shutdown();
    }

    #[test]
    fn router_roots_spans_and_adopts_the_clients_trace_context() {
        odt_obs::trace::set_sample_every(1);
        let live = echo_server();
        let cfg = test_cluster_cfg(&[vec![&live]]);
        let shared = ClusterShared::new(&cfg);
        let mut router = RouterBackend::new(cfg, Arc::clone(&shared));
        let wire = odt_obs::TraceId::from_raw(0x00C1_0C1A_5E55_0001).unwrap();
        let mut nr = request(42, random_query(&mut SplitMix64::new(9)));
        nr.req.trace = Some(wire);
        nr.req.parent_span = Some(5);
        nr.age_us = 137;
        match &router.process(vec![nr])[0].1 {
            WireResponse::Ok {
                trace, served_by, ..
            } => {
                assert_eq!(*trace, Some(wire), "trace id must survive the hop");
                assert!(served_by.is_some(), "replica attribution missing");
            }
            other => panic!("traced request failed: {other:?}"),
        }
        let traces = odt_obs::trace::retained_traces();
        let t = traces
            .iter()
            .rev()
            .find(|t| t.trace_id == wire && t.root_name == "router.request")
            .expect("adopted router trace must be retained");
        assert_eq!(t.parent_span, 5, "client parent ordinal lost");
        assert_eq!(t.request_id, Some(42));
        let names: Vec<&str> = t.spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"router.queue_wait"), "{names:?}");
        assert!(names.contains(&"router.downstream"), "{names:?}");
        live.drain();
    }

    #[test]
    fn breaker_trips_fan_flightrec_out_to_the_shards_admins() {
        // One shard whose only replica has a dead wire port but a live
        // admin plane: hammering it trips the breaker, and publish()
        // must react by POSTing /flightrec to that admin endpoint.
        let admin = start_admin(AdminConfig::default(), AdminSources::default()).unwrap();
        let dead_wire = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut cfg = ClusterConfig::new(vec![vec![ReplicaAddr::with_admin(
            dead_wire,
            admin.addr().to_string(),
        )]]);
        cfg.connect_timeout_ms = 200;
        cfg.request_timeout_ms = 500;
        let shared = ClusterShared::new(&cfg);
        let mut router = RouterBackend::new(cfg, Arc::clone(&shared));
        let mut rng = SplitMix64::new(21);
        let before = admin.requests();
        let batch: Vec<NetRequest> = (0..40)
            .map(|i| request(i, random_query(&mut rng)))
            .collect();
        for (_, resp) in router.process(batch) {
            match resp {
                WireResponse::Ok { ref rung, .. } => assert_eq!(rung, PRIOR_RUNG),
                other => panic!("dark shard must degrade: {other:?}"),
            }
        }
        // No health prober is running, so any admin-plane request can
        // only have come from the flight-recorder fan-out thread.
        let t0 = Instant::now();
        while admin.requests() == before {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "flightrec fan-out never reached the shard's admin plane"
            );
            thread::sleep(Duration::from_millis(10));
        }
        admin.shutdown();
    }

    #[test]
    fn post_flightrec_reports_reachability() {
        let t = Duration::from_millis(500);
        let admin = start_admin(AdminConfig::default(), AdminSources::default()).unwrap();
        let addr = admin.addr().to_string();
        // Live admin: a definite answer (200 when the recorder is armed,
        // 503 otherwise — concurrent tests may toggle it, so accept both).
        assert!(post_flightrec(&addr, t).is_some());
        admin.shutdown();
        // Bound-then-dropped port: unreachable.
        let free = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        assert_eq!(post_flightrec(&free, t), None);
    }
}
