//! Cluster chaos drills: kill a replica under load, partition a whole
//! shard away from the router.
//!
//! Each drill boots a real miniature cluster on loopback — echo-backed
//! shard replicas (each with its own admin plane), a health prober, and
//! a wire-speaking router — then injects the fault *between* client
//! requests so outcomes are exactly reproducible:
//!
//! | scenario                   | fault                        | must hold                          |
//! |----------------------------|------------------------------|------------------------------------|
//! | `cluster_replica_kill`     | one replica drains + dies    | zero client-visible failures,      |
//! |                            | mid-load                     | failovers observed, quorum holds   |
//! |----------------------------|------------------------------|------------------------------------|
//! | `cluster_router_partition` | a whole shard goes dark      | every request still answered       |
//! |                            |                              | (prior rung, never a hang), quorum |
//! |                            |                              | reads false                        |
//! |----------------------------|------------------------------|------------------------------------|
//! | `cluster_trace_loss`       | a replica (wire + admin) dies| retained traces show the retry as  |
//! |                            | mid-wave of traced requests  | two downstream hops under one      |
//! |                            |                              | router span; federation marks the  |
//! |                            |                              | replica stale, keeps its history   |
//!
//! The replicas are echo-backed on purpose: these drills exercise the
//! routing/failover machinery, which is model-agnostic; the
//! model-dependent cluster drill (corrupt checkpoint swap) lives in the
//! `chaos_drill` binary where a trained model exists.

use crate::admin::{start_admin, AdminConfig, AdminHandle, AdminSources};
use crate::cluster::{
    start_health_prober, ClusterConfig, ClusterShared, ReplicaAddr, RouterBackend, PRIOR_RUNG,
};
use crate::loadgen::Region;
use crate::server::{start, ConnStatsSnapshot, EchoBackend, ServerConfig, ServerHandle};
use crate::wire::{
    read_frame, write_frame, FrameRead, WireQuery, WireRequest, WireResponse,
    DEFAULT_MAX_FRAME_BYTES,
};
use odt_obs::SplitMix64;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// What one cluster drill observed.
#[derive(Clone, Debug)]
pub struct ClusterDrillOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// What the drill demonstrates.
    pub description: &'static str,
    /// OK replies that came from a shard replica.
    pub replica_replies: u64,
    /// OK replies served by the router-local prior rung.
    pub prior_replies: u64,
    /// Typed error replies by code name, sorted.
    pub err_replies: Vec<(String, u64)>,
    /// Requests whose reply never arrived (transport loss to the
    /// router — always a violation).
    pub lost: u64,
    /// Router failover counter at the end.
    pub failovers: u64,
    /// Router prior-serve counter at the end.
    pub prior_serves: u64,
    /// Router quorum aggregation at the end.
    pub quorum_ready_end: bool,
    /// The router's wire-port counters after its drain.
    pub router_stats: ConnStatsSnapshot,
    /// Whether the router's drain finished inside its budget.
    pub drain_clean: bool,
    /// Wall time, seconds.
    pub wall_s: f64,
    /// Violated expectations (empty = pass).
    pub violations: Vec<String>,
    /// `violations.is_empty()`.
    pub pass: bool,
}

/// The standing cluster drill names, in run order.
pub fn cluster_drill_names() -> Vec<&'static str> {
    vec![
        "cluster_replica_kill",
        "cluster_router_partition",
        "cluster_trace_loss",
    ]
}

/// Run the standing cluster drills.
pub fn run_cluster_drills() -> Vec<ClusterDrillOutcome> {
    vec![
        run_cluster_replica_kill(),
        run_cluster_router_partition(),
        run_cluster_trace_loss(),
    ]
}

struct Replica {
    server: Option<ServerHandle>,
    admin: AdminHandle,
}

fn replica_server_config() -> ServerConfig {
    ServerConfig {
        acceptor_threads: 1,
        drain_budget_ms: 500,
        ..ServerConfig::default()
    }
}

fn boot_replica() -> Replica {
    let server = start(replica_server_config(), EchoBackend::instant()).expect("replica server");
    let admin =
        start_admin(AdminConfig::default(), AdminSources::default()).expect("replica admin");
    admin.set_ready(true);
    Replica {
        server: Some(server),
        admin,
    }
}

impl Replica {
    fn addr(&self) -> ReplicaAddr {
        ReplicaAddr::with_admin(
            self.server.as_ref().expect("alive").addr().to_string(),
            self.admin.addr().to_string(),
        )
    }

    /// Take the replica out the way an orchestrator would: readiness
    /// off first (so the prober routes around it), then drain.
    fn kill(&mut self) {
        self.admin.set_ready(false);
        if let Some(s) = self.server.take() {
            let _ = s.drain();
        }
    }
}

struct MiniCluster {
    replicas: Vec<Vec<Replica>>,
    shared: Arc<ClusterShared>,
    prober: Option<crate::cluster::ProberHandle>,
    router: Option<ServerHandle>,
}

fn boot_cluster(shape: &[usize]) -> MiniCluster {
    let replicas: Vec<Vec<Replica>> = shape
        .iter()
        .map(|&r| (0..r).map(|_| boot_replica()).collect())
        .collect();
    let topology = replicas
        .iter()
        .map(|rs| rs.iter().map(Replica::addr).collect())
        .collect();
    let mut cfg = ClusterConfig::new(topology);
    cfg.connect_timeout_ms = 200;
    cfg.request_timeout_ms = 1_000;
    let shared = ClusterShared::new(&cfg);
    let prober = start_health_prober(Arc::clone(&shared), 15, 200);
    let backend = RouterBackend::new(cfg, Arc::clone(&shared));
    let router_cfg = ServerConfig {
        acceptor_threads: 1,
        drain_budget_ms: 2_000,
        ..ServerConfig::default()
    };
    let router = start(router_cfg, backend).expect("router server");
    MiniCluster {
        replicas,
        shared,
        prober: Some(prober),
        router: Some(router),
    }
}

impl MiniCluster {
    fn router_addr(&self) -> SocketAddr {
        self.router.as_ref().expect("router alive").addr()
    }

    /// Wait until the prober has proven every shard routable.
    fn wait_quorum(&self, want: bool, budget: Duration) -> bool {
        let t0 = Instant::now();
        while self.shared.quorum_ready() != want {
            if t0.elapsed() > budget {
                return false;
            }
            thread::sleep(Duration::from_millis(5));
        }
        true
    }

    fn wait_health_unready(&self, s: usize, r: usize, budget: Duration) -> bool {
        use crate::cluster::ReplicaHealth;
        let t0 = Instant::now();
        while self.shared.health(s, r) != ReplicaHealth::Unready {
            if t0.elapsed() > budget {
                return false;
            }
            thread::sleep(Duration::from_millis(5));
        }
        true
    }

    fn teardown(mut self) -> (ConnStatsSnapshot, bool) {
        let report = self.router.take().expect("router alive").drain();
        if let Some(p) = self.prober.take() {
            p.shutdown();
        }
        for shard in &mut self.replicas {
            for r in shard {
                if let Some(s) = r.server.take() {
                    let _ = s.drain();
                }
            }
        }
        (report.stats.clone(), report.clean)
    }
}

/// Per-drill reply tally.
#[derive(Default)]
struct Tally {
    replica_ok: u64,
    prior_ok: u64,
    lost: u64,
    errs: HashMap<String, u64>,
}

impl Tally {
    fn absorb(&mut self, resp: Option<WireResponse>) {
        match resp {
            None => self.lost += 1,
            Some(WireResponse::Ok { rung, .. }) => {
                if rung == PRIOR_RUNG {
                    self.prior_ok += 1;
                } else {
                    self.replica_ok += 1;
                }
            }
            Some(WireResponse::Err { code, .. }) => {
                *self.errs.entry(code.name().to_string()).or_insert(0) += 1;
            }
        }
    }

    fn sorted_errs(&self) -> Vec<(String, u64)> {
        let mut v: Vec<_> = self.errs.iter().map(|(k, n)| (k.clone(), *n)).collect();
        v.sort();
        v
    }
}

fn drill_query(rng: &mut SplitMix64) -> WireQuery {
    let r = Region::default();
    WireQuery {
        o_lng: r.lng0 + rng.next_f64() * (r.lng1 - r.lng0),
        o_lat: r.lat0 + rng.next_f64() * (r.lat1 - r.lat0),
        d_lng: r.lng0 + rng.next_f64() * (r.lng1 - r.lng0),
        d_lat: r.lat0 + rng.next_f64() * (r.lat1 - r.lat0),
        t_dep: 28_800.0 + rng.next_f64() * 3_600.0,
    }
}

fn connect(addr: SocketAddr) -> Option<TcpStream> {
    let give_up = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
                return Some(s);
            }
            Err(_) if Instant::now() < give_up => thread::sleep(Duration::from_millis(20)),
            Err(_) => return None,
        }
    }
}

fn exchange(s: &mut TcpStream, id: u64, q: WireQuery) -> Option<WireResponse> {
    let req = WireRequest {
        id,
        query: q,
        deadline_ms: Some(5_000),
        trace: None,
        parent_span: None,
    };
    write_frame(s, &req.to_json()).ok()?;
    match read_frame(s, DEFAULT_MAX_FRAME_BYTES) {
        Ok(FrameRead::Payload(p)) => WireResponse::from_json(&p).ok(),
        _ => None,
    }
}

/// Drill: 2 shards × 2 replicas; one replica of shard 0 is readiness-
/// drained and killed mid-load. Every one of the 120 closed-loop
/// requests must succeed on a replica (the sibling absorbs the dead
/// one's traffic as failovers), the prior must never engage, and the
/// quorum must hold throughout.
pub fn run_cluster_replica_kill() -> ClusterDrillOutcome {
    let name = "cluster_replica_kill";
    let description = "a replica drains and dies mid-load: siblings absorb \
                       its traffic with zero client-visible failures";
    let t0 = Instant::now();
    let mut cluster = boot_cluster(&[2, 2]);
    let mut violations = Vec::new();
    if !cluster.wait_quorum(true, Duration::from_secs(10)) {
        violations.push("cluster never reached quorum".to_string());
    }
    let mut tally = Tally::default();
    let mut rng = SplitMix64::new(0xC1D1);
    let mut conn = connect(cluster.router_addr());
    let send = |tally: &mut Tally,
                rng: &mut SplitMix64,
                conn: &mut Option<TcpStream>,
                n: u64,
                base: u64| {
        for i in 0..n {
            match conn.as_mut() {
                Some(s) => tally.absorb(exchange(s, base + i, drill_query(rng))),
                None => tally.lost += 1,
            }
        }
    };

    // Phase 1: healthy cluster, 40 requests.
    send(&mut tally, &mut rng, &mut conn, 40, 1);

    // The kill: readiness off, wait for the prober to notice, drain.
    cluster.replicas[0][0].kill();
    if !cluster.wait_health_unready(0, 0, Duration::from_secs(5)) {
        violations.push("prober never marked the killed replica unready".to_string());
    }

    // Phase 2: 80 requests against the degraded shard.
    send(&mut tally, &mut rng, &mut conn, 80, 1_000);
    drop(conn);

    let failovers = cluster.shared.failovers();
    let prior_serves = cluster.shared.prior_serves();
    let quorum_end = cluster.shared.quorum_ready();
    let (router_stats, drain_clean) = cluster.teardown();

    if tally.replica_ok != 120 {
        violations.push(format!(
            "only {} of 120 requests replica-served (prior {}, lost {}, errs {:?})",
            tally.replica_ok,
            tally.prior_ok,
            tally.lost,
            tally.sorted_errs()
        ));
    }
    if failovers == 0 {
        violations.push("no failovers recorded despite a dead replica".to_string());
    }
    if prior_serves > 0 {
        violations.push(format!(
            "{prior_serves} prior serves: the sibling replica should have held the shard"
        ));
    }
    if !quorum_end {
        violations.push("quorum lost although every shard kept a live replica".to_string());
    }
    if router_stats.active != 0 {
        violations.push(format!(
            "router leaked {} connection(s)",
            router_stats.active
        ));
    }
    ClusterDrillOutcome {
        name,
        description,
        replica_replies: tally.replica_ok,
        prior_replies: tally.prior_ok,
        err_replies: tally.sorted_errs(),
        lost: tally.lost,
        failovers,
        prior_serves,
        quorum_ready_end: quorum_end,
        router_stats,
        drain_clean,
        wall_s: t0.elapsed().as_secs_f64(),
        pass: violations.is_empty(),
        violations,
    }
}

/// Drill: 2 shards × 1 replica; shard 0's only replica dies, leaving
/// the shard dark. Every request must still get an answer — shard 0's
/// from the router-local prior rung, shard 1's from its replica — and
/// the router's quorum aggregation must read false (its `/readyz`
/// source), never a hang and never a lost reply.
pub fn run_cluster_router_partition() -> ClusterDrillOutcome {
    let name = "cluster_router_partition";
    let description = "a whole shard goes dark: its requests degrade to the \
                       router-local prior (never a hang), the healthy shard \
                       is untouched, quorum reads false";
    let t0 = Instant::now();
    let mut cluster = boot_cluster(&[1, 1]);
    let mut violations = Vec::new();
    if !cluster.wait_quorum(true, Duration::from_secs(10)) {
        violations.push("cluster never reached quorum".to_string());
    }
    let mut tally = Tally::default();
    let mut rng = SplitMix64::new(0x9A27);
    let mut conn = connect(cluster.router_addr());

    for i in 0..30u64 {
        match conn.as_mut() {
            Some(s) => tally.absorb(exchange(s, 1 + i, drill_query(&mut rng))),
            None => tally.lost += 1,
        }
    }
    if tally.replica_ok != 30 {
        violations.push(format!(
            "healthy phase: only {} of 30 replica-served",
            tally.replica_ok
        ));
    }

    // Partition: shard 0's only replica goes away entirely.
    cluster.replicas[0][0].kill();
    if !cluster.wait_health_unready(0, 0, Duration::from_secs(5)) {
        violations.push("prober never marked the dead replica unready".to_string());
    }
    if !cluster.wait_quorum(false, Duration::from_secs(5)) {
        violations.push("quorum stayed true with a dark shard".to_string());
    }

    let before_prior = tally.prior_ok;
    for i in 0..30u64 {
        match conn.as_mut() {
            Some(s) => tally.absorb(exchange(s, 1_000 + i, drill_query(&mut rng))),
            None => tally.lost += 1,
        }
    }
    drop(conn);

    let failovers = cluster.shared.failovers();
    let prior_serves = cluster.shared.prior_serves();
    let quorum_end = cluster.shared.quorum_ready();
    let (router_stats, drain_clean) = cluster.teardown();

    let answered = tally.replica_ok + tally.prior_ok;
    if answered != 60 || tally.lost > 0 || !tally.errs.is_empty() {
        violations.push(format!(
            "only {answered} of 60 answered (lost {}, errs {:?})",
            tally.lost,
            tally.sorted_errs()
        ));
    }
    if tally.prior_ok == before_prior {
        violations.push("dark shard never produced a prior serve".to_string());
    }
    if prior_serves == 0 {
        violations.push("router counters show no prior serves".to_string());
    }
    if quorum_end {
        violations.push("quorum must read false while a shard is dark".to_string());
    }
    if router_stats.active != 0 {
        violations.push(format!(
            "router leaked {} connection(s)",
            router_stats.active
        ));
    }
    ClusterDrillOutcome {
        name,
        description,
        replica_replies: tally.replica_ok,
        prior_replies: tally.prior_ok,
        err_replies: tally.sorted_errs(),
        lost: tally.lost,
        failovers,
        prior_serves,
        quorum_ready_end: quorum_end,
        router_stats,
        drain_clean,
        wall_s: t0.elapsed().as_secs_f64(),
        pass: violations.is_empty(),
        violations,
    }
}

/// Drill: 1 shard × 2 replicas, every request traced, NO health prober
/// (health stays Unknown, so the router keeps attempting the dead
/// replica until its breaker opens — exactly the window where the
/// observability plane must not lose the story). One replica's wire AND
/// admin ports die mid-wave. Must hold: every request still answered by
/// the sibling; at least one retained trace shows the failover as two
/// `router.downstream` child hops under a single router root; and the
/// metrics federation marks the dead replica stale while keeping its
/// last-good history in the federated body.
pub fn run_cluster_trace_loss() -> ClusterDrillOutcome {
    let name = "cluster_trace_loss";
    let description = "a replica dies mid-wave of traced requests: the retry \
                       is visible as sibling downstream hops in one trace, \
                       and federation marks the replica stale without \
                       dropping its history";
    let t0 = Instant::now();
    odt_obs::trace::set_sample_every(1);
    let mut violations = Vec::new();

    // Boot by hand (not boot_cluster): no prober, and the dead replica's
    // admin plane must die with it so the scraper sees a real outage.
    let mut servers: Vec<Option<ServerHandle>> = (0..2)
        .map(|_| Some(start(replica_server_config(), EchoBackend::instant()).expect("replica")))
        .collect();
    let mut admins: Vec<Option<AdminHandle>> = (0..2)
        .map(|_| {
            let a = start_admin(AdminConfig::default(), AdminSources::default()).expect("admin");
            a.set_ready(true);
            Some(a)
        })
        .collect();
    let topology: Vec<Vec<ReplicaAddr>> = vec![servers
        .iter()
        .zip(&admins)
        .map(|(s, a)| {
            ReplicaAddr::with_admin(
                s.as_ref().expect("alive").addr().to_string(),
                a.as_ref().expect("alive").addr().to_string(),
            )
        })
        .collect()];
    let scraper = crate::fed::ClusterScraper::new(&topology, 500);
    let mut cfg = ClusterConfig::new(topology);
    cfg.connect_timeout_ms = 200;
    cfg.request_timeout_ms = 1_000;
    let shared = ClusterShared::new(&cfg);
    let backend = RouterBackend::new(cfg, Arc::clone(&shared));
    let router_cfg = ServerConfig {
        acceptor_threads: 1,
        drain_budget_ms: 2_000,
        ..ServerConfig::default()
    };
    let router = start(router_cfg, backend).expect("router server");

    let mut tally = Tally::default();
    let mut rng = SplitMix64::new(0x7AC3);
    let mut conn = connect(router.addr());
    let mut trace_k = 0u64;
    let send_traced = |tally: &mut Tally,
                       rng: &mut SplitMix64,
                       conn: &mut Option<TcpStream>,
                       n: u64,
                       base: u64,
                       trace_k: &mut u64| {
        for i in 0..n {
            *trace_k += 1;
            let trace = odt_obs::TraceId::from_raw(0xD811_0000 + *trace_k).expect("nonzero");
            match conn.as_mut() {
                Some(s) => {
                    let req = WireRequest {
                        id: base + i,
                        query: drill_query(rng),
                        deadline_ms: Some(5_000),
                        trace: Some(trace),
                        parent_span: None,
                    };
                    let resp = write_frame(s, &req.to_json()).ok().and_then(|_| {
                        match read_frame(s, DEFAULT_MAX_FRAME_BYTES) {
                            Ok(FrameRead::Payload(p)) => WireResponse::from_json(&p).ok(),
                            _ => None,
                        }
                    });
                    tally.absorb(resp);
                }
                None => tally.lost += 1,
            }
        }
    };

    // Phase 1: healthy wave; both replicas scrape fresh.
    send_traced(&mut tally, &mut rng, &mut conn, 20, 1, &mut trace_k);
    if scraper.scrape_once() != 2 {
        violations.push("healthy phase: not every replica scraped fresh".to_string());
    }

    // The loss: replica 0's wire and admin ports both die, abruptly.
    if let Some(s) = servers[0].take() {
        let _ = s.drain();
    }
    if let Some(a) = admins[0].take() {
        a.shutdown();
    }

    // Phase 2: the router discovers the death request-by-request (no
    // prober): failed hops retry on the sibling inside the same trace.
    send_traced(&mut tally, &mut rng, &mut conn, 30, 1_000, &mut trace_k);
    drop(conn);

    // The stitched story, side 1 — traces: at least one router root must
    // carry the failover as two sibling downstream hops.
    let retry_traces = odt_obs::trace::retained_traces()
        .iter()
        .filter(|t| {
            t.root_name == "router.request"
                && t.spans
                    .iter()
                    .filter(|s| s.name == "router.downstream")
                    .count()
                    >= 2
        })
        .count();
    if retry_traces == 0 {
        violations.push(
            "no retained trace shows the retry (two router.downstream hops \
             under one router span)"
                .to_string(),
        );
    }

    // Side 2 — federation: the dead replica goes stale, the sibling stays
    // fresh, and the dead replica's history survives in the body.
    scraper.scrape_once();
    let fed = scraper.federated();
    if !fed.contains("odt_cluster_replica_stale{shard=\"0\",replica=\"0\"} 1") {
        violations.push("federation did not mark the dead replica stale".to_string());
    }
    if !fed.contains("odt_cluster_replica_stale{shard=\"0\",replica=\"1\"} 0") {
        violations.push("federation wrongly staled the live sibling".to_string());
    }
    if fed.matches("replica=\"0\"").count() < 2 {
        violations.push("the dead replica's metric history was dropped".to_string());
    }

    let failovers = shared.failovers();
    let prior_serves = shared.prior_serves();
    let quorum_end = shared.quorum_ready();
    let report = router.drain();
    for s in servers.into_iter().flatten() {
        let _ = s.drain();
    }
    for a in admins.into_iter().flatten() {
        a.shutdown();
    }

    if tally.replica_ok != 50 {
        violations.push(format!(
            "only {} of 50 requests replica-served (prior {}, lost {}, errs {:?})",
            tally.replica_ok,
            tally.prior_ok,
            tally.lost,
            tally.sorted_errs()
        ));
    }
    if failovers == 0 {
        violations.push("no failovers recorded despite the dead replica".to_string());
    }
    ClusterDrillOutcome {
        name,
        description,
        replica_replies: tally.replica_ok,
        prior_replies: tally.prior_ok,
        err_replies: tally.sorted_errs(),
        lost: tally.lost,
        failovers,
        prior_serves,
        quorum_ready_end: quorum_end,
        router_stats: report.stats.clone(),
        drain_clean: report.clean,
        wall_s: t0.elapsed().as_secs_f64(),
        pass: violations.is_empty(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_kill_drill_passes() {
        let o = run_cluster_replica_kill();
        assert!(o.pass, "{:?}\nstats: {:?}", o.violations, o.router_stats);
        assert_eq!(o.lost, 0);
        assert!(o.failovers > 0);
    }

    #[test]
    fn router_partition_drill_passes() {
        let o = run_cluster_router_partition();
        assert!(o.pass, "{:?}\nstats: {:?}", o.violations, o.router_stats);
        assert!(o.prior_replies > 0);
        assert!(!o.quorum_ready_end);
    }

    #[test]
    fn trace_loss_drill_passes() {
        let o = run_cluster_trace_loss();
        assert!(o.pass, "{:?}\nstats: {:?}", o.violations, o.router_stats);
        assert_eq!(o.lost, 0);
        assert!(o.failovers > 0, "retry hops require failovers");
    }
}
