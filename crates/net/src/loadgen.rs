//! Open/closed-loop load generation against an `odt-wire/v1` server.
//!
//! The **open-loop** mode is the honest one for latency measurement: a
//! Poisson arrival schedule (exponential inter-arrival gaps from the
//! shared [`SplitMix64`] generator) is fixed *before* the run, and each
//! request's latency is measured from its **scheduled** send time, not
//! from when the sender thread actually got around to writing it. A
//! server that stalls therefore inflates the latencies of every request
//! scheduled during the stall — the coordinated-omission error that
//! closed-loop harnesses silently hide.
//!
//! The **closed-loop** mode (send → wait → send) is kept for saturation
//! throughput probing, where arrival-rate fidelity doesn't matter.
//!
//! Queries are drawn from a **hotspot-skewed OD mix**: with probability
//! `p_hot` an endpoint snaps near one of `hotspots` fixed centers
//! (jittered), otherwise it falls uniformly in the region — the skew the
//! paper's OD pairs exhibit and the serving stack must absorb. Two knobs
//! shape the skew further for cache benchmarking:
//!
//! * `zipf_s` — hotspot *rank* skew: centers are picked with Zipf
//!   weights `1/(rank+1)^s` instead of uniformly, so a handful of OD
//!   cells dominate the key stream (the regime where an estimate cache
//!   earns its keep). `0` keeps the uniform pick.
//! * `center_drift` — slow time-of-day drift: each center's position
//!   shifts sinusoidally with the query's departure time (morning
//!   hotspots are not evening hotspots), defeating caches that assume a
//!   static hot set.
//!
//! Every run also records the **achieved key skew** over coarse OD
//! cells — distinct keys, top-1/top-10 share — so reports show the
//! workload the server actually saw, not just the knobs requested.

use crate::wire::{
    read_frame, write_frame, FrameRead, WireErrorCode, WireQuery, WireRequest, WireResponse,
};
use odt_obs::{SplitMix64, TraceId};
use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Generation mode.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum LoadMode {
    /// Poisson arrivals at `rate_rps` requests/second across all
    /// connections; latency from scheduled send time (CO-free).
    Open {
        /// Offered rate, requests per second (whole run, all conns).
        rate_rps: f64,
    },
    /// Each connection sends, waits for the reply, sends again.
    Closed,
}

impl LoadMode {
    /// Short tag for reports.
    pub fn name(&self) -> &'static str {
        match self {
            LoadMode::Open { .. } => "open",
            LoadMode::Closed => "closed",
        }
    }
}

/// The rectangle queries are drawn from, degrees.
#[derive(Copy, Clone, Debug)]
pub struct Region {
    /// West edge.
    pub lng0: f64,
    /// South edge.
    pub lat0: f64,
    /// East edge.
    pub lng1: f64,
    /// North edge.
    pub lat1: f64,
}

impl Default for Region {
    /// Roughly the Chengdu box the paper's taxi data covers.
    fn default() -> Self {
        Region {
            lng0: 104.0,
            lat0: 30.6,
            lng1: 104.2,
            lat1: 30.8,
        }
    }
}

/// Load-generator tuning.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Client connections.
    pub conns: usize,
    /// Run length.
    pub duration: Duration,
    /// Open or closed loop.
    pub mode: LoadMode,
    /// Seed for the arrival schedule and the OD mix.
    pub seed: u64,
    /// Deadline budget attached to every request, ms (`None` = server
    /// default).
    pub deadline_ms: Option<u64>,
    /// Hotspot centers in the OD mix (0 disables the skew).
    pub hotspots: usize,
    /// Probability an endpoint snaps to a hotspot.
    pub p_hot: f64,
    /// Zipf exponent for hotspot *rank* selection (`0` = uniform pick
    /// over the centers; larger = heavier concentration on the top-ranked
    /// centers).
    pub zipf_s: f64,
    /// Amplitude of the sinusoidal time-of-day drift of hotspot centers,
    /// as a fraction of the region span (`0` = static centers).
    pub center_drift: f64,
    /// Query region.
    pub region: Region,
    /// Departure-time range drawn uniformly, seconds since midnight.
    pub t_dep_range: (f64, f64),
    /// Attach a trace id to every `trace_every`-th request (0 = never).
    pub trace_every: u64,
    /// Frame cap for reads.
    pub max_frame_bytes: usize,
    /// Total budget for establishing each connection, ms. Refused
    /// connects (server still booting, listener racing the generator)
    /// are retried with doubling backoff until the budget runs out —
    /// a warmup race becomes a counted retry instead of a dead worker.
    /// `0` restores the old fail-fast behaviour.
    pub connect_retry_ms: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7878".to_string(),
            conns: 4,
            duration: Duration::from_secs(10),
            mode: LoadMode::Open { rate_rps: 200.0 },
            seed: 0xD07_CAFE,
            deadline_ms: Some(200),
            hotspots: 8,
            p_hot: 0.6,
            zipf_s: 0.0,
            center_drift: 0.0,
            region: Region::default(),
            t_dep_range: (6.0 * 3600.0, 22.0 * 3600.0),
            trace_every: 64,
            max_frame_bytes: crate::wire::DEFAULT_MAX_FRAME_BYTES,
            connect_retry_ms: 10_000,
        }
    }
}

/// Connect with bounded retry-and-backoff: transient refusals during
/// server warmup (`ECONNREFUSED`, resets while the listener comes up)
/// back off 50 ms doubling to 1 s until [`LoadConfig::connect_retry_ms`]
/// is exhausted; then the last error surfaces. Returns the stream and
/// how many retries it took.
fn connect_with_retry(cfg: &LoadConfig) -> io::Result<(TcpStream, u64)> {
    let budget = Duration::from_millis(cfg.connect_retry_ms);
    let t0 = Instant::now();
    let mut backoff = Duration::from_millis(50);
    let mut retries = 0u64;
    loop {
        match TcpStream::connect(&cfg.addr) {
            Ok(s) => return Ok((s, retries)),
            Err(e) => {
                let retryable = matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionRefused
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::AddrNotAvailable
                );
                if !retryable || t0.elapsed() + backoff > budget {
                    return Err(e);
                }
                thread::sleep(backoff);
                retries += 1;
                backoff = (backoff * 2).min(Duration::from_millis(1_000));
            }
        }
    }
}

/// Hotspot-skewed OD query sampler.
pub struct OdMixer {
    rng: SplitMix64,
    centers: Vec<(f64, f64)>,
    region: Region,
    p_hot: f64,
    t_dep_range: (f64, f64),
    /// Cumulative Zipf weights over the centers; empty = uniform pick.
    zipf_cum: Vec<f64>,
    /// Center drift amplitude, fraction of the region span.
    center_drift: f64,
}

impl OdMixer {
    /// A mixer with `hotspots` centers drawn (deterministically from
    /// `seed`) inside `region`; uniform center pick, static centers.
    pub fn new(
        seed: u64,
        hotspots: usize,
        p_hot: f64,
        region: Region,
        t_dep_range: (f64, f64),
    ) -> OdMixer {
        let mut rng = SplitMix64::new(seed);
        let centers = (0..hotspots)
            .map(|_| {
                (
                    region.lng0 + rng.next_f64() * (region.lng1 - region.lng0),
                    region.lat0 + rng.next_f64() * (region.lat1 - region.lat0),
                )
            })
            .collect();
        OdMixer {
            rng,
            centers,
            region,
            p_hot: p_hot.clamp(0.0, 1.0),
            t_dep_range,
            zipf_cum: Vec::new(),
            center_drift: 0.0,
        }
    }

    /// Pick hotspot centers with Zipf weights `1/(rank+1)^s` instead of
    /// uniformly (`s <= 0` restores the uniform pick). Rank order is the
    /// deterministic center draw order, so the same seed always crowns
    /// the same top hotspot.
    pub fn with_zipf(mut self, s: f64) -> OdMixer {
        self.zipf_cum.clear();
        if s > 0.0 {
            let mut cum = 0.0;
            for i in 0..self.centers.len() {
                cum += 1.0 / ((i + 1) as f64).powf(s);
                self.zipf_cum.push(cum);
            }
        }
        self
    }

    /// Drift each center sinusoidally with the query's departure time,
    /// `frac` of the region span peak-to-center (`0` = static).
    pub fn with_drift(mut self, frac: f64) -> OdMixer {
        self.center_drift = frac.max(0.0);
        self
    }

    /// Where center `i` sits at departure time `t_dep` (seconds since
    /// midnight): the base position plus a slow circular drift, one full
    /// cycle per day, phase-offset per center so the hot set reshapes
    /// rather than translating rigidly.
    fn center_at(&self, i: usize, t_dep: f64) -> (f64, f64) {
        let (cx, cy) = self.centers[i];
        if self.center_drift <= 0.0 {
            return (cx, cy);
        }
        let day = (t_dep / 86_400.0) * std::f64::consts::TAU;
        let phase = i as f64 / self.centers.len().max(1) as f64 * std::f64::consts::TAU;
        let r = &self.region;
        (
            cx + (day + phase).sin() * self.center_drift * (r.lng1 - r.lng0),
            cy + (day + phase).cos() * self.center_drift * (r.lat1 - r.lat0),
        )
    }

    fn pick_center(&mut self) -> usize {
        if self.zipf_cum.is_empty() {
            return self.rng.next_below(self.centers.len() as u64) as usize;
        }
        let total = *self.zipf_cum.last().unwrap();
        let u = self.rng.next_f64() * total;
        self.zipf_cum
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.centers.len() - 1)
    }

    fn endpoint(&mut self, t_dep: f64) -> (f64, f64) {
        let r = self.region;
        if !self.centers.is_empty() && self.rng.next_f64() < self.p_hot {
            let rank = self.pick_center();
            let c = self.center_at(rank, t_dep);
            // Jitter ~1% of the region around the hotspot center (sum of
            // two uniforms ≈ triangular, denser near the center).
            let jl = (r.lng1 - r.lng0) * 0.01;
            let jt = (r.lat1 - r.lat0) * 0.01;
            let jitter = |rng: &mut SplitMix64, s: f64| (rng.next_f64() + rng.next_f64() - 1.0) * s;
            (
                (c.0 + jitter(&mut self.rng, jl)).clamp(r.lng0, r.lng1),
                (c.1 + jitter(&mut self.rng, jt)).clamp(r.lat0, r.lat1),
            )
        } else {
            (
                r.lng0 + self.rng.next_f64() * (r.lng1 - r.lng0),
                r.lat0 + self.rng.next_f64() * (r.lat1 - r.lat0),
            )
        }
    }

    /// Draw one OD query. Departure time is drawn first so the drifted
    /// hotspot positions are a function of *this query's* time of day.
    pub fn next_query(&mut self) -> WireQuery {
        let (t0, t1) = self.t_dep_range;
        let t_dep = t0 + self.rng.next_f64() * (t1 - t0).max(0.0);
        let (o_lng, o_lat) = self.endpoint(t_dep);
        let (d_lng, d_lat) = self.endpoint(t_dep);
        WireQuery {
            o_lng,
            o_lat,
            d_lng,
            d_lat,
            t_dep,
        }
    }
}

/// The achieved key skew of a run, measured over coarse OD cells (a
/// 16×16 grid per endpoint — the granularity an estimate cache keys on,
/// give or take the time bucket).
#[derive(Copy, Clone, Debug, Default)]
pub struct KeySkew {
    /// Distinct coarse OD keys observed.
    pub distinct: u64,
    /// Total keyed requests.
    pub total: u64,
    /// Share of traffic on the single hottest key.
    pub top1_share: f64,
    /// Share of traffic on the ten hottest keys.
    pub top10_share: f64,
}

/// The coarse OD key used for skew accounting: origin and destination
/// snapped to a 16×16 grid over `region`.
pub fn coarse_od_key(q: &WireQuery, region: &Region) -> u32 {
    let cell = |lng: f64, lat: f64| {
        let fx = ((lng - region.lng0) / (region.lng1 - region.lng0)).clamp(0.0, 1.0);
        let fy = ((lat - region.lat0) / (region.lat1 - region.lat0)).clamp(0.0, 1.0);
        let col = ((fx * 16.0) as u32).min(15);
        let row = ((fy * 16.0) as u32).min(15);
        row * 16 + col
    };
    cell(q.o_lng, q.o_lat) << 8 | cell(q.d_lng, q.d_lat)
}

fn key_skew_from_counts(counts: &HashMap<u32, u64>) -> KeySkew {
    let total: u64 = counts.values().sum();
    if total == 0 {
        return KeySkew::default();
    }
    let mut sorted: Vec<u64> = counts.values().copied().collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let top_n = |n: usize| sorted.iter().take(n).sum::<u64>() as f64 / total as f64;
    KeySkew {
        distinct: counts.len() as u64,
        total,
        top1_share: top_n(1),
        top10_share: top_n(10),
    }
}

/// Latency percentiles over a run, milliseconds.
#[derive(Copy, Clone, Debug, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
    /// Mean.
    pub mean_ms: f64,
}

impl LatencySummary {
    fn from_micros(mut samples: Vec<u64>) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let q = |p: f64| {
            let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
            samples[idx] as f64 / 1_000.0
        };
        let sum: u128 = samples.iter().map(|&v| u128::from(v)).sum();
        LatencySummary {
            p50_ms: q(0.50),
            p90_ms: q(0.90),
            p99_ms: q(0.99),
            max_ms: *samples.last().unwrap() as f64 / 1_000.0,
            mean_ms: sum as f64 / samples.len() as f64 / 1_000.0,
        }
    }
}

/// What one load run observed.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// `open` or `closed`.
    pub mode: String,
    /// Offered rate (open loop; 0 for closed).
    pub offered_rps: f64,
    /// Requests written to the wire.
    pub sent: u64,
    /// OK responses received.
    pub ok: u64,
    /// Typed wire errors received, by code name.
    pub errors: Vec<(String, u64)>,
    /// Requests with no response by the end-of-run grace window.
    pub lost: u64,
    /// Wall time, seconds.
    pub wall_s: f64,
    /// Achieved OK throughput, responses/second.
    pub throughput_rps: f64,
    /// End-to-end latency (open loop: from *scheduled* send — CO-free).
    pub latency: LatencySummary,
    /// OK responses per rung name.
    pub rungs: Vec<(String, u64)>,
    /// Served responses whose `deadline_met` was true.
    pub deadline_met: u64,
    /// Worst sender lateness vs the schedule, ms (open loop; a large
    /// value means the generator itself saturated and offered less than
    /// configured).
    pub send_lag_max_ms: f64,
    /// Requests that carried a trace id.
    pub traces_sent: u64,
    /// Connection attempts retried during warmup (transient refusals
    /// absorbed by the connect backoff instead of killing a worker).
    pub connect_retries: u64,
    /// Achieved key skew over coarse OD cells (what the cache actually
    /// saw, regardless of the knobs requested).
    pub key_skew: KeySkew,
    /// OK responses per serving replica (the wire `served_by` field), so
    /// a run against a router shows how traffic actually spread across
    /// shards/replicas. Responses from servers that predate the field
    /// land under `"unknown"`.
    pub served_by: Vec<(String, u64)>,
}

struct ConnTally {
    sent: u64,
    ok: u64,
    lost: u64,
    errors: HashMap<&'static str, u64>,
    rungs: HashMap<String, u64>,
    latencies_us: Vec<u64>,
    deadline_met: u64,
    send_lag_max_us: u64,
    traces_sent: u64,
    keys: HashMap<u32, u64>,
    connect_retries: u64,
    served_by: HashMap<String, u64>,
}

impl ConnTally {
    fn new() -> ConnTally {
        ConnTally {
            sent: 0,
            ok: 0,
            lost: 0,
            errors: HashMap::new(),
            rungs: HashMap::new(),
            latencies_us: Vec::new(),
            deadline_met: 0,
            send_lag_max_us: 0,
            traces_sent: 0,
            keys: HashMap::new(),
            connect_retries: 0,
            served_by: HashMap::new(),
        }
    }
}

/// Run one load generation pass. Returns `Err` only when no connection
/// could be established at all.
pub fn run(cfg: &LoadConfig) -> io::Result<LoadReport> {
    let conns = cfg.conns.max(1);
    let t0 = Instant::now();
    let next_trace = Arc::new(AtomicU64::new(1));
    let mut handles = Vec::new();
    for c in 0..conns {
        let cfg = cfg.clone();
        let next_trace = Arc::clone(&next_trace);
        handles.push(thread::spawn(move || conn_run(&cfg, c, &next_trace)));
    }
    let mut tallies = Vec::new();
    for h in handles {
        match h.join() {
            Ok(Ok(t)) => tallies.push(t),
            Ok(Err(e)) => {
                if tallies.is_empty() {
                    return Err(e);
                }
            }
            Err(_) => {}
        }
    }
    if tallies.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            "no connection completed",
        ));
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let mut report = LoadReport {
        mode: cfg.mode.name().to_string(),
        offered_rps: match cfg.mode {
            LoadMode::Open { rate_rps } => rate_rps,
            LoadMode::Closed => 0.0,
        },
        wall_s,
        ..LoadReport::default()
    };
    let mut errors: HashMap<String, u64> = HashMap::new();
    let mut rungs: HashMap<String, u64> = HashMap::new();
    let mut keys: HashMap<u32, u64> = HashMap::new();
    let mut served_by: HashMap<String, u64> = HashMap::new();
    let mut all_lat = Vec::new();
    let mut lag_max = 0u64;
    for t in tallies {
        report.sent += t.sent;
        report.ok += t.ok;
        report.lost += t.lost;
        report.deadline_met += t.deadline_met;
        report.traces_sent += t.traces_sent;
        report.connect_retries += t.connect_retries;
        lag_max = lag_max.max(t.send_lag_max_us);
        for (k, v) in t.errors {
            *errors.entry(k.to_string()).or_insert(0) += v;
        }
        for (k, v) in t.rungs {
            *rungs.entry(k).or_insert(0) += v;
        }
        for (k, v) in t.keys {
            *keys.entry(k).or_insert(0) += v;
        }
        for (k, v) in t.served_by {
            *served_by.entry(k).or_insert(0) += v;
        }
        all_lat.extend(t.latencies_us);
    }
    report.key_skew = key_skew_from_counts(&keys);
    report.throughput_rps = if wall_s > 0.0 {
        report.ok as f64 / wall_s
    } else {
        0.0
    };
    report.latency = LatencySummary::from_micros(all_lat);
    report.send_lag_max_ms = lag_max as f64 / 1_000.0;
    let mut errors: Vec<_> = errors.into_iter().collect();
    errors.sort();
    report.errors = errors;
    let mut rungs: Vec<_> = rungs.into_iter().collect();
    rungs.sort();
    report.rungs = rungs;
    let mut served_by: Vec<_> = served_by.into_iter().collect();
    served_by.sort();
    report.served_by = served_by;
    Ok(report)
}

fn classify(tally: &mut ConnTally, resp: &WireResponse, sched: Option<Instant>) {
    match resp {
        WireResponse::Ok {
            rung,
            deadline_met,
            served_by,
            ..
        } => {
            tally.ok += 1;
            if *deadline_met {
                tally.deadline_met += 1;
            }
            *tally.rungs.entry(rung.clone()).or_insert(0) += 1;
            let replica = served_by.as_deref().unwrap_or("unknown");
            *tally.served_by.entry(replica.to_string()).or_insert(0) += 1;
            if let Some(t) = sched {
                tally
                    .latencies_us
                    .push(t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
        }
        WireResponse::Err { code, .. } => {
            *tally.errors.entry(code.name()).or_insert(0) += 1;
        }
    }
}

fn conn_run(cfg: &LoadConfig, conn_idx: usize, next_trace: &AtomicU64) -> io::Result<ConnTally> {
    match cfg.mode {
        LoadMode::Open { rate_rps } => open_loop(cfg, conn_idx, rate_rps, next_trace),
        LoadMode::Closed => closed_loop(cfg, conn_idx, next_trace),
    }
}

fn make_request(
    id: u64,
    mixer: &mut OdMixer,
    cfg: &LoadConfig,
    next_trace: &AtomicU64,
    tally: &mut ConnTally,
) -> WireRequest {
    let trace = if cfg.trace_every > 0 && id % cfg.trace_every == 0 {
        let raw = next_trace.fetch_add(1, Ordering::Relaxed);
        let t = TraceId::from_raw(0x10AD_0000_0000_0000 | raw);
        if t.is_some() {
            tally.traces_sent += 1;
        }
        t
    } else {
        None
    };
    let query = mixer.next_query();
    *tally
        .keys
        .entry(coarse_od_key(&query, &cfg.region))
        .or_insert(0) += 1;
    WireRequest {
        id,
        query,
        deadline_ms: cfg.deadline_ms,
        trace,
        parent_span: None,
    }
}

fn closed_loop(cfg: &LoadConfig, conn_idx: usize, next_trace: &AtomicU64) -> io::Result<ConnTally> {
    let (mut stream, connect_retries) = connect_with_retry(cfg)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut mixer = OdMixer::new(
        cfg.seed ^ (conn_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        cfg.hotspots,
        cfg.p_hot,
        cfg.region,
        cfg.t_dep_range,
    )
    .with_zipf(cfg.zipf_s)
    .with_drift(cfg.center_drift);
    let mut tally = ConnTally::new();
    tally.connect_retries = connect_retries;
    let t0 = Instant::now();
    let mut id = 1u64;
    while t0.elapsed() < cfg.duration {
        let req = make_request(id, &mut mixer, cfg, next_trace, &mut tally);
        id += 1;
        let sent_at = Instant::now();
        if write_frame(&mut stream, &req.to_json()).is_err() {
            break;
        }
        tally.sent += 1;
        match read_frame(&mut stream, cfg.max_frame_bytes) {
            Ok(FrameRead::Payload(p)) => match WireResponse::from_json(&p) {
                Ok(resp) => {
                    classify(&mut tally, &resp, Some(sent_at));
                    // A drain refusal means the run is over for us.
                    if matches!(
                        resp,
                        WireResponse::Err {
                            code: WireErrorCode::ServerDraining,
                            ..
                        }
                    ) {
                        break;
                    }
                }
                Err(_) => break,
            },
            Ok(FrameRead::Closed) | Err(_) => {
                tally.lost += 1;
                break;
            }
        }
    }
    Ok(tally)
}

fn open_loop(
    cfg: &LoadConfig,
    conn_idx: usize,
    rate_rps: f64,
    next_trace: &AtomicU64,
) -> io::Result<ConnTally> {
    let (stream, connect_retries) = connect_with_retry(cfg)?;
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut wstream = stream.try_clone()?;

    // Each connection carries an independent Poisson stream at 1/Nth of
    // the configured rate (a superposition of Poisson processes is
    // Poisson at the summed rate).
    let per_conn_rate = rate_rps / cfg.conns.max(1) as f64;
    let mut rng = SplitMix64::new(
        cfg.seed.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ conn_idx as u64,
    );
    let mut mixer = OdMixer::new(
        cfg.seed ^ (conn_idx as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        cfg.hotspots,
        cfg.p_hot,
        cfg.region,
        cfg.t_dep_range,
    )
    .with_zipf(cfg.zipf_s)
    .with_drift(cfg.center_drift);

    // Scheduled send times, fixed up front — the definition of open loop.
    let mut schedule = Vec::new();
    let mut t = 0.0f64;
    let horizon = cfg.duration.as_secs_f64();
    loop {
        t += rng.next_exp_secs(per_conn_rate);
        if !t.is_finite() || t >= horizon {
            break;
        }
        schedule.push(Duration::from_secs_f64(t));
    }

    let epoch = Instant::now();
    let inflight: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let done_sending = Arc::new(AtomicBool::new(false));
    let tally = Arc::new(Mutex::new(ConnTally::new()));
    tally.lock().unwrap().connect_retries = connect_retries;

    // Receiver: classifies replies against scheduled send times.
    let receiver = {
        let inflight = Arc::clone(&inflight);
        let done = Arc::clone(&done_sending);
        let tally = Arc::clone(&tally);
        let max_frame = cfg.max_frame_bytes;
        let mut rstream = stream;
        thread::spawn(move || {
            let grace = Duration::from_secs(2);
            let mut idle_since: Option<Instant> = None;
            loop {
                let outstanding = { !inflight.lock().unwrap().is_empty() };
                if done.load(Ordering::Relaxed) && !outstanding {
                    break;
                }
                match read_frame(&mut rstream, max_frame) {
                    Ok(FrameRead::Payload(p)) => {
                        idle_since = None;
                        if let Ok(resp) = WireResponse::from_json(&p) {
                            let sched = inflight.lock().unwrap().remove(&resp.id());
                            classify(&mut tally.lock().unwrap(), &resp, sched);
                        }
                    }
                    Ok(FrameRead::Closed) => break,
                    Err(crate::wire::FrameError::Io(e))
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        // Reads time out every 50ms so the done/grace
                        // checks run even with a silent server.
                        if done.load(Ordering::Relaxed) {
                            let since = *idle_since.get_or_insert_with(Instant::now);
                            if since.elapsed() > grace {
                                break;
                            }
                        }
                    }
                    Err(_) => break,
                }
            }
        })
    };

    // Sender: walks the schedule, never skipping a slot (late sends are
    // recorded as lag, not dropped — dropping would be coordinated
    // omission by another name).
    for (i, due) in schedule.iter().enumerate() {
        let now = epoch.elapsed();
        if *due > now {
            thread::sleep(*due - now);
        }
        let id = i as u64 + 1;
        let req = make_request(id, &mut mixer, cfg, next_trace, &mut tally.lock().unwrap());
        let sched_at = epoch + *due;
        let lag = epoch.elapsed().saturating_sub(*due);
        inflight.lock().unwrap().insert(id, sched_at);
        if write_frame(&mut wstream, &req.to_json()).is_err() {
            inflight.lock().unwrap().remove(&id);
            break;
        }
        let mut t = tally.lock().unwrap();
        t.sent += 1;
        t.send_lag_max_us = t.send_lag_max_us.max(lag.as_micros() as u64);
    }
    done_sending.store(true, Ordering::Relaxed);
    let _ = receiver.join();

    let mut tally = Arc::try_unwrap(tally)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_else(|_| ConnTally::new());
    let unanswered = inflight.lock().unwrap().len() as u64;
    tally.lost += unanswered;
    Ok(tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{start, EchoBackend, ServerConfig};

    fn server_cfg() -> ServerConfig {
        ServerConfig {
            acceptor_threads: 1,
            read_timeout_ms: 5,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn od_mixer_is_deterministic_and_in_region() {
        let region = Region::default();
        let mk = || OdMixer::new(7, 4, 0.7, region, (0.0, 86_400.0));
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..200 {
            let qa = a.next_query();
            let qb = b.next_query();
            assert_eq!(qa, qb, "same seed must give the same mix");
            for (lng, lat) in [(qa.o_lng, qa.o_lat), (qa.d_lng, qa.d_lat)] {
                assert!((region.lng0..=region.lng1).contains(&lng));
                assert!((region.lat0..=region.lat1).contains(&lat));
            }
            assert!((0.0..=86_400.0).contains(&qa.t_dep));
        }
    }

    #[test]
    fn hotspot_skew_concentrates_endpoints() {
        let region = Region::default();
        let mut hot = OdMixer::new(11, 2, 1.0, region, (0.0, 1.0));
        let mut uniform = OdMixer::new(11, 0, 0.0, region, (0.0, 1.0));
        // With p_hot=1 and 2 centers, distinct origin longitudes collapse
        // to a narrow set; uniform stays spread. Compare coarse-bucket
        // occupancy.
        let buckets = |m: &mut OdMixer| {
            let mut seen = std::collections::HashSet::new();
            for _ in 0..300 {
                let q = m.next_query();
                let w = region.lng1 - region.lng0;
                seen.insert(((q.o_lng - region.lng0) / w * 50.0) as u32);
            }
            seen.len()
        };
        let hot_buckets = buckets(&mut hot);
        let uni_buckets = buckets(&mut uniform);
        assert!(
            hot_buckets < uni_buckets / 2,
            "hotspot mix not skewed: {hot_buckets} vs {uni_buckets} buckets"
        );
    }

    #[test]
    fn zipf_skew_concentrates_on_the_top_ranked_center() {
        let region = Region::default();
        // Same seed, same centers; only the rank distribution differs.
        let counts = |zipf_s: f64| {
            let mut m = OdMixer::new(13, 8, 1.0, region, (0.0, 1.0)).with_zipf(zipf_s);
            let mut per_key: HashMap<u32, u64> = HashMap::new();
            for _ in 0..2_000 {
                let q = m.next_query();
                *per_key.entry(coarse_od_key(&q, &region)).or_insert(0) += 1;
            }
            key_skew_from_counts(&per_key)
        };
        let uniform = counts(0.0);
        let skewed = counts(2.0);
        assert!(
            skewed.top1_share > uniform.top1_share * 2.0,
            "zipf s=2 not skewed: top1 {} vs uniform {}",
            skewed.top1_share,
            uniform.top1_share
        );
        assert!(skewed.distinct < uniform.distinct);
        assert_eq!(uniform.total, 2_000);
    }

    #[test]
    fn center_drift_moves_hotspots_with_time_of_day() {
        let region = Region::default();
        // p_hot=1, one center, zero jitter influence dominated by drift:
        // morning and evening queries must land in different places.
        let centroid = |t_range: (f64, f64)| {
            let mut m = OdMixer::new(17, 1, 1.0, region, t_range).with_drift(0.2);
            let (mut sx, mut n) = (0.0, 0);
            for _ in 0..300 {
                let q = m.next_query();
                sx += q.o_lng;
                n += 1;
            }
            sx / n as f64
        };
        let morning = centroid((6.0 * 3600.0, 6.5 * 3600.0));
        let evening = centroid((18.0 * 3600.0, 18.5 * 3600.0));
        let span = region.lng1 - region.lng0;
        assert!(
            (morning - evening).abs() > span * 0.05,
            "drifted centers did not move: morning {morning} vs evening {evening}"
        );
        // No drift: the same two windows agree.
        let centroid0 = |t_range: (f64, f64)| {
            let mut m = OdMixer::new(17, 1, 1.0, region, t_range);
            let (mut sx, mut n) = (0.0, 0);
            for _ in 0..300 {
                sx += m.next_query().o_lng;
                n += 1;
            }
            sx / n as f64
        };
        let m0 = centroid0((6.0 * 3600.0, 6.5 * 3600.0));
        let e0 = centroid0((18.0 * 3600.0, 18.5 * 3600.0));
        assert!((m0 - e0).abs() < span * 0.02, "static centers moved");
    }

    #[test]
    fn load_runs_record_the_achieved_key_skew() {
        let h = start(server_cfg(), EchoBackend::instant()).unwrap();
        let report = run(&LoadConfig {
            addr: h.addr().to_string(),
            conns: 2,
            duration: Duration::from_millis(300),
            mode: LoadMode::Closed,
            zipf_s: 1.5,
            p_hot: 0.95,
            ..LoadConfig::default()
        })
        .unwrap();
        assert!(report.ok > 0);
        let ks = report.key_skew;
        assert_eq!(ks.total, report.sent, "every sent request is keyed");
        assert!(ks.distinct >= 1);
        assert!(ks.top1_share > 0.0 && ks.top1_share <= 1.0);
        assert!(ks.top10_share >= ks.top1_share && ks.top10_share <= 1.0);
        let _ = h.drain();
    }

    #[test]
    fn latency_summary_percentiles_are_ordered() {
        let s = LatencySummary::from_micros((1..=1000).collect());
        assert!(s.p50_ms <= s.p90_ms && s.p90_ms <= s.p99_ms && s.p99_ms <= s.max_ms);
        assert!((s.max_ms - 1.0).abs() < 1e-9);
        let empty = LatencySummary::from_micros(Vec::new());
        assert_eq!(empty.p99_ms, 0.0);
    }

    #[test]
    fn closed_loop_round_trips_against_an_echo_server() {
        let h = start(server_cfg(), EchoBackend::instant()).unwrap();
        let report = run(&LoadConfig {
            addr: h.addr().to_string(),
            conns: 2,
            duration: Duration::from_millis(300),
            mode: LoadMode::Closed,
            trace_every: 4,
            ..LoadConfig::default()
        })
        .unwrap();
        assert!(report.ok > 0, "{report:?}");
        assert_eq!(report.sent, report.ok, "echo server sheds nothing");
        assert_eq!(report.lost, 0);
        assert!(report.traces_sent > 0);
        assert_eq!(report.mode, "closed");
        let drained = h.drain();
        assert_eq!(drained.stats.active, 0);
    }

    #[test]
    fn warmup_connect_refusals_are_retried_not_fatal() {
        // Reserve a port, then leave it closed while the generator
        // starts: the first connects get ECONNREFUSED and must be
        // absorbed by the retry backoff, not kill the workers.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let generator = {
            let addr = addr.to_string();
            thread::spawn(move || {
                run(&LoadConfig {
                    addr,
                    conns: 2,
                    duration: Duration::from_millis(300),
                    mode: LoadMode::Closed,
                    connect_retry_ms: 10_000,
                    ..LoadConfig::default()
                })
            })
        };
        thread::sleep(Duration::from_millis(300));
        let h = start(
            ServerConfig {
                addr: addr.to_string(),
                ..server_cfg()
            },
            EchoBackend::instant(),
        )
        .unwrap();
        let report = generator
            .join()
            .unwrap()
            .expect("retried connects must eventually succeed");
        assert!(report.connect_retries > 0, "{report:?}");
        assert!(report.ok > 0, "{report:?}");
        assert_eq!(report.lost, 0, "{report:?}");
        let _ = h.drain();

        // connect_retry_ms = 0 restores fail-fast: the refusal surfaces.
        let err = run(&LoadConfig {
            addr: addr.to_string(),
            conns: 1,
            duration: Duration::from_millis(100),
            mode: LoadMode::Closed,
            connect_retry_ms: 0,
            ..LoadConfig::default()
        });
        assert!(err.is_err(), "fail-fast mode must surface the refusal");
    }

    #[test]
    fn open_loop_measures_from_the_schedule() {
        // A deliberately slow echo server: 5ms per request, offered at
        // 100 rps on one connection — the server saturates and open-loop
        // p99 must blow up past the per-request service time, which is
        // exactly what coordinated omission would hide.
        let h = start(
            server_cfg(),
            EchoBackend {
                delay: Duration::from_millis(5),
            },
        )
        .unwrap();
        let report = run(&LoadConfig {
            addr: h.addr().to_string(),
            conns: 1,
            duration: Duration::from_millis(600),
            mode: LoadMode::Open { rate_rps: 150.0 },
            trace_every: 0,
            ..LoadConfig::default()
        })
        .unwrap();
        assert!(report.ok > 10, "{report:?}");
        // Saturated open loop: tail latency reflects queue buildup, so it
        // must exceed the 5ms service floor by a wide margin.
        assert!(
            report.latency.p99_ms > 15.0,
            "open-loop p99 suspiciously low (CO leak?): {:?}",
            report.latency
        );
        assert_eq!(report.mode, "open");
        assert!(report.offered_rps > 0.0);
        let drained = h.drain();
        assert_eq!(drained.stats.active, 0);
    }
}
