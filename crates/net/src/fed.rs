//! Cluster metrics federation: one scrape plane for the whole fleet.
//!
//! A sharded oracle cluster has N×R replica processes, each serving its
//! own Prometheus `/metrics` and `/varz`. Operators should not need N×R
//! scrape configs (or N×R dashboards) to answer "what is the cluster's
//! p99 right now?" — the router already knows the topology, so it hosts
//! the single pane: a [`ClusterScraper`] pulls every replica's admin
//! plane on a fixed period and the router's own admin endpoint re-serves
//! the assembly as `GET /metrics/cluster` and `GET /varz/cluster`.
//!
//! The federated exposition has three layers:
//!
//! 1. **Stale markers** — `odt_cluster_replica_stale{shard,replica}`,
//!    `1` while the replica's last scrape attempt failed (or it was
//!    never reachable). A dead replica keeps its *last good* scrape in
//!    the output so the shard's history survives the outage; the marker
//!    is how dashboards know the numbers stopped moving.
//! 2. **Per-replica families** — every family of every replica's
//!    `/metrics`, re-emitted verbatim with `shard`/`replica` labels
//!    appended (one `# TYPE` line per family, series grouped so the
//!    body is valid 0.0.4 text).
//! 3. **Merged cluster families** — every histogram family is re-parsed
//!    into its fixed-bound [`HistogramData`] form and merged bucket-wise
//!    across replicas ([`HistogramData::merged`]) under the
//!    `odt_cluster_` prefix. The merge is *exact*, not approximate:
//!    every process buckets into the same `2^i − 1` µs bounds, so
//!    bucket-wise sums are the histogram the cluster would have recorded
//!    had it been one process, and cluster `_count`/`_sum` equal the
//!    sums of the per-replica series by construction.
//!
//! `varz_cluster` is the JSON sibling (`odt-cluster-varz/v1`): topology,
//! per-replica state/quality/cache pulled from each scraped `/varz`,
//! staleness, and a per-shard quality roll-up (worst MAE / drift across
//! the shard's live replicas).

use crate::cluster::ReplicaAddr;
use crate::json::JsonValue;
use odt_obs::expo::{self, ParsedExposition};
use odt_obs::json::push_str_escaped;
use odt_obs::{counter, event, HistogramData, Level};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Cap on a scraped response body — an admin plane gone haywire must
/// not balloon the router's memory.
const MAX_SCRAPE_BYTES: usize = 4 * 1024 * 1024;

/// One admin endpoint the scraper pulls.
#[derive(Clone, Debug)]
pub struct ScrapeTarget {
    /// Shard ordinal in the router's topology.
    pub shard: usize,
    /// Replica ordinal within the shard.
    pub replica: usize,
    /// Admin-plane address; `None` for replicas configured without one
    /// (those are permanently stale — there is nothing to scrape).
    pub admin: Option<String>,
}

/// Last-known-good scrape state for one target.
struct TargetState {
    /// Last successfully parsed `/metrics` body.
    metrics: Option<ParsedExposition>,
    /// Last successfully parsed `/varz` body.
    varz: Option<JsonValue>,
    /// Whether the *most recent* attempt failed. Starts `true`: a
    /// replica is stale until proven fresh.
    stale: bool,
    /// Lifetime successful scrapes.
    ok: u64,
    /// Lifetime failed attempts.
    failed: u64,
}

impl Default for TargetState {
    fn default() -> Self {
        TargetState {
            metrics: None,
            varz: None,
            stale: true, // stale until the first successful scrape
            ok: 0,
            failed: 0,
        }
    }
}

/// Pull-based collector for every replica admin plane in a topology.
/// Thread-safe: the scrape thread writes, admin handler threads render.
pub struct ClusterScraper {
    targets: Vec<ScrapeTarget>,
    timeout: Duration,
    states: Vec<Mutex<TargetState>>,
}

impl ClusterScraper {
    /// Build a scraper over the router's replica topology (the same
    /// `Vec<Vec<ReplicaAddr>>` the cluster config holds).
    pub fn new(topology: &[Vec<ReplicaAddr>], timeout_ms: u64) -> ClusterScraper {
        let mut targets = Vec::new();
        for (s, replicas) in topology.iter().enumerate() {
            for (r, addr) in replicas.iter().enumerate() {
                targets.push(ScrapeTarget {
                    shard: s,
                    replica: r,
                    admin: addr.admin.clone(),
                });
            }
        }
        let states = targets.iter().map(|_| Mutex::default()).collect();
        ClusterScraper {
            targets,
            timeout: Duration::from_millis(timeout_ms.max(1)),
            states,
        }
    }

    /// The scrape targets, in topology order.
    pub fn targets(&self) -> &[ScrapeTarget] {
        &self.targets
    }

    /// One synchronous pass over every target: fetch `/metrics` and
    /// `/varz`, keep the parses on success, flip the stale marker on
    /// failure (keeping the last good data). Returns how many targets
    /// scraped clean.
    pub fn scrape_once(&self) -> usize {
        let mut fresh = 0;
        for (i, t) in self.targets.iter().enumerate() {
            let Some(admin) = &t.admin else {
                // Nothing to pull; the default state is already stale.
                continue;
            };
            let metrics = http_get(admin, "/metrics", self.timeout)
                .filter(|(st, _)| *st == 200)
                .and_then(|(_, body)| expo::parse(&body).ok());
            let varz = http_get(admin, "/varz", self.timeout)
                .filter(|(st, _)| *st == 200)
                .and_then(|(_, body)| JsonValue::parse(&body).ok());
            let mut st = self.states[i].lock().expect("scrape state poisoned");
            match metrics {
                Some(parsed) => {
                    st.metrics = Some(parsed);
                    if let Some(v) = varz {
                        st.varz = Some(v);
                    }
                    if st.stale && st.ok > 0 {
                        event(Level::Info, "fed.replica_fresh")
                            .field("shard", t.shard as u64)
                            .field("replica", t.replica as u64)
                            .emit();
                    }
                    st.stale = false;
                    st.ok += 1;
                    fresh += 1;
                    counter("fed.scrape_ok").inc();
                }
                None => {
                    if !st.stale {
                        event(Level::Warn, "fed.replica_stale")
                            .field("shard", t.shard as u64)
                            .field("replica", t.replica as u64)
                            .emit();
                    }
                    st.stale = true;
                    st.failed += 1;
                    counter("fed.scrape_failed").inc();
                }
            }
        }
        fresh
    }

    /// Render the federated Prometheus 0.0.4 body (see module docs for
    /// the three layers). Always parseable by [`expo::parse`].
    pub fn federated(&self) -> String {
        let states: Vec<_> = self
            .states
            .iter()
            .map(|m| m.lock().expect("scrape state poisoned"))
            .collect();
        let mut out = String::with_capacity(4096);

        // Layer 1: staleness markers, one gauge per target.
        out.push_str(
            "# HELP odt_cluster_replica_stale 1 while the replica's last scrape failed\n\
             # TYPE odt_cluster_replica_stale gauge\n",
        );
        for (t, st) in self.targets.iter().zip(&states) {
            out.push_str(&format!(
                "odt_cluster_replica_stale{{shard=\"{}\",replica=\"{}\"}} {}\n",
                t.shard,
                t.replica,
                if st.stale { 1 } else { 0 }
            ));
        }

        // Layer 2: per-replica families. Collect family → declared type
        // in first-seen order, then emit each family's series from every
        // replica together so the family stays contiguous.
        let mut fams: Vec<(String, String)> = Vec::new();
        for st in &states {
            let Some(p) = &st.metrics else { continue };
            for (n, k) in &p.types {
                if !fams.iter().any(|(fn_, _)| fn_ == n) {
                    fams.push((n.clone(), k.clone()));
                }
            }
        }
        for (fam, kind) in &fams {
            out.push_str(&format!("# TYPE {fam} {kind}\n"));
            for (t, st) in self.targets.iter().zip(&states) {
                let Some(p) = &st.metrics else { continue };
                for s in &p.samples {
                    if !family_member(fam, &s.name) {
                        continue;
                    }
                    out.push_str(&s.name);
                    out.push('{');
                    for (k, v) in &s.labels {
                        out.push_str(k);
                        out.push_str("=\"");
                        expo::push_label_value(&mut out, v);
                        out.push_str("\",");
                    }
                    out.push_str(&format!(
                        "shard=\"{}\",replica=\"{}\"}} ",
                        t.shard, t.replica
                    ));
                    expo::push_sample(&mut out, s.value);
                    out.push('\n');
                }
            }
        }

        // Layer 3: exact bucket-wise merges of every histogram family.
        let mut merged: BTreeMap<String, HistogramData> = BTreeMap::new();
        for st in &states {
            let Some(p) = &st.metrics else { continue };
            let Ok(hists) = expo::histograms_from_parts(p) else {
                continue;
            };
            for (fam, d) in hists {
                merged.entry(fam).or_default().merge_from(&d);
            }
        }
        for (fam, d) in &merged {
            let cname = cluster_family(fam);
            out.push_str(&format!(
                "# HELP {cname} bucket-wise merge of {fam} across all replicas\n\
                 # TYPE {cname} histogram\n"
            ));
            for (le, cum) in d.cumulative_buckets() {
                out.push_str(&format!("{cname}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{cname}_bucket{{le=\"+Inf\"}} {}\n", d.count));
            out.push_str(&format!("{cname}_sum {}\n", d.sum_us));
            out.push_str(&format!("{cname}_count {}\n", d.count));
            out.push_str(&format!("# TYPE {cname}_quantile gauge\n"));
            for (label, q) in [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)] {
                out.push_str(&format!("{cname}_quantile{{quantile=\"{label}\"}} "));
                expo::push_sample(&mut out, d.quantile_micros(q));
                out.push('\n');
            }
            out.push_str(&format!(
                "# TYPE {cname}_max gauge\n{cname}_max {}\n",
                d.max_us
            ));
        }
        out
    }

    /// Render the `odt-cluster-varz/v1` JSON roll-up: topology, each
    /// replica's scraped state/quality/cache, staleness, and per-shard
    /// worst-case quality.
    pub fn varz_cluster(&self) -> String {
        let states: Vec<_> = self
            .states
            .iter()
            .map(|m| m.lock().expect("scrape state poisoned"))
            .collect();
        let shards = self.targets.iter().map(|t| t.shard + 1).max().unwrap_or(0);
        let mut o = String::with_capacity(1024);
        o.push_str("{\"schema\":\"odt-cluster-varz/v1\",\"shards\":[");
        for s in 0..shards {
            if s > 0 {
                o.push(',');
            }
            o.push_str(&format!("{{\"shard\":{s},\"replicas\":["));
            let mut worst_mae = f64::NAN;
            let mut worst_drift = f64::NAN;
            let mut live = 0u64;
            let mut first = true;
            for (t, st) in self.targets.iter().zip(&states) {
                if t.shard != s {
                    continue;
                }
                if !first {
                    o.push(',');
                }
                first = false;
                o.push_str(&format!("{{\"replica\":{},\"admin\":", t.replica));
                match &t.admin {
                    Some(a) => push_str_escaped(&mut o, a),
                    None => o.push_str("null"),
                }
                o.push_str(&format!(
                    ",\"stale\":{},\"scrapes_ok\":{},\"scrapes_failed\":{}",
                    st.stale, st.ok, st.failed
                ));
                let v = st.varz.as_ref();
                o.push_str(",\"state\":");
                match v.and_then(|v| v.get("state")).and_then(|s| s.as_str()) {
                    Some(state) => push_str_escaped(&mut o, state),
                    None => o.push_str("null"),
                }
                for key in ["quality", "cache", "frontend"] {
                    o.push_str(&format!(",\"{key}\":"));
                    match v.and_then(|v| v.get(key)) {
                        Some(val) => val.render(&mut o),
                        None => o.push_str("null"),
                    }
                }
                o.push('}');
                if !st.stale {
                    live += 1;
                    if let Some(q) = v.and_then(|v| v.get("quality")) {
                        if let Some(mae) = q.get("mae_s").and_then(|x| x.as_f64()) {
                            if !(worst_mae >= mae) {
                                worst_mae = mae;
                            }
                        }
                        if let Some(d) = q.get("drift_score").and_then(|x| x.as_f64()) {
                            if !(worst_drift >= d) {
                                worst_drift = d;
                            }
                        }
                    }
                }
            }
            o.push_str(&format!("],\"live_replicas\":{live},\"worst_mae_s\":"));
            push_json_f64(&mut o, worst_mae);
            o.push_str(",\"worst_drift_score\":");
            push_json_f64(&mut o, worst_drift);
            o.push('}');
        }
        o.push_str("]}");
        o
    }
}

/// NaN-safe JSON float (JSON has no NaN literal; `null` means "no data").
fn push_json_f64(o: &mut String, v: f64) {
    if v.is_finite() {
        odt_obs::json::push_f64(o, v);
    } else {
        o.push_str("null");
    }
}

/// Whether sample `name` belongs to exposition family `fam` (the family
/// itself, or one of the histogram triplet suffixes).
fn family_member(fam: &str, name: &str) -> bool {
    match name.strip_prefix(fam) {
        Some(rest) => matches!(rest, "" | "_bucket" | "_sum" | "_count"),
        None => false,
    }
}

/// The merged family name for a per-process family: `odt_serve_request_us`
/// → `odt_cluster_serve_request_us`.
fn cluster_family(fam: &str) -> String {
    format!("odt_cluster_{}", fam.strip_prefix("odt_").unwrap_or(fam))
}

/// Plain HTTP/1.1 GET against an admin endpoint: returns the status and
/// body, or `None` when the endpoint is unreachable, times out, or the
/// reply is not parseable HTTP. Reads to connection close (the admin
/// plane always answers `Connection: close`), bounded by
/// [`MAX_SCRAPE_BYTES`].
pub fn http_get(admin_addr: &str, path: &str, timeout: Duration) -> Option<(u16, String)> {
    let addr = admin_addr.to_socket_addrs().ok()?.next()?;
    let mut s = TcpStream::connect_timeout(&addr, timeout).ok()?;
    s.set_read_timeout(Some(timeout)).ok()?;
    s.set_write_timeout(Some(timeout)).ok()?;
    s.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: odt\r\nConnection: close\r\nAccept: */*\r\n\r\n")
            .as_bytes(),
    )
    .ok()?;
    let mut raw = Vec::with_capacity(4096);
    let mut chunk = [0u8; 8192];
    loop {
        match s.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                raw.extend_from_slice(&chunk[..n]);
                if raw.len() > MAX_SCRAPE_BYTES {
                    return None;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n")?;
    let status: u16 = head
        .lines()
        .next()?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some((status, body.to_string()))
}

/// A running background scrape loop; [`ScraperHandle::shutdown`] stops it.
pub struct ScraperHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ScraperHandle {
    /// Stop the loop and join the thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Start the periodic scrape loop: one [`ClusterScraper::scrape_once`]
/// pass every `period_ms` (the first pass runs immediately, so the
/// federated body is populated as soon as replicas answer).
pub fn start_scraper(scraper: Arc<ClusterScraper>, period_ms: u64) -> ScraperHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread = thread::Builder::new()
        .name("odt-fed-scraper".to_string())
        .spawn(move || {
            let period = Duration::from_millis(period_ms.max(1));
            let tick = Duration::from_millis(period_ms.clamp(1, 25));
            loop {
                if flag.load(Ordering::Acquire) {
                    return;
                }
                scraper.scrape_once();
                // Sleep in small ticks so shutdown stays prompt even
                // with multi-second scrape periods.
                let mut slept = Duration::ZERO;
                while slept < period {
                    if flag.load(Ordering::Acquire) {
                        return;
                    }
                    thread::sleep(tick);
                    slept += tick;
                }
            }
        })
        .expect("spawn fed scraper");
    ScraperHandle {
        stop,
        thread: Some(thread),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::{start_admin, AdminConfig, AdminSources};

    fn one_replica(admin: &str) -> Vec<Vec<ReplicaAddr>> {
        vec![vec![ReplicaAddr::with_admin("127.0.0.1:9", admin)]]
    }

    #[test]
    fn http_get_fetches_status_and_body() {
        let admin = start_admin(AdminConfig::default(), AdminSources::default()).unwrap();
        let t = Duration::from_millis(1_000);
        let (st, body) = http_get(&admin.addr().to_string(), "/healthz", t).unwrap();
        assert_eq!((st, body.as_str()), (200, "ok\n"));
        let (st, _) = http_get(&admin.addr().to_string(), "/nonesuch", t).unwrap();
        assert_eq!(st, 404);
        admin.shutdown();
        let free = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        assert!(http_get(&free, "/healthz", t).is_none());
    }

    #[test]
    fn scrape_federates_with_labels_and_exact_histogram_merge() {
        // Make sure the process registry has a histogram to federate.
        odt_obs::histogram("fed.test.lat").record_micros(500);
        odt_obs::histogram("fed.test.lat").record_micros(9_000);
        let admin = start_admin(AdminConfig::default(), AdminSources::default()).unwrap();
        let scraper = ClusterScraper::new(&one_replica(&admin.addr().to_string()), 1_000);
        assert_eq!(scraper.scrape_once(), 1);
        let body = scraper.federated();
        assert!(
            body.contains("odt_cluster_replica_stale{shard=\"0\",replica=\"0\"} 0"),
            "{body}"
        );
        // Per-replica series carry topology labels.
        assert!(
            body.contains("shard=\"0\",replica=\"0\"} "),
            "missing replica labels: {body}"
        );
        // The federated body is itself valid exposition text.
        let parsed = expo::parse(&body).expect("federated body must re-parse");
        // Exact merge: with one replica, the cluster count equals the
        // replica's own count series.
        let cluster_count = parsed
            .samples
            .iter()
            .find(|s| s.name == "odt_cluster_fed_test_lat_us_count")
            .expect("merged family missing")
            .value;
        let replica_count = parsed
            .samples
            .iter()
            .find(|s| s.name == "odt_fed_test_lat_us_count" && s.label("replica").is_some())
            .expect("labeled replica count missing")
            .value;
        assert_eq!(cluster_count, replica_count);
        assert!(cluster_count >= 2.0, "{cluster_count}");
        admin.shutdown();
    }

    #[test]
    fn dead_replicas_go_stale_but_keep_their_history() {
        odt_obs::counter("fed.test.keepalive").inc();
        let admin = start_admin(AdminConfig::default(), AdminSources::default()).unwrap();
        let scraper = ClusterScraper::new(&one_replica(&admin.addr().to_string()), 300);
        assert_eq!(scraper.scrape_once(), 1);
        admin.shutdown();
        // The replica is gone: the next pass fails…
        assert_eq!(scraper.scrape_once(), 0);
        let body = scraper.federated();
        // …the marker flips…
        assert!(
            body.contains("odt_cluster_replica_stale{shard=\"0\",replica=\"0\"} 1"),
            "{body}"
        );
        // …but the last good scrape still renders: history survives.
        assert!(
            body.contains("odt_fed_test_keepalive_total{shard=\"0\",replica=\"0\"}"),
            "dead replica's history dropped: {body}"
        );
        let varz = scraper.varz_cluster();
        assert!(
            varz.starts_with("{\"schema\":\"odt-cluster-varz/v1\""),
            "{varz}"
        );
        assert!(varz.contains("\"stale\":true"), "{varz}");
        assert!(varz.contains("\"live_replicas\":0"), "{varz}");
    }

    #[test]
    fn replicas_without_admin_planes_are_permanently_stale() {
        let topo = vec![vec![ReplicaAddr::wire_only("127.0.0.1:9")]];
        let scraper = ClusterScraper::new(&topo, 100);
        assert_eq!(scraper.scrape_once(), 0);
        let body = scraper.federated();
        assert!(
            body.contains("odt_cluster_replica_stale{shard=\"0\",replica=\"0\"} 1"),
            "{body}"
        );
        // Valid exposition even with zero scraped families.
        expo::parse(&body).expect("empty federation must still parse");
    }
}
