//! `odt-wire/v1`: the length-prefixed JSON protocol the TCP frontend
//! speaks.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON — one document per frame, pipelining allowed,
//! responses may arrive out of order (correlate by `id`).
//!
//! Request payload:
//!
//! ```json
//! {"v":"odt-wire/v1","id":7,"o":[116.35,39.92],"d":[116.41,39.99],
//!  "t_dep":28800.0,"deadline_ms":50,"trace":"1f00ab34cd56ef78",
//!  "parent_span":3}
//! ```
//!
//! `deadline_ms` (optional) is a budget from server receipt; `trace`
//! (optional) is a nonzero hex trace id the server *adopts* for the
//! request's root span, so client and server logs join on one id;
//! `parent_span` (optional, only meaningful alongside `trace`) is the
//! caller's span ordinal within that trace — a router forwarding a
//! request sends its own downstream-hop span here, so the shard's span
//! tree can be stitched under the router's (DESIGN.md §15).
//!
//! Success response:
//!
//! ```json
//! {"v":"odt-wire/v1","id":7,"seconds":512.3,"rung":"ddim",
//!  "queue_wait_us":120,"service_us":4800,"deadline_met":true,
//!  "trace":"1f00ab34cd56ef78","served_by":"s1a"}
//! ```
//!
//! `served_by` (optional) names the process instance that computed the
//! answer, so clients behind a router can see per-replica attribution.
//!
//! Error response (typed; codes below):
//!
//! ```json
//! {"v":"odt-wire/v1","id":7,"error":{"code":"queue_full","detail":"queue at capacity 64"}}
//! ```
//!
//! Wire error codes mirror the frontend's shed reasons one-for-one and
//! add the transport-level refusals:
//!
//! | code              | origin                                              |
//! |-------------------|-----------------------------------------------------|
//! | `queue_full`      | admission queue at capacity, request had budget left |
//! | `queue_expired`   | deadline expired while queued                        |
//! | `invalid_query`   | admission check rejected the query                   |
//! | `internal`        | every rung failed (should not happen)                |
//! | `over_capacity`   | global connection cap reached; connection closed     |
//! | `backpressure`    | dispatch queue full at the network boundary          |
//! | `frame_too_large` | length prefix exceeds `max_frame_bytes`; closed      |
//! | `malformed_frame` | payload not valid `odt-wire/v1` JSON                 |
//! | `server_draining` | server is draining; retry against another replica    |

use crate::json::{escape_into, JsonValue};
use odt_obs::TraceId;
use std::io::{self, Read, Write};

/// Protocol identifier carried in every payload's `v` field.
pub const WIRE_SCHEMA: &str = "odt-wire/v1";

/// Length-prefix size (4-byte big-endian payload length).
pub const FRAME_HEADER_BYTES: usize = 4;

/// Default cap on a single frame's payload (requests are ~200 bytes;
/// anything near this is hostile).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024;

/// The OD query as it crosses the wire.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct WireQuery {
    /// Origin longitude, degrees.
    pub o_lng: f64,
    /// Origin latitude, degrees.
    pub o_lat: f64,
    /// Destination longitude, degrees.
    pub d_lng: f64,
    /// Destination latitude, degrees.
    pub d_lat: f64,
    /// Departure time, seconds since local midnight.
    pub t_dep: f64,
}

/// One parsed `odt-wire/v1` request.
#[derive(Clone, Debug, PartialEq)]
pub struct WireRequest {
    /// Client-chosen correlation id (echoed verbatim in the response).
    pub id: u64,
    /// The OD query.
    pub query: WireQuery,
    /// Optional deadline budget in milliseconds from server receipt.
    pub deadline_ms: Option<u64>,
    /// Optional client trace id for the server to adopt.
    pub trace: Option<TraceId>,
    /// Optional caller span ordinal within `trace` (the parent the
    /// server's root span attaches under in cross-process stitching).
    /// Ignored without `trace`.
    pub parent_span: Option<u64>,
}

/// Typed wire error codes (see module docs for the full table).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WireErrorCode {
    /// Admission queue at capacity.
    QueueFull,
    /// Deadline expired while queued.
    QueueExpired,
    /// Admission check rejected the query.
    InvalidQuery,
    /// Every rung failed.
    Internal,
    /// Global connection cap reached.
    OverCapacity,
    /// Network dispatch queue full (per-boundary backpressure shed).
    Backpressure,
    /// Frame length prefix exceeded the configured cap.
    FrameTooLarge,
    /// Payload was not valid `odt-wire/v1` JSON.
    MalformedFrame,
    /// Server is draining and refusing new work.
    ServerDraining,
}

impl WireErrorCode {
    /// The wire string for this code.
    pub fn name(self) -> &'static str {
        match self {
            WireErrorCode::QueueFull => "queue_full",
            WireErrorCode::QueueExpired => "queue_expired",
            WireErrorCode::InvalidQuery => "invalid_query",
            WireErrorCode::Internal => "internal",
            WireErrorCode::OverCapacity => "over_capacity",
            WireErrorCode::Backpressure => "backpressure",
            WireErrorCode::FrameTooLarge => "frame_too_large",
            WireErrorCode::MalformedFrame => "malformed_frame",
            WireErrorCode::ServerDraining => "server_draining",
        }
    }

    /// Parse a wire string back to a code (load generators classify
    /// errors by this).
    pub fn from_name(s: &str) -> Option<WireErrorCode> {
        Some(match s {
            "queue_full" => WireErrorCode::QueueFull,
            "queue_expired" => WireErrorCode::QueueExpired,
            "invalid_query" => WireErrorCode::InvalidQuery,
            "internal" => WireErrorCode::Internal,
            "over_capacity" => WireErrorCode::OverCapacity,
            "backpressure" => WireErrorCode::Backpressure,
            "frame_too_large" => WireErrorCode::FrameTooLarge,
            "malformed_frame" => WireErrorCode::MalformedFrame,
            "server_draining" => WireErrorCode::ServerDraining,
            _ => return None,
        })
    }

    /// Map a frontend shed reason name to its wire code (the names were
    /// aligned deliberately; `Internal` is the safety net).
    pub fn from_shed_name(s: &str) -> WireErrorCode {
        WireErrorCode::from_name(s).unwrap_or(WireErrorCode::Internal)
    }

    /// Whether the client may retry the same request and plausibly
    /// succeed (capacity/queue conditions pass; protocol errors do not).
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            WireErrorCode::QueueFull
                | WireErrorCode::QueueExpired
                | WireErrorCode::OverCapacity
                | WireErrorCode::Backpressure
                | WireErrorCode::ServerDraining
        )
    }
}

/// One `odt-wire/v1` response, either direction of the happy/sad split.
#[derive(Clone, Debug, PartialEq)]
pub enum WireResponse {
    /// The request was served.
    Ok {
        /// Correlation id.
        id: u64,
        /// Estimated travel time, seconds.
        seconds: f64,
        /// Name of the ladder rung that answered.
        rung: String,
        /// Time the request spent queued, µs.
        queue_wait_us: u64,
        /// Service time on the answering rung, µs.
        service_us: u64,
        /// Whether the answer landed within the deadline.
        deadline_met: bool,
        /// The trace id the server used (adopted or minted), hex.
        trace: Option<TraceId>,
        /// Instance name of the process that computed the answer (a
        /// router forwards the shard's name; prior-rung answers carry
        /// the router's own).
        served_by: Option<String>,
    },
    /// The request (or connection) was refused.
    Err {
        /// Correlation id (0 when the failure predates parsing an id).
        id: u64,
        /// Typed refusal code.
        code: WireErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

impl WireResponse {
    /// The correlation id.
    pub fn id(&self) -> u64 {
        match self {
            WireResponse::Ok { id, .. } | WireResponse::Err { id, .. } => *id,
        }
    }

    /// Shorthand for an error response.
    pub fn error(id: u64, code: WireErrorCode, detail: impl Into<String>) -> WireResponse {
        WireResponse::Err {
            id,
            code,
            detail: detail.into(),
        }
    }

    /// Serialize to an `odt-wire/v1` payload.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        match self {
            WireResponse::Ok {
                id,
                seconds,
                rung,
                queue_wait_us,
                service_us,
                deadline_met,
                trace,
                served_by,
            } => {
                s.push_str("{\"v\":\"");
                s.push_str(WIRE_SCHEMA);
                s.push_str("\",\"id\":");
                s.push_str(&id.to_string());
                s.push_str(",\"seconds\":");
                s.push_str(&fmt_f64(*seconds));
                s.push_str(",\"rung\":");
                escape_into(&mut s, rung);
                s.push_str(",\"queue_wait_us\":");
                s.push_str(&queue_wait_us.to_string());
                s.push_str(",\"service_us\":");
                s.push_str(&service_us.to_string());
                s.push_str(",\"deadline_met\":");
                s.push_str(if *deadline_met { "true" } else { "false" });
                if let Some(t) = trace {
                    s.push_str(",\"trace\":\"");
                    s.push_str(&t.to_hex());
                    s.push('"');
                }
                if let Some(by) = served_by {
                    s.push_str(",\"served_by\":");
                    escape_into(&mut s, by);
                }
                s.push('}');
            }
            WireResponse::Err { id, code, detail } => {
                s.push_str("{\"v\":\"");
                s.push_str(WIRE_SCHEMA);
                s.push_str("\",\"id\":");
                s.push_str(&id.to_string());
                s.push_str(",\"error\":{\"code\":\"");
                s.push_str(code.name());
                s.push_str("\",\"detail\":");
                escape_into(&mut s, detail);
                s.push_str("}}");
            }
        }
        s
    }

    /// Parse a response payload (client side).
    pub fn from_json(text: &str) -> Result<WireResponse, String> {
        let v = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let id = v
            .get("id")
            .and_then(JsonValue::as_u64)
            .ok_or("missing response id")?;
        if let Some(err) = v.get("error") {
            let code = err
                .get("code")
                .and_then(JsonValue::as_str)
                .and_then(WireErrorCode::from_name)
                .ok_or("missing or unknown error code")?;
            let detail = err
                .get("detail")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string();
            return Ok(WireResponse::Err { id, code, detail });
        }
        let seconds = v
            .get("seconds")
            .and_then(JsonValue::as_f64)
            .ok_or("missing seconds")?;
        Ok(WireResponse::Ok {
            id,
            seconds,
            rung: v
                .get("rung")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_string(),
            queue_wait_us: v
                .get("queue_wait_us")
                .and_then(JsonValue::as_u64)
                .unwrap_or(0),
            service_us: v.get("service_us").and_then(JsonValue::as_u64).unwrap_or(0),
            deadline_met: v
                .get("deadline_met")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            trace: v
                .get("trace")
                .and_then(JsonValue::as_str)
                .and_then(TraceId::from_hex),
            served_by: v
                .get("served_by")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
        })
    }
}

impl WireRequest {
    /// Serialize to an `odt-wire/v1` payload (client side).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str("{\"v\":\"");
        s.push_str(WIRE_SCHEMA);
        s.push_str("\",\"id\":");
        s.push_str(&self.id.to_string());
        s.push_str(",\"o\":[");
        s.push_str(&fmt_f64(self.query.o_lng));
        s.push(',');
        s.push_str(&fmt_f64(self.query.o_lat));
        s.push_str("],\"d\":[");
        s.push_str(&fmt_f64(self.query.d_lng));
        s.push(',');
        s.push_str(&fmt_f64(self.query.d_lat));
        s.push_str("],\"t_dep\":");
        s.push_str(&fmt_f64(self.query.t_dep));
        if let Some(ms) = self.deadline_ms {
            s.push_str(",\"deadline_ms\":");
            s.push_str(&ms.to_string());
        }
        if let Some(t) = self.trace {
            s.push_str(",\"trace\":\"");
            s.push_str(&t.to_hex());
            s.push('"');
            if let Some(p) = self.parent_span {
                s.push_str(",\"parent_span\":");
                s.push_str(&p.to_string());
            }
        }
        s.push('}');
        s
    }

    /// Parse a request payload (server side). Errors are human-readable
    /// details for a `malformed_frame` / `invalid_query` wire error; the
    /// id, when recoverable, rides along so the error can correlate.
    pub fn from_json(text: &str) -> Result<WireRequest, (u64, String)> {
        let v = JsonValue::parse(text).map_err(|e| (0, e.to_string()))?;
        let id = v.get("id").and_then(JsonValue::as_u64).unwrap_or(0);
        if let Some(ver) = v.get("v").and_then(JsonValue::as_str) {
            if ver != WIRE_SCHEMA {
                return Err((id, format!("unsupported wire version {ver:?}")));
            }
        }
        if id == 0 && v.get("id").is_none() {
            return Err((0, "missing request id".to_string()));
        }
        let pair = |key: &str| -> Result<(f64, f64), (u64, String)> {
            let arr = v
                .get(key)
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| (id, format!("missing {key:?} [lng,lat] pair")))?;
            if arr.len() != 2 {
                return Err((id, format!("{key:?} must be [lng,lat]")));
            }
            let lng = arr[0]
                .as_f64()
                .ok_or_else(|| (id, format!("{key:?} lng not a number")))?;
            let lat = arr[1]
                .as_f64()
                .ok_or_else(|| (id, format!("{key:?} lat not a number")))?;
            Ok((lng, lat))
        };
        let (o_lng, o_lat) = pair("o")?;
        let (d_lng, d_lat) = pair("d")?;
        let t_dep = v
            .get("t_dep")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| (id, "missing t_dep".to_string()))?;
        let trace = match v.get("trace") {
            None | Some(JsonValue::Null) => None,
            Some(t) => {
                let hex = t
                    .as_str()
                    .ok_or_else(|| (id, "trace must be a hex string".to_string()))?;
                Some(
                    TraceId::from_hex(hex)
                        .ok_or_else(|| (id, format!("invalid trace id {hex:?}")))?,
                )
            }
        };
        Ok(WireRequest {
            id,
            query: WireQuery {
                o_lng,
                o_lat,
                d_lng,
                d_lat,
                t_dep,
            },
            deadline_ms: v.get("deadline_ms").and_then(JsonValue::as_u64),
            // parent_span is a position inside `trace`; meaningless (and
            // dropped) without one.
            parent_span: trace
                .is_some()
                .then(|| v.get("parent_span").and_then(JsonValue::as_u64))
                .flatten()
                .filter(|&p| p != 0),
            trace,
        })
    }
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // `{}` on f64 never prints exponent-free integers with a dot;
        // that's fine for JSON, but NaN/inf must never leak.
        s
    } else {
        "null".to_string()
    }
}

/// Write one frame (length prefix + payload). The payload must fit in
/// `u32`; wire payloads are tiny so this is an assertion, not a path.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload exceeds u32 length"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Outcome of a blocking frame read.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete payload.
    Payload(String),
    /// The peer closed the stream at a frame boundary (clean EOF).
    Closed,
}

/// Why a frame read failed.
#[derive(Debug)]
pub enum FrameError {
    /// The length prefix exceeded the cap; the connection must close
    /// (the stream can no longer be resynchronized safely).
    TooLarge {
        /// Declared payload length.
        declared: usize,
        /// The configured cap.
        max: usize,
    },
    /// The payload was not UTF-8.
    Utf8,
    /// The peer closed mid-frame.
    TruncatedEof,
    /// An I/O error (including timeouts surfaced by the caller's socket
    /// read timeout).
    Io(io::Error),
}

/// Blocking read of one frame from `r`, with payloads capped at `max`.
/// Used by clients and tests; the server's connection loop does its own
/// incremental reads so it can interleave timeout/drain checks.
///
/// Socket read timeouts (`WouldBlock`/`TimedOut`) surface as
/// [`FrameError::Io`] **only while no byte of the frame has arrived** —
/// an idle tick the caller can use for its own bookkeeping. Once a
/// frame has started, timeouts retry instead: returning mid-frame would
/// silently discard consumed bytes and desynchronize the stream.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<FrameRead, FrameError> {
    let timeoutish = |e: &io::Error| {
        matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    };
    let mut hdr = [0u8; FRAME_HEADER_BYTES];
    let mut got = 0;
    while got < hdr.len() {
        match r.read(&mut hdr[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(FrameRead::Closed)
                } else {
                    Err(FrameError::TruncatedEof)
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if timeoutish(&e) && got > 0 => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let declared = u32::from_be_bytes(hdr) as usize;
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    let mut buf = vec![0u8; declared];
    let mut got = 0;
    while got < declared {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Err(FrameError::TruncatedEof),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted || timeoutish(&e) => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    String::from_utf8(buf)
        .map(FrameRead::Payload)
        .map_err(|_| FrameError::Utf8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_query() -> WireQuery {
        WireQuery {
            o_lng: 116.35,
            o_lat: 39.92,
            d_lng: 116.41,
            d_lat: 39.99,
            t_dep: 28800.0,
        }
    }

    #[test]
    fn request_round_trips_with_and_without_options() {
        let full = WireRequest {
            id: 7,
            query: rt_query(),
            deadline_ms: Some(50),
            trace: TraceId::from_hex("1f00ab34cd56ef78"),
            parent_span: Some(3),
        };
        let back = WireRequest::from_json(&full.to_json()).unwrap();
        assert_eq!(back, full);

        let bare = WireRequest {
            id: 1,
            query: rt_query(),
            deadline_ms: None,
            trace: None,
            parent_span: None,
        };
        assert_eq!(WireRequest::from_json(&bare.to_json()).unwrap(), bare);
    }

    #[test]
    fn parent_span_requires_a_trace_and_drops_zero() {
        // parent_span without trace is dropped on parse (a position in
        // no trace), and the serializer never emits it alone.
        let req =
            WireRequest::from_json(r#"{"id":2,"o":[0,0],"d":[0,0],"t_dep":0,"parent_span":5}"#)
                .unwrap();
        assert_eq!(req.parent_span, None);
        let orphan = WireRequest {
            id: 2,
            query: rt_query(),
            deadline_ms: None,
            trace: None,
            parent_span: Some(5),
        };
        assert!(!orphan.to_json().contains("parent_span"));
        // parent_span 0 means "root" and is normalized to absent.
        let req = WireRequest::from_json(
            r#"{"id":2,"o":[0,0],"d":[0,0],"t_dep":0,"trace":"c0ffee","parent_span":0}"#,
        )
        .unwrap();
        assert_eq!(req.parent_span, None);
        assert!(req.trace.is_some());
    }

    #[test]
    fn request_parse_rejects_junk_with_the_id_when_known() {
        // Unknown version string is refused but correlates.
        let (id, msg) =
            WireRequest::from_json(r#"{"v":"odt-wire/v9","id":3,"o":[0,0],"d":[0,0],"t_dep":0}"#)
                .unwrap_err();
        assert_eq!(id, 3);
        assert!(msg.contains("version"));
        // Missing coordinates.
        let (id, _) = WireRequest::from_json(r#"{"id":4,"t_dep":0}"#).unwrap_err();
        assert_eq!(id, 4);
        // Bad trace ids are typed errors, not adopted garbage.
        assert!(
            WireRequest::from_json(r#"{"id":5,"o":[0,0],"d":[0,0],"t_dep":0,"trace":"zzzz"}"#)
                .is_err()
        );
        // Zero ("absent") trace ids are refused by TraceId::from_hex.
        assert!(
            WireRequest::from_json(r#"{"id":6,"o":[0,0],"d":[0,0],"t_dep":0,"trace":"0"}"#)
                .is_err()
        );
        // Not JSON at all.
        assert!(WireRequest::from_json("hello").is_err());
    }

    #[test]
    fn responses_round_trip_both_arms() {
        let ok = WireResponse::Ok {
            id: 9,
            seconds: 512.25,
            rung: "ddim".to_string(),
            queue_wait_us: 120,
            service_us: 4800,
            deadline_met: true,
            trace: TraceId::from_hex("c0ffee"),
            served_by: Some("s1a".to_string()),
        };
        assert_eq!(WireResponse::from_json(&ok.to_json()).unwrap(), ok);
        // Absent served_by stays absent (older peers interop).
        let plain = WireResponse::Ok {
            id: 10,
            seconds: 1.0,
            rung: "echo".to_string(),
            queue_wait_us: 0,
            service_us: 0,
            deadline_met: true,
            trace: None,
            served_by: None,
        };
        let json = plain.to_json();
        assert!(!json.contains("served_by"));
        assert_eq!(WireResponse::from_json(&json).unwrap(), plain);

        let err = WireResponse::error(3, WireErrorCode::QueueExpired, "expired 40us in queue");
        let back = WireResponse::from_json(&err.to_json()).unwrap();
        assert_eq!(back, err);
        match back {
            WireResponse::Err { code, .. } => assert!(code.is_retryable()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn every_error_code_round_trips_and_shed_names_map() {
        use WireErrorCode::*;
        for code in [
            QueueFull,
            QueueExpired,
            InvalidQuery,
            Internal,
            OverCapacity,
            Backpressure,
            FrameTooLarge,
            MalformedFrame,
            ServerDraining,
        ] {
            assert_eq!(WireErrorCode::from_name(code.name()), Some(code));
        }
        // The four frontend shed reasons map onto wire codes by name.
        assert_eq!(WireErrorCode::from_shed_name("queue_full"), QueueFull);
        assert_eq!(WireErrorCode::from_shed_name("queue_expired"), QueueExpired);
        assert_eq!(WireErrorCode::from_shed_name("invalid_query"), InvalidQuery);
        assert_eq!(WireErrorCode::from_shed_name("internal"), Internal);
        assert_eq!(WireErrorCode::from_shed_name("???"), Internal);
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut r = &buf[..];
        match read_frame(&mut r, 1024).unwrap() {
            FrameRead::Payload(p) => assert_eq!(p, "{\"a\":1}"),
            other => panic!("{other:?}"),
        }
        match read_frame(&mut r, 1024).unwrap() {
            FrameRead::Payload(p) => assert_eq!(p, "second"),
            other => panic!("{other:?}"),
        }
        matches!(read_frame(&mut r, 1024).unwrap(), FrameRead::Closed)
            .then_some(())
            .unwrap();
    }

    #[test]
    fn oversized_and_truncated_frames_are_typed_errors() {
        // Declared length over the cap.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1_000_000u32).to_be_bytes());
        match read_frame(&mut &buf[..], 65_536) {
            Err(FrameError::TooLarge { declared, max }) => {
                assert_eq!(declared, 1_000_000);
                assert_eq!(max, 65_536);
            }
            other => panic!("{other:?}"),
        }
        // Truncated payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(10u32).to_be_bytes());
        buf.extend_from_slice(b"abc");
        assert!(matches!(
            read_frame(&mut &buf[..], 1024),
            Err(FrameError::TruncatedEof)
        ));
        // Truncated header.
        assert!(matches!(
            read_frame(&mut &[0u8, 0][..], 1024),
            Err(FrameError::TruncatedEof)
        ));
        // Non-UTF-8 payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(2u32).to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            read_frame(&mut &buf[..], 1024),
            Err(FrameError::Utf8)
        ));
    }
}
