//! End-to-end hot-swap coverage: a real (tiny) trained oracle behind a
//! [`ModelSlot`], a registry on disk, and the swap controller driven
//! tick-by-tick while serving waves run between every tick — proving
//! corrupt, misshapen and drift-failing candidates are refused with
//! typed errors and that a swap (accepted or rejected) never interrupts
//! in-flight serving.

use std::path::{Path, PathBuf};
use std::rc::Rc;

use odt_core::{Dot, DotConfig, ModelRegistry};
use odt_serve::{
    dot_frontend, ChaosConfig, ChaosExecutor, DotExecutor, DotFrontendConfig, DotSwapHost,
    DotSwapHostConfig, FrontendConfig, ModelSlot, Response, ServeFrontend, SwapConfig,
    SwapController, SwapError, SwapOutcome,
};
use odt_traj::{Dataset, OdtInput, Split};

type SlotFrontend = ServeFrontend<ChaosExecutor<DotExecutor<'static>>>;

fn dataset() -> Dataset {
    let mut cfg = odt_traj::sim::CitySimConfig::chengdu_like();
    cfg.nx = 8;
    cfg.ny = 8;
    Dataset::simulated(cfg, 180, 8, 41)
}

fn tiny_model(data: &Dataset, lg: usize, stage_iters: usize) -> Dot {
    let mut cfg = DotConfig::fast();
    cfg.lg = lg;
    cfg.n_steps = 8;
    cfg.base_channels = 4;
    cfg.cond_dim = 16;
    cfg.d_e = 16;
    cfg.stage1_iters = stage_iters;
    cfg.stage2_iters = stage_iters * 2;
    cfg.early_stop_samples = 3;
    cfg.early_stop_every = stage_iters;
    Dot::train(cfg, data, |_| {})
}

fn queries(data: &Dataset, n: usize) -> Vec<OdtInput> {
    (0..n)
        .map(|i| OdtInput::from_trajectory(&data.trips[i % data.trips.len()]))
        .collect()
}

fn holdout(data: &Dataset) -> Vec<(OdtInput, f64)> {
    data.split(Split::Test)
        .iter()
        .map(|t| (OdtInput::from_trajectory(t), t.travel_time()))
        .collect()
}

/// Corrupt a checkpoint copy by flipping one payload bit (the CRC gate
/// must catch it).
fn corrupt_copy(src: &Path, dst: &Path) {
    let mut bytes = std::fs::read(src).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x08;
    std::fs::write(dst, &bytes).unwrap();
}

/// Drive the controller to its conclusion, serving a wave between every
/// tick and asserting that every request in every wave is answered —
/// the zero-interruption contract.
fn drive_while_serving(
    ctrl: &mut SwapController<DotSwapHost>,
    fe: &mut SlotFrontend,
    wave: &[OdtInput],
) -> SwapOutcome {
    for _ in 0..200 {
        if let Some(outcome) = ctrl.tick() {
            return outcome;
        }
        let out = fe.process_wave(wave.iter().cloned().map(|q| (q, None)));
        assert_eq!(out.len(), wave.len());
        for r in &out {
            match r {
                Response::Served { seconds, .. } => {
                    assert!(seconds.is_finite() && *seconds >= 0.0, "{seconds}");
                }
                other => panic!("request shed while a swap was in flight: {other:?}"),
            }
        }
    }
    panic!("swap did not conclude within 200 ticks");
}

fn controller(
    registry: &ModelRegistry,
    slot: &Rc<ModelSlot>,
    data: &Dataset,
    cfg: SwapConfig,
) -> SwapController<DotSwapHost> {
    let host = DotSwapHost::new(
        registry.clone(),
        slot.clone(),
        holdout(data),
        None,
        DotSwapHostConfig {
            batch: 4,
            ddim_steps: 3,
            rng_seed: 0x51A9,
        },
    );
    SwapController::new(host, cfg)
}

#[test]
fn hot_swap_gates_and_promotes_without_interrupting_serving() {
    let dir = std::env::temp_dir().join(format!("odt_hot_swap_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let data = dataset();
    let serving = tiny_model(&data, 8, 15);
    let registry = ModelRegistry::open(dir.join("registry")).unwrap();
    let v1 = registry.publish(&serving).unwrap();
    assert_eq!(v1, 1);

    // A structurally-valid candidate on the serving grid: the serving
    // checkpoint itself, under a candidate name.
    let good: PathBuf = dir.join("cand_good.dotckpt");
    std::fs::copy(registry.version_path(1), &good).unwrap();

    let slot = ModelSlot::from_model(serving, v1);
    let mut fe: SlotFrontend = dot_frontend(
        slot.clone(),
        DotFrontendConfig::default(),
        FrontendConfig::default(),
        ChaosConfig::quiet(7),
    );
    let wave = queries(&data, 4);
    let gate = SwapConfig {
        shadow_samples: 12,
        ..SwapConfig::default()
    };

    // --- Corrupt candidate: refused by the CRC gate, serving untouched.
    let corrupt = dir.join("cand_corrupt.dotckpt");
    corrupt_copy(&good, &corrupt);
    let mut ctrl = controller(&registry, &slot, &data, gate);
    ctrl.request(corrupt.to_str().unwrap(), None).unwrap();
    match drive_while_serving(&mut ctrl, &mut fe, &wave) {
        SwapOutcome::Rejected(e) => assert_eq!(e.code(), "corrupt", "{e}"),
        other => panic!("corrupt candidate must be refused, got {other:?}"),
    }
    assert_eq!(slot.version(), 1);
    assert_eq!(slot.swaps(), 0);
    assert_eq!(registry.current_version().unwrap(), Some(1));

    // --- Wrong grid shape: parses fine, refused by the shape gate.
    let misshapen = dir.join("cand_shape.dotckpt");
    tiny_model(&data, 6, 2).save(&misshapen).unwrap();
    ctrl.request(misshapen.to_str().unwrap(), None).unwrap();
    match drive_while_serving(&mut ctrl, &mut fe, &wave) {
        SwapOutcome::Rejected(SwapError::ShapeMismatch(detail)) => {
            assert!(detail.contains("lg=6"), "{detail}");
        }
        other => panic!("misshapen candidate must be refused, got {other:?}"),
    }
    assert_eq!(slot.version(), 1);

    // --- Drift gate: an impossible gate (candidate must beat serving
    // by 2x) rejects even an identical model, with both MAEs reported.
    let mut strict = controller(
        &registry,
        &slot,
        &data,
        SwapConfig {
            shadow_samples: 12,
            max_mae_ratio: 0.5,
            mae_slack_s: 0.0,
        },
    );
    strict.request(good.to_str().unwrap(), None).unwrap();
    match drive_while_serving(&mut strict, &mut fe, &wave) {
        SwapOutcome::Rejected(SwapError::DriftFailed {
            cand_mae_s,
            serving_mae_s,
        }) => {
            assert!(cand_mae_s.is_finite() && serving_mae_s.is_finite());
            assert!(cand_mae_s > 0.5 * serving_mae_s);
        }
        other => panic!("drift gate must reject, got {other:?}"),
    }
    assert_eq!(slot.version(), 1, "rejections never touch serving");

    // --- Good candidate under the normal gate: a second request is
    // refused busy mid-flight, then the swap promotes v2 into the slot
    // and the registry, still without a single shed request.
    ctrl.request(good.to_str().unwrap(), None).unwrap();
    assert!(matches!(
        ctrl.request(good.to_str().unwrap(), None),
        Err(SwapError::Busy)
    ));
    match drive_while_serving(&mut ctrl, &mut fe, &wave) {
        SwapOutcome::Promoted { version, .. } => assert_eq!(version, 2),
        other => panic!("good candidate must promote, got {other:?}"),
    }
    assert_eq!(slot.version(), 2);
    assert_eq!(slot.swaps(), 1);
    assert_eq!(registry.current_version().unwrap(), Some(2));
    assert_eq!(registry.versions().unwrap(), vec![1, 2]);
    let stats = ctrl.stats();
    assert_eq!((stats.promoted, stats.rejected), (1, 2));

    // Post-swap serving comes from the new model and still answers.
    let out = fe.process_wave(queries(&data, 6).into_iter().map(|q| (q, None)));
    assert!(out.iter().all(|r| matches!(r, Response::Served { .. })));

    let _ = std::fs::remove_dir_all(&dir);
}
