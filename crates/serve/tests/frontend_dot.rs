//! End-to-end resilience tests: the deadline-aware frontend over a real
//! (tiny) trained DOT oracle, with injected faults.

use std::sync::{Arc, Mutex};

use odt_core::{Dot, DotConfig};
use odt_roadnet::LngLat;
use odt_serve::{
    dot_frontend, dot_frontend_cached, BreakerState, CacheConfig, ChaosConfig, DotFrontendConfig,
    EstimateCache, FrontendConfig, HotTracker, Response, Rung, ShedPolicy, ShedReason,
};
use odt_traj::{Dataset, OdtInput};

fn dataset() -> Dataset {
    let mut cfg = odt_traj::sim::CitySimConfig::chengdu_like();
    cfg.nx = 8;
    cfg.ny = 8;
    Dataset::simulated(cfg, 180, 8, 41)
}

fn tiny_model(data: &Dataset) -> Dot {
    let mut cfg = DotConfig::fast();
    cfg.lg = 8;
    cfg.n_steps = 8;
    cfg.base_channels = 4;
    cfg.cond_dim = 16;
    cfg.d_e = 16;
    cfg.stage1_iters = 15;
    cfg.stage2_iters = 30;
    cfg.early_stop_samples = 3;
    cfg.early_stop_every = 15;
    Dot::train(cfg, data, |_| {})
}

fn queries(data: &Dataset, n: usize) -> Vec<OdtInput> {
    (0..n)
        .map(|i| OdtInput::from_trajectory(&data.trips[i % data.trips.len()]))
        .collect()
}

#[test]
fn frontend_serves_degrades_and_recovers() {
    let data = dataset();
    let model = tiny_model(&data);
    let mut fe = dot_frontend(
        &model,
        DotFrontendConfig::default(),
        FrontendConfig::default(),
        ChaosConfig::quiet(7),
    );

    // Healthy wave: everything answers, finite and non-negative.
    let out = fe.process_wave(queries(&data, 6).into_iter().map(|q| (q, None)));
    assert_eq!(out.len(), 6);
    for r in &out {
        match r {
            Response::Served { seconds, .. } => {
                assert!(seconds.is_finite() && *seconds >= 0.0, "{seconds}");
            }
            other => panic!("healthy wave shed a request: {other:?}"),
        }
    }
    assert_eq!(fe.snapshot().served, 6);

    // NaN storm on every model rung: breakers trip, the exempt fallback
    // still answers every request.
    fe.executor_mut().set_config(ChaosConfig {
        p_nan: 1.0,
        ..ChaosConfig::quiet(11)
    });
    let out = fe.process_wave(queries(&data, 8).into_iter().map(|q| (q, None)));
    assert!(
        out.iter().all(Response::is_served),
        "storm dropped requests"
    );
    for r in &out {
        if let Response::Served { rung, seconds, .. } = r {
            assert_eq!(*rung, Rung::Fallback);
            assert!(seconds.is_finite() && *seconds >= 0.0);
        }
    }
    let s = fe.snapshot();
    // Default threshold 3: each model rung fails thrice, then its open
    // breaker routes the rest of the storm straight to the fallback (the
    // cache rungs have no cache attached, so their breakers never engage).
    assert_eq!(s.breaker_trips, [0, 1, 1, 1, 0]);
    assert_eq!(
        s.rung_failures[Rung::Full.index()..=Rung::DdimReduced.index()],
        [3, 3, 3]
    );
    assert_eq!(s.rung_hits[Rung::Fallback.index()], 8);
    assert_eq!(fe.breaker_state(Rung::Full), Some(BreakerState::Open));

    // Chaos cleared + cool-down elapsed: half-open probes succeed and full
    // fidelity resumes.
    fe.executor_mut().set_config(ChaosConfig::quiet(13));
    std::thread::sleep(std::time::Duration::from_millis(60));
    let out = fe.process_wave(queries(&data, 4).into_iter().map(|q| (q, None)));
    assert!(out.iter().all(Response::is_served));
    let s = fe.snapshot();
    assert_eq!(fe.breaker_state(Rung::Full), Some(BreakerState::Closed));
    assert!(
        s.rung_hits[Rung::Full.index()] >= 4,
        "full fidelity never resumed: {s:?}"
    );
}

#[test]
fn admission_deadlines_and_overload() {
    let data = dataset();
    let model = tiny_model(&data);
    let rejected_before = model.robustness().queries_rejected;
    let mut fe = dot_frontend(
        &model,
        DotFrontendConfig::default(),
        FrontendConfig {
            queue_capacity: 4,
            shed_policy: ShedPolicy::RejectNewest,
            ..FrontendConfig::default()
        },
        ChaosConfig::quiet(7),
    );

    // Strict admission: a query far outside the region is refused with a
    // typed reason and counted by the oracle's robustness stats.
    let base = OdtInput::from_trajectory(&data.trips[0]);
    let span = data.grid.max.lng - data.grid.min.lng;
    let far = OdtInput {
        origin: LngLat {
            lng: data.grid.min.lng - 3.0 * span,
            lat: base.origin.lat,
        },
        ..base
    };
    match fe.submit(far, None) {
        Err(Response::Shed {
            reason: ShedReason::InvalidQuery,
            detail,
            ..
        }) => assert!(detail.contains("outside"), "unexpected detail {detail:?}"),
        other => panic!("far query was admitted: {other:?}"),
    }
    assert!(model.robustness().queries_rejected > rejected_before);
    // A mildly-out-of-range query is still clamped and served, as before.
    let near = OdtInput {
        origin: LngLat {
            lng: data.grid.min.lng - 0.1 * span,
            lat: base.origin.lat,
        },
        ..base
    };
    assert!(fe.submit(near, None).is_ok());
    assert!(fe.drain().iter().all(Response::is_served));

    // Queue flood: capacity 4 against 12 submissions in one wave.
    let out = fe.process_wave(queries(&data, 12).into_iter().map(|q| (q, None)));
    let served = out.iter().filter(|r| r.is_served()).count();
    assert_eq!(served, 4);
    assert_eq!(
        out.iter()
            .filter(|r| matches!(
                r,
                Response::Shed {
                    reason: ShedReason::QueueFull,
                    ..
                }
            ))
            .count(),
        8
    );

    // A microscopic deadline budget: the request is either honestly shed
    // (expired in queue) or answered by a degraded rung — never served
    // late at full fidelity (full DDPM cannot fit a 50µs budget).
    let out = fe.process_wave(queries(&data, 4).into_iter().map(|q| (q, Some(50u64))));
    assert_eq!(out.len(), 4);
    for r in &out {
        match r {
            Response::Served { rung, seconds, .. } => {
                assert!(
                    rung.index() > Rung::Full.index(),
                    "tight deadline picked {rung:?}"
                );
                assert!(seconds.is_finite() && *seconds >= 0.0);
            }
            Response::Shed { reason, .. } => {
                assert_eq!(*reason, ShedReason::DeadlineExpiredInQueue);
            }
        }
    }
}

#[test]
fn cached_frontend_serves_repeat_queries_from_the_cache() {
    let data = dataset();
    let model = tiny_model(&data);
    let cache = Arc::new(EstimateCache::new(CacheConfig {
        capacity: 256,
        ..CacheConfig::default()
    }));
    let hot = Arc::new(Mutex::new(HotTracker::new(64)));
    let mut fe = dot_frontend_cached(
        &model,
        DotFrontendConfig::default(),
        FrontendConfig::default(),
        ChaosConfig::quiet(7),
        Arc::clone(&cache),
        Arc::clone(&hot),
    );

    // First pass: cold cache — every answer comes from a model rung and
    // is written through into the cache.
    let qs = queries(&data, 5);
    let first = fe.process_wave(qs.clone().into_iter().map(|q| (q, None)));
    let mut model_answers = Vec::new();
    for r in &first {
        match r {
            Response::Served { rung, seconds, .. } => {
                assert!(!rung.is_cache(), "cold cache cannot serve {rung:?}");
                model_answers.push(*seconds);
            }
            other => panic!("cold pass shed: {other:?}"),
        }
    }
    assert_eq!(cache.len(), 5, "write-through filled the cache");

    // Second pass, same queries: every answer serves from the cached rung
    // and is bit-identical to the model answer that filled it.
    let second = fe.process_wave(qs.into_iter().map(|q| (q, None)));
    for (r, expected) in second.iter().zip(&model_answers) {
        match r {
            Response::Served {
                rung,
                seconds,
                downgraded,
                ..
            } => {
                assert_eq!(*rung, Rung::Cached);
                assert_eq!(
                    seconds.to_bits(),
                    expected.to_bits(),
                    "cached serve must be bit-identical to the filling value"
                );
                assert!(!downgraded);
            }
            other => panic!("warm pass shed: {other:?}"),
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.hits, 5);
    assert!(stats.hit_rate() > 0.0);
    // The hot tracker saw every probe (both passes).
    assert!(hot.lock().unwrap().len() >= 1);

    // Drift-style invalidation: after a generation bump, no pre-bump
    // entry may serve again.
    cache.invalidate_all("test_drift");
    let qs = queries(&data, 5);
    let third = fe.process_wave(qs.into_iter().map(|q| (q, None)));
    for r in &third {
        if let Response::Served { rung, .. } = r {
            assert!(
                !rung.is_cache(),
                "post-invalidation serve came from the cache: {rung:?}"
            );
        }
    }
}
