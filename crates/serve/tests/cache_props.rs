//! Property-based tests for the hot-path estimate cache (the invariants
//! the cached ladder rungs rest on):
//!
//! 1. **Bounded** — no workload, however adversarial, ever pushes the
//!    resident entry count past the configured capacity.
//! 2. **Deterministic admission** — with a fixed sketch seed, replaying
//!    the same access/insert sequence produces the identical cache: same
//!    resident set, same admission rejects, same eviction count.
//! 3. **Exact staleness boundaries** — an entry is fresh up to and
//!    including its TTL, stale up to and including `ttl * stale_grace`,
//!    and a miss one microsecond past the grace bound, for arbitrary
//!    buckets and offsets.
//! 4. **Bit-identity** — a lookup returns exactly the f64 bits the fill
//!    inserted (no rounding, no re-derivation), which is what makes the
//!    cached rung's answer bit-identical to the `estimate_batch` value
//!    that produced it.

use odt_serve::{CacheConfig, CacheLookup, EstimateCache, OdKey};
use proptest::prelude::*;

fn small_cfg(capacity: usize, seed: u64) -> CacheConfig {
    CacheConfig {
        capacity,
        shards: 4,
        sketch_seed: seed,
        ..CacheConfig::default()
    }
}

/// One step of a replayable cache workload.
#[derive(Copy, Clone, Debug)]
enum Op {
    Insert { key: u16, bits: u16, forced: bool },
    Lookup { key: u16 },
    Advance { us: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), any::<u16>(), any::<bool>())
            .prop_map(|(key, bits, forced)| Op::Insert { key, bits, forced }),
        2 => any::<u16>().prop_map(|key| Op::Lookup { key }),
        1 => (0u32..2_000_000).prop_map(|us| Op::Advance { us }),
    ]
}

/// Map a compact op key onto a real OD key (distinct cells, bucket 0 so
/// the default non-rush TTL applies throughout).
fn od_key(k: u16) -> OdKey {
    OdKey::new(u32::from(k) & 0xFF, (u32::from(k) >> 8) & 0xFF, 0)
}

/// Finite, non-NaN payload derived from arbitrary bits (the cache refuses
/// non-finite values by design, so the workload only offers finite ones).
fn payload(bits: u16) -> f64 {
    f64::from(bits) + 0.125
}

fn replay(cache: &EstimateCache, ops: &[Op]) -> (u64, u64, Vec<(u64, u64)>) {
    let mut now = 1u64;
    let mut resident_max = 0usize;
    for op in ops {
        match *op {
            Op::Insert { key, bits, forced } => {
                if forced {
                    cache.insert_forced(od_key(key), payload(bits), now);
                } else {
                    cache.insert(od_key(key), payload(bits), now);
                }
            }
            Op::Lookup { key } => {
                cache.lookup(od_key(key), now);
            }
            Op::Advance { us } => now += u64::from(us),
        }
        let len = cache.len();
        assert!(
            len <= cache.capacity(),
            "resident {len} exceeded capacity {}",
            cache.capacity()
        );
        resident_max = resident_max.max(len);
    }
    // The final resident *set and payloads*, probed without perturbing
    // anything: generation matching via a fresh lookup at the same clock.
    let mut survivors = Vec::new();
    for k in 0u16..=255 {
        for hi in 0u16..=3 {
            let key = k | (hi << 8);
            if let CacheLookup::Fresh { seconds, .. } | CacheLookup::Stale { seconds, .. } =
                cache.lookup(od_key(key), now)
            {
                survivors.push((od_key(key).0, seconds.to_bits()));
            }
        }
    }
    let s = cache.stats();
    let _ = resident_max;
    (s.admission_rejects, s.evictions, survivors)
}

proptest! {
    /// Property 1: the resident count never exceeds capacity, at any point
    /// during any workload (checked after every op inside `replay`).
    #[test]
    fn capacity_is_never_exceeded(
        cap in 1usize..64,
        ops in prop::collection::vec(op_strategy(), 0..256),
    ) {
        let cache = EstimateCache::new(small_cfg(cap, 0xCAFE));
        replay(&cache, &ops);
        prop_assert!(cache.len() <= cache.capacity());
    }

    /// Property 2: with a fixed sketch seed, the cache is a pure function
    /// of the op sequence — two replays agree on the resident set, the
    /// payload bits, the admission rejects, and the evictions.
    #[test]
    fn admission_is_deterministic_under_a_fixed_seed(
        seed in any::<u64>(),
        ops in prop::collection::vec(op_strategy(), 0..256),
    ) {
        let a = EstimateCache::new(small_cfg(16, seed));
        let b = EstimateCache::new(small_cfg(16, seed));
        let ra = replay(&a, &ops);
        let rb = replay(&b, &ops);
        prop_assert_eq!(ra, rb);
    }

    /// Property 3: exact TTL / staleness boundaries. For any bucket and
    /// any TTL pair, the transitions happen at exactly `ttl` and exactly
    /// `ttl * stale_grace`, never one microsecond early or late.
    #[test]
    fn staleness_boundaries_are_exact(
        bucket in 0u16..48,
        ttl_ms in 1u64..10_000,
        rush_ms in 1u64..10_000,
        bits in any::<u16>(),
    ) {
        let cfg = CacheConfig {
            capacity: 8,
            shards: 1,
            ttl_us: ttl_ms * 1_000,
            rush_ttl_us: rush_ms * 1_000,
            ..CacheConfig::default()
        };
        let ttl = cfg.ttl_for_bucket(bucket);
        let expiry = cfg.expiry_for_bucket(bucket);
        let cache = EstimateCache::new(cfg);
        let key = OdKey::new(1, 2, bucket);
        let t0 = 1_000u64;
        cache.insert_forced(key, payload(bits), t0);

        prop_assert!(matches!(
            cache.lookup(key, t0 + ttl),
            CacheLookup::Fresh { .. }
        ), "age == ttl must still be fresh");
        prop_assert!(matches!(
            cache.lookup(key, t0 + ttl + 1),
            CacheLookup::Stale { .. }
        ), "age == ttl + 1 must be stale");
        prop_assert!(matches!(
            cache.lookup(key, t0 + expiry),
            CacheLookup::Stale { .. }
        ), "age == grace bound must still be stale");
        prop_assert!(matches!(
            cache.lookup(key, t0 + expiry + 1),
            CacheLookup::Miss
        ), "age past the grace bound must miss (hard expiry)");
    }

    /// Property 4: lookups return the exact bits the fill inserted, for
    /// any finite payload — the cached rung serves the `estimate_batch`
    /// value verbatim.
    #[test]
    fn lookups_are_bit_identical_to_the_fill(
        raw in any::<u64>(),
        key in any::<u16>(),
    ) {
        let seconds = f64::from_bits(raw);
        let cache = EstimateCache::new(small_cfg(8, 7));
        let key = od_key(key);
        cache.insert_forced(key, seconds, 500);
        match cache.lookup(key, 600) {
            CacheLookup::Fresh { seconds: got, .. } => {
                prop_assert_eq!(got.to_bits(), seconds.to_bits());
            }
            CacheLookup::Miss => {
                // Non-finite payloads are refused by design; everything
                // finite must round-trip.
                prop_assert!(!seconds.is_finite(), "finite fill {seconds} vanished");
            }
            other => prop_assert!(false, "unexpected lookup result {other:?}"),
        }
    }
}
