//! Property-based tests for the degradation ladder (the robustness
//! invariants the frontend's deadline handling rests on):
//!
//! 1. **Monotonicity** — for any cost snapshot, breaker mask, and pair of
//!    deadlines, the shorter deadline never selects a *slower*
//!    (higher-fidelity, higher-index-cost) rung than the longer one.
//! 2. **Soundness** — the selected rung is always usable (or terminal),
//!    and fits the budget unless nothing does.
//! 3. **Fallback totality** — the haversine-prior fallback produces a
//!    finite, non-negative estimate for *any* query, including NaN and
//!    infinite coordinates.

use odt_core::fallback_estimate_seconds;
use odt_roadnet::LngLat;
use odt_serve::{select_from_costs, LadderConfig, LatencyLadder, Rung};
use odt_traj::OdtInput;
use proptest::prelude::*;

fn usable_fn(mask: u8) -> impl Fn(Rung) -> bool {
    move |r: Rung| r.is_terminal() || mask & (1 << r.index()) != 0
}

proptest! {
    /// A shorter deadline never selects a slower rung (pure selection).
    #[test]
    fn selection_is_monotone_in_the_deadline(
        costs in prop::array::uniform6(0u64..1_000_000),
        mask in 0u8..32,
        d_lo in 0u64..2_000_000,
        extra in 0u64..2_000_000,
    ) {
        let d_hi = d_lo.saturating_add(extra);
        let pick_lo = select_from_costs(&costs, d_lo, usable_fn(mask));
        let pick_hi = select_from_costs(&costs, d_hi, usable_fn(mask));
        // Lower index = higher fidelity; shrinking the budget may only
        // move the selection down the ladder (index up), never up.
        prop_assert!(
            pick_lo.index() >= pick_hi.index(),
            "deadline {d_lo} picked {pick_lo:?} but deadline {d_hi} picked {pick_hi:?} \
             (costs {costs:?}, mask {mask:#06b})"
        );
    }

    /// The selected rung is usable and within budget whenever possible.
    #[test]
    fn selection_is_sound(
        costs in prop::array::uniform6(0u64..1_000_000),
        mask in 0u8..32,
        deadline in 0u64..2_000_000,
    ) {
        let usable = usable_fn(mask);
        let pick = select_from_costs(&costs, deadline, &usable);
        prop_assert!(usable(pick) || pick.is_terminal());
        if !pick.is_terminal() {
            // A non-terminal pick always fits its budget...
            prop_assert!(costs[pick.index()] <= deadline);
            // ...and no usable higher-fidelity rung also fit.
            for r in Rung::ALL.iter().take(pick.index()) {
                prop_assert!(!(usable(*r) && costs[r.index()] <= deadline));
            }
        }
    }

    /// Monotonicity survives the live ladder (histogram p95s + priors),
    /// not just the pure function: feed arbitrary latency observations,
    /// then check a deadline pair.
    #[test]
    fn live_ladder_selection_is_monotone(
        obs in prop::collection::vec((0usize..6, 1u64..500_000), 0..64),
        mask in 0u8..32,
        d_lo in 0u64..1_000_000,
        extra in 0u64..1_000_000,
    ) {
        let ladder = LatencyLadder::new(LadderConfig::default());
        for (rung_idx, micros) in obs {
            ladder.observe(Rung::from_index(rung_idx), micros);
        }
        let d_hi = d_lo.saturating_add(extra);
        let pick_lo = ladder.select(d_lo, usable_fn(mask));
        let pick_hi = ladder.select(d_hi, usable_fn(mask));
        prop_assert!(pick_lo.index() >= pick_hi.index());
    }

    /// The zero/negative-budget boundary: when the remaining deadline
    /// budget is already exhausted at dequeue (a negative budget saturates
    /// to 0 upstream), selection must never panic and must go straight to
    /// a free rung or the terminal prior — it cannot pick a rung whose
    /// cost estimate is nonzero, for any cost snapshot or breaker mask.
    #[test]
    fn zero_budget_selection_is_total_and_free(
        costs in prop::array::uniform6(0u64..u64::MAX),
        mask in 0u8..32,
    ) {
        let usable = usable_fn(mask);
        let pick = select_from_costs(&costs, 0, &usable);
        prop_assert!(
            costs[pick.index()] == 0 || pick.is_terminal(),
            "budget 0 picked {pick:?} with cost {} (costs {costs:?}, mask {mask:#06b})",
            costs[pick.index()]
        );
        prop_assert!(usable(pick) || pick.is_terminal());
        // And the boundary is consistent with monotonicity: no positive
        // budget may pick a *higher*-index rung than budget 0 does.
        let pick_one = select_from_costs(&costs, 1, &usable);
        prop_assert!(pick.index() >= pick_one.index());
    }

    /// The live ladder at the same boundary: arbitrary observations, then
    /// a zero-budget selection — total, and only free-or-terminal.
    #[test]
    fn live_ladder_zero_budget_is_total(
        obs in prop::collection::vec((0usize..6, 0u64..500_000), 0..64),
        mask in 0u8..32,
    ) {
        let ladder = LatencyLadder::new(LadderConfig::default());
        for (rung_idx, micros) in obs {
            ladder.observe(Rung::from_index(rung_idx), micros);
        }
        let pick = ladder.select(0, usable_fn(mask));
        prop_assert!(ladder.cost_us(pick) == 0 || pick.is_terminal());
    }

    /// The terminal fallback answers every query with a finite,
    /// non-negative travel time — even for absurd or non-finite inputs.
    #[test]
    fn fallback_estimate_is_always_finite(
        olng in prop::num::f64::ANY,
        olat in prop::num::f64::ANY,
        dlng in prop::num::f64::ANY,
        dlat in prop::num::f64::ANY,
        t_dep in prop::num::f64::ANY,
    ) {
        let odt = OdtInput {
            origin: LngLat { lng: olng, lat: olat },
            dest: LngLat { lng: dlng, lat: dlat },
            t_dep,
        };
        let secs = fallback_estimate_seconds(&odt);
        prop_assert!(secs.is_finite() && secs >= 0.0, "fallback produced {secs}");
    }
}
