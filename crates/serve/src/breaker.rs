//! Per-rung circuit breakers: closed → open → half-open → closed.
//!
//! A rung that keeps failing (panics, NaN outputs, latency-budget
//! violations) should stop receiving traffic *before* it burns more
//! deadline budget — the ladder routes around an open breaker. After an
//! exponentially backed-off cool-down the breaker half-opens and lets a
//! few probe requests through; if they all succeed it closes (and the
//! backoff resets), if any fails it re-opens with a doubled cool-down.
//!
//! Time is caller-supplied microseconds on a monotonic clock, so the state
//! machine is fully deterministic under test.

use odt_obs::{event, Level};

/// Circuit-breaker tuning.
#[derive(Copy, Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker.
    pub failure_threshold: u32,
    /// Cool-down after the first trip, microseconds.
    pub base_backoff_us: u64,
    /// Cool-down ceiling, microseconds.
    pub max_backoff_us: u64,
    /// Consecutive half-open probe successes required to close.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            base_backoff_us: 50_000,
            max_backoff_us: 5_000_000,
            half_open_probes: 2,
        }
    }
}

/// The breaker's position in the closed/open/half-open state machine.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all traffic passes.
    Closed,
    /// Tripped: traffic is refused until the cool-down elapses.
    Open,
    /// Probing: a limited number of requests pass to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Short tag for reports.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// One circuit breaker (the frontend keeps one per model-backed rung).
pub struct CircuitBreaker {
    name: &'static str,
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probe_successes: u32,
    open_until_us: u64,
    backoff_exp: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker labeled `name` (used in events: the rung name).
    pub fn new(name: &'static str, cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            name,
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probe_successes: 0,
            open_until_us: 0,
            backoff_exp: 0,
            trips: 0,
        }
    }

    /// Current state (without advancing the open → half-open transition).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total trips (closed/half-open → open transitions).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether a request may pass at time `now_us`. An open breaker whose
    /// cool-down has elapsed transitions to half-open and admits the probe.
    pub fn allow(&mut self, now_us: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now_us >= self.open_until_us {
                    self.state = BreakerState::HalfOpen;
                    self.probe_successes = 0;
                    event(Level::Info, "serve.breaker.half_open")
                        .field("rung", self.name)
                        .emit();
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful request through this rung.
    pub fn record_success(&mut self, _now_us: u64) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.cfg.half_open_probes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.backoff_exp = 0;
                    event(Level::Info, "serve.breaker.close")
                        .field("rung", self.name)
                        .emit();
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Record a failed request (error, panic, NaN, or latency-budget
    /// violation) through this rung.
    pub fn record_failure(&mut self, now_us: u64) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.trip(now_us);
                }
            }
            // A failed probe re-opens immediately with increased backoff.
            BreakerState::HalfOpen => self.trip(now_us),
            BreakerState::Open => {}
        }
    }

    /// The cool-down the next trip would impose, microseconds.
    fn backoff_us(&self) -> u64 {
        self.cfg
            .base_backoff_us
            .saturating_mul(1u64 << self.backoff_exp.min(20))
            .min(self.cfg.max_backoff_us)
    }

    fn trip(&mut self, now_us: u64) {
        let backoff = self.backoff_us();
        self.state = BreakerState::Open;
        self.open_until_us = now_us.saturating_add(backoff);
        self.backoff_exp = (self.backoff_exp + 1).min(20);
        self.consecutive_failures = 0;
        self.probe_successes = 0;
        self.trips += 1;
        odt_obs::counter("serve.breaker.trips").inc();
        // A trip is an incident: keep the triggering request's trace past
        // head sampling (the event below inherits its trace_id) and freeze
        // the black box while the evidence is still in the ring buffer.
        odt_obs::trace::force_retain_current("breaker_open");
        event(Level::Warn, "serve.breaker.open")
            .field("rung", self.name)
            .field("backoff_us", backoff)
            .emit();
        let _ = odt_obs::flightrec::trigger("breaker_open");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            base_backoff_us: 100,
            max_backoff_us: 1_000,
            half_open_probes: 2,
        }
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = CircuitBreaker::new("test", cfg());
        b.record_failure(0);
        b.record_failure(1);
        b.record_success(2); // resets the streak
        b.record_failure(3);
        b.record_failure(4);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(5);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.allow(6));
    }

    #[test]
    fn half_open_probes_close_on_success() {
        let mut b = CircuitBreaker::new("test", cfg());
        for t in 0..3 {
            b.record_failure(t);
        }
        // Tripped at t=2, 100µs cool-down → closed to traffic until t=102.
        assert!(!b.allow(50));
        // Cool-down elapsed: half-open, probes admitted.
        assert!(b.allow(150));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success(151);
        assert_eq!(b.state(), BreakerState::HalfOpen, "needs 2 probes");
        b.record_success(152);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_with_doubled_backoff() {
        let mut b = CircuitBreaker::new("test", cfg());
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(b.allow(150)); // half-open (tripped at t=2, cool-down 100µs)
        b.record_failure(151); // probe fails → open, backoff now 200
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(!b.allow(350), "200µs backoff from t=151");
        assert!(b.allow(351));
    }

    #[test]
    fn backoff_is_capped() {
        let mut b = CircuitBreaker::new("test", cfg());
        // Trip repeatedly; backoff must never exceed max_backoff_us.
        let mut now = 0;
        for _ in 0..10 {
            for _ in 0..3 {
                b.record_failure(now);
            }
            now = now.saturating_add(2_000); // past any capped backoff
            assert!(b.allow(now), "cool-down capped at 1000µs");
            b.record_failure(now); // fail the probe → re-open
            now += 2_000;
        }
        assert!(b.trips() >= 10);
    }

    #[test]
    fn closing_resets_backoff() {
        let mut b = CircuitBreaker::new("test", cfg());
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(b.allow(150));
        b.record_success(151);
        b.record_success(152); // closed, backoff reset
        for t in 200..203 {
            b.record_failure(t);
        }
        // Tripped at t=202, back to the base 100µs cool-down (not doubled).
        assert!(!b.allow(250));
        assert!(b.allow(303));
    }
}
