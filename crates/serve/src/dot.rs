//! The production [`RungExecutor`]: ladder rungs mapped onto [`Dot`].
//!
//! | Rung                  | Oracle entry point                            |
//! |-----------------------|-----------------------------------------------|
//! | [`Rung::Cached`]      | The estimate cache (fresh entry) — no         |
//! |                       | diffusion, just a lookup stashed at probe     |
//! | [`Rung::Full`]        | `estimate_sampled(Ddpm)` — full stochastic    |
//! |                       | sampling (or `DdpmStrided(n)` if overridden)  |
//! | [`Rung::Ddim`]        | `estimate_sampled(Ddim(ddim_steps))`          |
//! | [`Rung::DdimReduced`] | `estimate_sampled(Ddim(reduced_steps))`       |
//! | [`Rung::CachedStale`] | The estimate cache (stale-grace entry)        |
//! | [`Rung::Fallback`]    | `estimate_prior` — the model-free haversine   |
//! |                       | prior, no diffusion at all                    |
//!
//! Admission uses [`Dot::sanitize_strict`] when `strict_admission` is on:
//! a query more than one grid-span outside the region is refused with a
//! typed reason (and counted in the oracle's `RobustnessStats`) instead
//! of being silently clamped to the boundary.
//!
//! **Caching.** With a cache attached ([`DotExecutor::with_cache`]), the
//! frontend's per-request probe performs the lookup and *stashes* the
//! found value; a later `execute` on a cache rung returns the stashed
//! value bit-identically (proptested) — the entry filled from
//! `estimate_batch` is exactly what the cached rung serves. Model-rung
//! answers are written through into the cache under TinyLFU admission, so
//! real traffic keeps the hot set warm; every probe also feeds the shared
//! [`HotTracker`] the background [`crate::cache::Prewarmer`] drains.

use std::sync::{Arc, Mutex};

use odt_core::{Dot, PitSampler};
use odt_traj::OdtInput;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{CacheLookup, EstimateCache, HotTracker, OdKey};
use crate::chaos::{ChaosConfig, ChaosExecutor};
use crate::frontend::{CacheProbe, FrontendConfig, RungExecutor, ServeFrontend};
use crate::ladder::Rung;

/// How the ladder rungs map onto the oracle.
#[derive(Copy, Clone, Debug)]
pub struct DotFrontendConfig {
    /// DDIM steps for the [`Rung::Ddim`] fast path.
    pub ddim_steps: usize,
    /// DDIM steps for the [`Rung::DdimReduced`] path (< `ddim_steps`).
    pub reduced_steps: usize,
    /// Optional strided-DDPM step count for [`Rung::Full`] (`None` = the
    /// model's full training schedule).
    pub full_steps_override: Option<usize>,
    /// Refuse far-out-of-region queries via [`Dot::sanitize_strict`]
    /// instead of clamping them.
    pub strict_admission: bool,
    /// Seed for the executor's sampling RNG.
    pub rng_seed: u64,
}

impl Default for DotFrontendConfig {
    fn default() -> Self {
        DotFrontendConfig {
            ddim_steps: 8,
            reduced_steps: 3,
            full_steps_override: None,
            strict_admission: true,
            rng_seed: 0x0d07,
        }
    }
}

/// The value a successful cache probe stashed for the rest of the request.
#[derive(Copy, Clone, Debug)]
struct StashedHit {
    seconds: f64,
    age_us: u64,
    fresh: bool,
}

/// The cache attachment: the cache itself plus the shared hot-key tracker
/// the prewarmer reads.
struct CacheWiring {
    cache: Arc<EstimateCache>,
    hot: Arc<Mutex<HotTracker<OdtInput>>>,
    stash: Option<StashedHit>,
    /// Epoch for the cache's µs clock (the owning frontend's `now_us` is
    /// not visible from inside the executor, so the executor keeps its
    /// own — both are arbitrary-origin monotonic clocks).
    epoch: std::time::Instant,
}

impl CacheWiring {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// [`RungExecutor`] over a trained (or loaded) [`Dot`] oracle.
pub struct DotExecutor<'a> {
    model: &'a Dot,
    cfg: DotFrontendConfig,
    rng: StdRng,
    cache: Option<CacheWiring>,
}

impl<'a> DotExecutor<'a> {
    /// An executor serving `model` with the given rung mapping (no cache:
    /// the cache rungs stay unusable, exactly the pre-cache ladder).
    pub fn new(model: &'a Dot, cfg: DotFrontendConfig) -> Self {
        DotExecutor {
            model,
            rng: StdRng::seed_from_u64(cfg.rng_seed),
            cfg,
            cache: None,
        }
    }

    /// Attach an estimate cache and the shared hot-key tracker, enabling
    /// the [`Rung::Cached`] / [`Rung::CachedStale`] rungs.
    pub fn with_cache(
        mut self,
        cache: Arc<EstimateCache>,
        hot: Arc<Mutex<HotTracker<OdtInput>>>,
    ) -> Self {
        self.cache = Some(CacheWiring {
            cache,
            hot,
            stash: None,
            epoch: std::time::Instant::now(),
        });
        self
    }

    /// The wrapped oracle.
    pub fn model(&self) -> &Dot {
        self.model
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<EstimateCache>> {
        self.cache.as_ref().map(|w| &w.cache)
    }

    /// The cache key for a query on this model's serving grid.
    pub fn cache_key(&self, query: &OdtInput) -> Option<OdKey> {
        let wiring = self.cache.as_ref()?;
        let grid = self.model.grid();
        let (orow, ocol) = grid.cell_of(query.origin);
        let (drow, dcol) = grid.cell_of(query.dest);
        Some(wiring.cache.key_for(
            grid.flat_index(orow, ocol) as u32,
            grid.flat_index(drow, dcol) as u32,
            query.second_of_day(),
        ))
    }
}

impl RungExecutor for DotExecutor<'_> {
    type Query = OdtInput;

    fn admit(&mut self, query: &OdtInput) -> Result<(), String> {
        if !self.cfg.strict_admission {
            return Ok(());
        }
        self.model
            .sanitize_strict(query)
            .map(|_| ())
            .map_err(|reason| reason.to_string())
    }

    fn supports(&self, rung: Rung) -> bool {
        !rung.is_cache() || self.cache.is_some()
    }

    fn probe(&mut self, query: &OdtInput) -> CacheProbe {
        let Some(key) = self.cache_key(query) else {
            return CacheProbe::Miss;
        };
        let wiring = self.cache.as_mut().expect("cache_key implies wiring");
        let now = wiring.now_us();
        wiring.hot.lock().unwrap().touch(key, query);
        match wiring.cache.lookup(key, now) {
            CacheLookup::Fresh { seconds, age_us } => {
                wiring.stash = Some(StashedHit {
                    seconds,
                    age_us,
                    fresh: true,
                });
                CacheProbe::Fresh
            }
            CacheLookup::Stale { seconds, age_us } => {
                wiring.stash = Some(StashedHit {
                    seconds,
                    age_us,
                    fresh: false,
                });
                CacheProbe::Stale
            }
            CacheLookup::Miss => {
                wiring.stash = None;
                CacheProbe::Miss
            }
        }
    }

    fn execute(&mut self, rung: Rung, query: &OdtInput) -> Result<f64, String> {
        if rung.is_cache() {
            let wiring = self
                .cache
                .as_mut()
                .ok_or_else(|| "cache rung without a cache".to_string())?;
            let hit = wiring
                .stash
                .ok_or_else(|| "cache rung without a stashed probe hit".to_string())?;
            if rung == Rung::Cached && !hit.fresh {
                return Err("stale entry offered to the fresh rung".to_string());
            }
            wiring.cache.note_served(hit.age_us, hit.fresh);
            return Ok(hit.seconds);
        }
        let est = match rung {
            Rung::Full => {
                let sampler = match self.cfg.full_steps_override {
                    Some(n) => PitSampler::DdpmStrided(n),
                    None => PitSampler::Ddpm,
                };
                self.model.estimate_sampled(query, sampler, &mut self.rng)
            }
            Rung::Ddim => self.model.estimate_sampled(
                query,
                PitSampler::Ddim(self.cfg.ddim_steps),
                &mut self.rng,
            ),
            Rung::DdimReduced => self.model.estimate_sampled(
                query,
                PitSampler::Ddim(self.cfg.reduced_steps),
                &mut self.rng,
            ),
            Rung::Fallback => self.model.estimate_prior(query),
            Rung::Cached | Rung::CachedStale => unreachable!("handled above"),
        };
        // Write model-backed answers through into the cache (TinyLFU
        // admission applies); the model-free prior is never cached — the
        // stale tier must stay strictly better than the fallback.
        if rung != Rung::Fallback && est.seconds.is_finite() {
            if let Some(key) = self.cache_key(query) {
                let wiring = self.cache.as_ref().expect("cache_key implies wiring");
                wiring.cache.insert(key, est.seconds, wiring.now_us());
            }
        }
        Ok(est.seconds)
    }
}

/// Convenience constructor: a complete deadline-aware frontend over `model`
/// with a chaos layer (pass [`ChaosConfig::quiet`] for production use — the
/// injector then never fires).
pub fn dot_frontend<'a>(
    model: &'a Dot,
    dot_cfg: DotFrontendConfig,
    frontend_cfg: FrontendConfig,
    chaos: ChaosConfig,
) -> ServeFrontend<ChaosExecutor<DotExecutor<'a>>> {
    let exec = ChaosExecutor::new(DotExecutor::new(model, dot_cfg), chaos);
    ServeFrontend::new(exec, frontend_cfg)
}

/// [`dot_frontend`] with an estimate cache attached: the cache rungs come
/// alive, probes feed `hot`, and model answers write through into `cache`.
pub fn dot_frontend_cached<'a>(
    model: &'a Dot,
    dot_cfg: DotFrontendConfig,
    frontend_cfg: FrontendConfig,
    chaos: ChaosConfig,
    cache: Arc<EstimateCache>,
    hot: Arc<Mutex<HotTracker<OdtInput>>>,
) -> ServeFrontend<ChaosExecutor<DotExecutor<'a>>> {
    let exec = ChaosExecutor::new(
        DotExecutor::new(model, dot_cfg).with_cache(cache, hot),
        chaos,
    );
    ServeFrontend::new(exec, frontend_cfg)
}
