//! The production [`RungExecutor`]: ladder rungs mapped onto [`Dot`].
//!
//! | Rung                  | Oracle entry point                            |
//! |-----------------------|-----------------------------------------------|
//! | [`Rung::Cached`]      | The estimate cache (fresh entry) — no         |
//! |                       | diffusion, just a lookup stashed at probe     |
//! | [`Rung::Full`]        | `estimate_sampled(Ddpm)` — full stochastic    |
//! |                       | sampling (or `DdpmStrided(n)` if overridden)  |
//! | [`Rung::Ddim`]        | `estimate_sampled(Ddim(ddim_steps))`          |
//! | [`Rung::DdimReduced`] | `estimate_sampled(Ddim(reduced_steps))`       |
//! | [`Rung::CachedStale`] | The estimate cache (stale-grace entry)        |
//! | [`Rung::Fallback`]    | `estimate_prior` — the model-free haversine   |
//! |                       | prior, no diffusion at all                    |
//!
//! Admission uses [`Dot::sanitize_strict`] when `strict_admission` is on:
//! a query more than one grid-span outside the region is refused with a
//! typed reason (and counted in the oracle's `RobustnessStats`) instead
//! of being silently clamped to the boundary.
//!
//! **Caching.** With a cache attached ([`DotExecutor::with_cache`]), the
//! frontend's per-request probe performs the lookup and *stashes* the
//! found value; a later `execute` on a cache rung returns the stashed
//! value bit-identically (proptested) — the entry filled from
//! `estimate_batch` is exactly what the cached rung serves. Model-rung
//! answers are written through into the cache under TinyLFU admission, so
//! real traffic keeps the hot set warm; every probe also feeds the shared
//! [`HotTracker`] the background [`crate::cache::Prewarmer`] drains.

use std::cell::Cell;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use odt_core::{Dot, ModelRegistry, PersistError, PitSampler, RegistryError};
use odt_traj::OdtInput;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{CacheLookup, EstimateCache, HotTracker, OdKey};
use crate::chaos::{ChaosConfig, ChaosExecutor};
use crate::frontend::{CacheProbe, FrontendConfig, RungExecutor, ServeFrontend};
use crate::ladder::Rung;
use crate::swap::{SwapError, SwapHost};

/// The hot-swappable model slot: which [`Dot`] the executor serves *right
/// now*, plus its registry version. Swapping is a single `Cell` store on
/// the dispatcher thread — an in-flight request keeps the reference it
/// already read; the next request sees the new model. Models are
/// intentionally leaked on install (`&'static Dot`): a process sees a
/// handful of swaps over its lifetime, and leaking sidesteps any
/// tear-down race with requests still holding the old reference.
pub struct ModelSlot {
    current: Cell<&'static Dot>,
    version: Cell<u64>,
    swaps: Cell<u64>,
}

impl ModelSlot {
    /// A slot serving `model` as registry version `version`.
    pub fn new(model: &'static Dot, version: u64) -> Rc<ModelSlot> {
        Rc::new(ModelSlot {
            current: Cell::new(model),
            version: Cell::new(version),
            swaps: Cell::new(0),
        })
    }

    /// [`ModelSlot::new`] over an owned model: leaks it to get the
    /// `'static` lifetime the slot needs.
    pub fn from_model(model: Dot, version: u64) -> Rc<ModelSlot> {
        ModelSlot::new(Box::leak(Box::new(model)), version)
    }

    /// The model currently being served.
    pub fn model(&self) -> &'static Dot {
        self.current.get()
    }

    /// Registry version of the serving model.
    pub fn version(&self) -> u64 {
        self.version.get()
    }

    /// How many times [`ModelSlot::install`] has replaced the model.
    pub fn swaps(&self) -> u64 {
        self.swaps.get()
    }

    /// Replace the serving model. Serving never pauses: requests racing
    /// the install get either the old or the new model, both valid.
    pub fn install(&self, model: &'static Dot, version: u64) {
        self.current.set(model);
        self.version.set(version);
        self.swaps.set(self.swaps.get() + 1);
        odt_obs::gauge("serve.model.version").set(version as f64);
    }
}

/// Where an executor's model comes from: a plain borrow (the pre-swap
/// API, still what tests and benches use) or a shared hot-swappable
/// [`ModelSlot`]. `From` impls keep every existing `&Dot` call site
/// compiling unchanged.
pub enum ModelSource<'a> {
    /// A fixed model borrowed for the executor's lifetime.
    Fixed(&'a Dot),
    /// The process-wide swappable slot.
    Slot(Rc<ModelSlot>),
}

impl<'a> ModelSource<'a> {
    /// The model to serve *this* call with. Deliberately borrows only
    /// the source (not the executor), so callers can hold it alongside
    /// `&mut` executor state.
    pub fn model(&self) -> &'a Dot {
        match self {
            ModelSource::Fixed(m) => m,
            ModelSource::Slot(slot) => slot.model(),
        }
    }
}

impl<'a> From<&'a Dot> for ModelSource<'a> {
    fn from(model: &'a Dot) -> Self {
        ModelSource::Fixed(model)
    }
}

impl<'a> From<Rc<ModelSlot>> for ModelSource<'a> {
    fn from(slot: Rc<ModelSlot>) -> Self {
        ModelSource::Slot(slot)
    }
}

/// How the ladder rungs map onto the oracle.
#[derive(Copy, Clone, Debug)]
pub struct DotFrontendConfig {
    /// DDIM steps for the [`Rung::Ddim`] fast path.
    pub ddim_steps: usize,
    /// DDIM steps for the [`Rung::DdimReduced`] path (< `ddim_steps`).
    pub reduced_steps: usize,
    /// Optional strided-DDPM step count for [`Rung::Full`] (`None` = the
    /// model's full training schedule).
    pub full_steps_override: Option<usize>,
    /// Refuse far-out-of-region queries via [`Dot::sanitize_strict`]
    /// instead of clamping them.
    pub strict_admission: bool,
    /// Seed for the executor's sampling RNG.
    pub rng_seed: u64,
}

impl Default for DotFrontendConfig {
    fn default() -> Self {
        DotFrontendConfig {
            ddim_steps: 8,
            reduced_steps: 3,
            full_steps_override: None,
            strict_admission: true,
            rng_seed: 0x0d07,
        }
    }
}

/// The value a successful cache probe stashed for the rest of the request.
#[derive(Copy, Clone, Debug)]
struct StashedHit {
    seconds: f64,
    age_us: u64,
    fresh: bool,
}

/// The cache attachment: the cache itself plus the shared hot-key tracker
/// the prewarmer reads.
struct CacheWiring {
    cache: Arc<EstimateCache>,
    hot: Arc<Mutex<HotTracker<OdtInput>>>,
    stash: Option<StashedHit>,
    /// Epoch for the cache's µs clock (the owning frontend's `now_us` is
    /// not visible from inside the executor, so the executor keeps its
    /// own — both are arbitrary-origin monotonic clocks).
    epoch: std::time::Instant,
}

impl CacheWiring {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// [`RungExecutor`] over a trained (or loaded) [`Dot`] oracle — either a
/// fixed borrow or a hot-swappable [`ModelSlot`].
pub struct DotExecutor<'a> {
    source: ModelSource<'a>,
    cfg: DotFrontendConfig,
    rng: StdRng,
    cache: Option<CacheWiring>,
}

impl<'a> DotExecutor<'a> {
    /// An executor serving `model` with the given rung mapping (no cache:
    /// the cache rungs stay unusable, exactly the pre-cache ladder).
    /// Accepts `&Dot` (fixed model) or `Rc<ModelSlot>` (hot-swappable).
    pub fn new(model: impl Into<ModelSource<'a>>, cfg: DotFrontendConfig) -> Self {
        DotExecutor {
            source: model.into(),
            rng: StdRng::seed_from_u64(cfg.rng_seed),
            cfg,
            cache: None,
        }
    }

    /// Attach an estimate cache and the shared hot-key tracker, enabling
    /// the [`Rung::Cached`] / [`Rung::CachedStale`] rungs.
    pub fn with_cache(
        mut self,
        cache: Arc<EstimateCache>,
        hot: Arc<Mutex<HotTracker<OdtInput>>>,
    ) -> Self {
        self.cache = Some(CacheWiring {
            cache,
            hot,
            stash: None,
            epoch: std::time::Instant::now(),
        });
        self
    }

    /// The oracle currently being served (re-read from the slot each
    /// call when the source is hot-swappable).
    pub fn model(&self) -> &'a Dot {
        self.source.model()
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<EstimateCache>> {
        self.cache.as_ref().map(|w| &w.cache)
    }

    /// The cache key for a query on this model's serving grid.
    pub fn cache_key(&self, query: &OdtInput) -> Option<OdKey> {
        let wiring = self.cache.as_ref()?;
        let grid = self.source.model().grid();
        let (orow, ocol) = grid.cell_of(query.origin);
        let (drow, dcol) = grid.cell_of(query.dest);
        Some(wiring.cache.key_for(
            grid.flat_index(orow, ocol) as u32,
            grid.flat_index(drow, dcol) as u32,
            query.second_of_day(),
        ))
    }
}

impl RungExecutor for DotExecutor<'_> {
    type Query = OdtInput;

    fn admit(&mut self, query: &OdtInput) -> Result<(), String> {
        if !self.cfg.strict_admission {
            return Ok(());
        }
        self.source
            .model()
            .sanitize_strict(query)
            .map(|_| ())
            .map_err(|reason| reason.to_string())
    }

    fn supports(&self, rung: Rung) -> bool {
        !rung.is_cache() || self.cache.is_some()
    }

    fn probe(&mut self, query: &OdtInput) -> CacheProbe {
        let Some(key) = self.cache_key(query) else {
            return CacheProbe::Miss;
        };
        let wiring = self.cache.as_mut().expect("cache_key implies wiring");
        let now = wiring.now_us();
        wiring.hot.lock().unwrap().touch(key, query);
        match wiring.cache.lookup(key, now) {
            CacheLookup::Fresh { seconds, age_us } => {
                wiring.stash = Some(StashedHit {
                    seconds,
                    age_us,
                    fresh: true,
                });
                CacheProbe::Fresh
            }
            CacheLookup::Stale { seconds, age_us } => {
                wiring.stash = Some(StashedHit {
                    seconds,
                    age_us,
                    fresh: false,
                });
                CacheProbe::Stale
            }
            CacheLookup::Miss => {
                wiring.stash = None;
                CacheProbe::Miss
            }
        }
    }

    fn execute(&mut self, rung: Rung, query: &OdtInput) -> Result<f64, String> {
        if rung.is_cache() {
            let wiring = self
                .cache
                .as_mut()
                .ok_or_else(|| "cache rung without a cache".to_string())?;
            let hit = wiring
                .stash
                .ok_or_else(|| "cache rung without a stashed probe hit".to_string())?;
            if rung == Rung::Cached && !hit.fresh {
                return Err("stale entry offered to the fresh rung".to_string());
            }
            wiring.cache.note_served(hit.age_us, hit.fresh);
            return Ok(hit.seconds);
        }
        // `ModelSource::model` hands back `&'a Dot`, untied to `self`,
        // so it can be held across the `&mut self.rng` borrows below.
        let model = self.source.model();
        let est = match rung {
            Rung::Full => {
                let sampler = match self.cfg.full_steps_override {
                    Some(n) => PitSampler::DdpmStrided(n),
                    None => PitSampler::Ddpm,
                };
                model.estimate_sampled(query, sampler, &mut self.rng)
            }
            Rung::Ddim => {
                model.estimate_sampled(query, PitSampler::Ddim(self.cfg.ddim_steps), &mut self.rng)
            }
            Rung::DdimReduced => model.estimate_sampled(
                query,
                PitSampler::Ddim(self.cfg.reduced_steps),
                &mut self.rng,
            ),
            Rung::Fallback => model.estimate_prior(query),
            Rung::Cached | Rung::CachedStale => unreachable!("handled above"),
        };
        // Write model-backed answers through into the cache (TinyLFU
        // admission applies); the model-free prior is never cached — the
        // stale tier must stay strictly better than the fallback.
        if rung != Rung::Fallback && est.seconds.is_finite() {
            if let Some(key) = self.cache_key(query) {
                let wiring = self.cache.as_ref().expect("cache_key implies wiring");
                wiring.cache.insert(key, est.seconds, wiring.now_us());
            }
        }
        Ok(est.seconds)
    }
}

/// Convenience constructor: a complete deadline-aware frontend over `model`
/// with a chaos layer (pass [`ChaosConfig::quiet`] for production use — the
/// injector then never fires).
pub fn dot_frontend<'a>(
    model: impl Into<ModelSource<'a>>,
    dot_cfg: DotFrontendConfig,
    frontend_cfg: FrontendConfig,
    chaos: ChaosConfig,
) -> ServeFrontend<ChaosExecutor<DotExecutor<'a>>> {
    let exec = ChaosExecutor::new(DotExecutor::new(model, dot_cfg), chaos);
    ServeFrontend::new(exec, frontend_cfg)
}

/// [`dot_frontend`] with an estimate cache attached: the cache rungs come
/// alive, probes feed `hot`, and model answers write through into `cache`.
pub fn dot_frontend_cached<'a>(
    model: impl Into<ModelSource<'a>>,
    dot_cfg: DotFrontendConfig,
    frontend_cfg: FrontendConfig,
    chaos: ChaosConfig,
    cache: Arc<EstimateCache>,
    hot: Arc<Mutex<HotTracker<OdtInput>>>,
) -> ServeFrontend<ChaosExecutor<DotExecutor<'a>>> {
    let exec = ChaosExecutor::new(
        DotExecutor::new(model, dot_cfg).with_cache(cache, hot),
        chaos,
    );
    ServeFrontend::new(exec, frontend_cfg)
}

/// Pacing and sampling for the DOT swap host's shadow phase.
#[derive(Clone, Copy, Debug)]
pub struct DotSwapHostConfig {
    /// Holdout pairs scored per shadow tick (candidate + serving each).
    pub batch: usize,
    /// DDIM steps used for shadow predictions — matches the serving
    /// ladder's fast path so the gate compares like with like.
    pub ddim_steps: usize,
    /// Seed for the shadow-sampling RNG.
    pub rng_seed: u64,
}

impl Default for DotSwapHostConfig {
    fn default() -> Self {
        DotSwapHostConfig {
            batch: 8,
            ddim_steps: 8,
            rng_seed: 0x5A4B,
        }
    }
}

/// A candidate checkpoint that has passed load + shape validation and
/// is being shadow-scored.
pub struct LoadedCandidate {
    model: Dot,
    path: PathBuf,
}

/// The production [`SwapHost`]: validates candidates against the
/// serving grid, shadow-scores them on a frozen ground-truth holdout,
/// and promotes through the [`ModelRegistry`] + [`ModelSlot`] +
/// estimate-cache invalidation.
pub struct DotSwapHost {
    registry: ModelRegistry,
    slot: Rc<ModelSlot>,
    holdout: Vec<(OdtInput, f64)>,
    cursor: usize,
    cache: Option<Arc<EstimateCache>>,
    cfg: DotSwapHostConfig,
    rng: StdRng,
}

impl DotSwapHost {
    /// A host promoting into `registry` and `slot`, shadow-scoring on
    /// `holdout` pairs of `(query, actual_seconds)`. Pass the serving
    /// estimate cache so promotion invalidates stale entries.
    pub fn new(
        registry: ModelRegistry,
        slot: Rc<ModelSlot>,
        holdout: Vec<(OdtInput, f64)>,
        cache: Option<Arc<EstimateCache>>,
        cfg: DotSwapHostConfig,
    ) -> Self {
        let holdout: Vec<_> = holdout
            .into_iter()
            .filter(|(_, actual)| actual.is_finite() && *actual > 0.0)
            .collect();
        DotSwapHost {
            registry,
            slot,
            holdout,
            cursor: 0,
            cache,
            rng: StdRng::seed_from_u64(cfg.rng_seed),
            cfg: DotSwapHostConfig {
                batch: cfg.batch.max(1),
                ..cfg
            },
        }
    }

    /// The slot this host promotes into.
    pub fn slot(&self) -> &Rc<ModelSlot> {
        &self.slot
    }

    /// The registry this host promotes through.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    fn map_registry_err(e: RegistryError) -> SwapError {
        match e {
            RegistryError::Persist(p) => Self::map_persist_err(p),
            other => SwapError::Load(other.to_string()),
        }
    }

    fn map_persist_err(e: PersistError) -> SwapError {
        match e {
            PersistError::Corrupt { .. }
            | PersistError::NonFiniteParams { .. }
            | PersistError::VersionMismatch { .. } => SwapError::Corrupt(e.to_string()),
            PersistError::ShapeMismatch { .. } => SwapError::ShapeMismatch(e.to_string()),
            other => SwapError::Load(other.to_string()),
        }
    }
}

impl SwapHost for DotSwapHost {
    type Model = LoadedCandidate;

    fn load(&mut self, path: &str) -> Result<LoadedCandidate, SwapError> {
        let path = Path::new(path);
        // Cheap framing gate first: a corrupt file never reaches model
        // construction.
        self.registry
            .validate_file(path)
            .map_err(Self::map_registry_err)?;
        let model = Dot::load(path).map_err(Self::map_persist_err)?;
        // The serving grid is the process's contract with its shard:
        // a candidate on a different grid would silently re-bucket
        // every query, so refuse it here.
        let serving = self.slot.model().grid();
        let cand = model.grid();
        let bbox_matches = (cand.min.lng - serving.min.lng).abs() < 1e-9
            && (cand.min.lat - serving.min.lat).abs() < 1e-9
            && (cand.max.lng - serving.max.lng).abs() < 1e-9
            && (cand.max.lat - serving.max.lat).abs() < 1e-9;
        if cand.lg != serving.lg || !bbox_matches {
            return Err(SwapError::ShapeMismatch(format!(
                "candidate grid lg={} bbox=({:.4},{:.4})-({:.4},{:.4}) \
                 vs serving lg={} bbox=({:.4},{:.4})-({:.4},{:.4})",
                cand.lg,
                cand.min.lng,
                cand.min.lat,
                cand.max.lng,
                cand.max.lat,
                serving.lg,
                serving.min.lng,
                serving.min.lat,
                serving.max.lng,
                serving.max.lat,
            )));
        }
        Ok(LoadedCandidate {
            model,
            path: path.to_path_buf(),
        })
    }

    fn shadow_batch(&mut self, candidate: &mut LoadedCandidate) -> (f64, f64, usize) {
        if self.holdout.is_empty() {
            return (0.0, 0.0, 0);
        }
        let n = self.cfg.batch.min(self.holdout.len());
        let sampler = PitSampler::Ddim(self.cfg.ddim_steps);
        let serving = self.slot.model();
        let (mut cand_sum, mut serving_sum) = (0.0, 0.0);
        for i in 0..n {
            let (q, actual) = &self.holdout[(self.cursor + i) % self.holdout.len()];
            let cand_pred = candidate.model.estimate_sampled(q, sampler, &mut self.rng);
            let serving_pred = serving.estimate_sampled(q, sampler, &mut self.rng);
            cand_sum += (cand_pred.seconds - actual).abs();
            serving_sum += (serving_pred.seconds - actual).abs();
        }
        self.cursor = (self.cursor + n) % self.holdout.len();
        (cand_sum, serving_sum, n)
    }

    fn promote(&mut self, candidate: LoadedCandidate) -> Result<u64, SwapError> {
        // Registry first: if the copy/rename fails, serving is untouched.
        let version = self
            .registry
            .promote_file(&candidate.path)
            .map_err(Self::map_registry_err)?;
        // Leak the candidate for the slot's `'static` contract — bounded
        // by the handful of successful swaps a process ever performs.
        self.slot
            .install(Box::leak(Box::new(candidate.model)), version);
        if let Some(cache) = &self.cache {
            // Cached estimates came from the old model; start clean.
            cache.invalidate_all("model_swap");
        }
        Ok(version)
    }
}
