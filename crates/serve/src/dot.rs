//! The production [`RungExecutor`]: ladder rungs mapped onto [`Dot`].
//!
//! | Rung                  | Oracle entry point                            |
//! |-----------------------|-----------------------------------------------|
//! | [`Rung::Full`]        | `estimate_sampled(Ddpm)` — full stochastic    |
//! |                       | sampling (or `DdpmStrided(n)` if overridden)  |
//! | [`Rung::Ddim`]        | `estimate_sampled(Ddim(ddim_steps))`          |
//! | [`Rung::DdimReduced`] | `estimate_sampled(Ddim(reduced_steps))`       |
//! | [`Rung::Fallback`]    | `estimate_prior` — the model-free haversine   |
//! |                       | prior, no diffusion at all                    |
//!
//! Admission uses [`Dot::sanitize_strict`] when `strict_admission` is on:
//! a query more than one grid-span outside the region is refused with a
//! typed reason (and counted in the oracle's `RobustnessStats`) instead
//! of being silently clamped to the boundary.

use odt_core::{Dot, PitSampler};
use odt_traj::OdtInput;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::chaos::{ChaosConfig, ChaosExecutor};
use crate::frontend::{FrontendConfig, RungExecutor, ServeFrontend};
use crate::ladder::Rung;

/// How the ladder rungs map onto the oracle.
#[derive(Copy, Clone, Debug)]
pub struct DotFrontendConfig {
    /// DDIM steps for the [`Rung::Ddim`] fast path.
    pub ddim_steps: usize,
    /// DDIM steps for the [`Rung::DdimReduced`] path (< `ddim_steps`).
    pub reduced_steps: usize,
    /// Optional strided-DDPM step count for [`Rung::Full`] (`None` = the
    /// model's full training schedule).
    pub full_steps_override: Option<usize>,
    /// Refuse far-out-of-region queries via [`Dot::sanitize_strict`]
    /// instead of clamping them.
    pub strict_admission: bool,
    /// Seed for the executor's sampling RNG.
    pub rng_seed: u64,
}

impl Default for DotFrontendConfig {
    fn default() -> Self {
        DotFrontendConfig {
            ddim_steps: 8,
            reduced_steps: 3,
            full_steps_override: None,
            strict_admission: true,
            rng_seed: 0x0d07,
        }
    }
}

/// [`RungExecutor`] over a trained (or loaded) [`Dot`] oracle.
pub struct DotExecutor<'a> {
    model: &'a Dot,
    cfg: DotFrontendConfig,
    rng: StdRng,
}

impl<'a> DotExecutor<'a> {
    /// An executor serving `model` with the given rung mapping.
    pub fn new(model: &'a Dot, cfg: DotFrontendConfig) -> Self {
        DotExecutor {
            model,
            rng: StdRng::seed_from_u64(cfg.rng_seed),
            cfg,
        }
    }

    /// The wrapped oracle.
    pub fn model(&self) -> &Dot {
        self.model
    }
}

impl RungExecutor for DotExecutor<'_> {
    type Query = OdtInput;

    fn admit(&mut self, query: &OdtInput) -> Result<(), String> {
        if !self.cfg.strict_admission {
            return Ok(());
        }
        self.model
            .sanitize_strict(query)
            .map(|_| ())
            .map_err(|reason| reason.to_string())
    }

    fn execute(&mut self, rung: Rung, query: &OdtInput) -> Result<f64, String> {
        let est = match rung {
            Rung::Full => {
                let sampler = match self.cfg.full_steps_override {
                    Some(n) => PitSampler::DdpmStrided(n),
                    None => PitSampler::Ddpm,
                };
                self.model.estimate_sampled(query, sampler, &mut self.rng)
            }
            Rung::Ddim => self.model.estimate_sampled(
                query,
                PitSampler::Ddim(self.cfg.ddim_steps),
                &mut self.rng,
            ),
            Rung::DdimReduced => self.model.estimate_sampled(
                query,
                PitSampler::Ddim(self.cfg.reduced_steps),
                &mut self.rng,
            ),
            Rung::Fallback => self.model.estimate_prior(query),
        };
        Ok(est.seconds)
    }
}

/// Convenience constructor: a complete deadline-aware frontend over `model`
/// with a chaos layer (pass [`ChaosConfig::quiet`] for production use — the
/// injector then never fires).
pub fn dot_frontend<'a>(
    model: &'a Dot,
    dot_cfg: DotFrontendConfig,
    frontend_cfg: FrontendConfig,
    chaos: ChaosConfig,
) -> ServeFrontend<ChaosExecutor<DotExecutor<'a>>> {
    let exec = ChaosExecutor::new(DotExecutor::new(model, dot_cfg), chaos);
    ServeFrontend::new(exec, frontend_cfg)
}
