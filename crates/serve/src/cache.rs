//! The hot-path OD estimate cache: TinyLFU-admitted, time-bucketed,
//! drift-invalidated.
//!
//! The oracle's query key is tiny and exact — `(origin cell, destination
//! cell, time-of-day bucket)` — and map-service demand is hotspot-skewed,
//! so a small bounded cache of inferred estimates serves the bulk of
//! traffic at microsecond latency while the diffusion path stays the
//! latency floor for the cold tail. Three properties keep the cache
//! honest:
//!
//! * **TinyLFU admission over segmented LRU** — a 4-bit counting-Bloom
//!   frequency sketch (hashes derived from the workspace SplitMix64,
//!   halved every sample period so history ages out) decides whether a
//!   candidate may displace the eviction victim. One-hit wonders never
//!   push hot entries out, which is exactly the failure mode plain LRU
//!   has under a scan. Eviction inside a shard is segmented LRU: new
//!   entries land in a probation segment and are promoted to the
//!   protected segment on re-reference.
//! * **Staleness-aware TTL per time bucket** — congestion profiles make
//!   estimates time-varying, so rush-hour buckets get a shorter TTL than
//!   off-peak ones. Past its TTL an entry is *stale* but not gone: up to
//!   `stale_grace × ttl` it may still answer on the slightly-stale ladder
//!   tier (better than the haversine prior), after which it expires.
//! * **Generation-stamped invalidation** — every entry records the cache
//!   generation at fill time; [`EstimateCache::invalidate_all`] bumps the
//!   generation so every older entry is discarded lazily at lookup. The
//!   [`DriftInvalidator`] wires this to the quality tracker's drift
//!   alert: a drifted model cannot keep serving poisoned entries, with
//!   zero pre-drift serves after the bump (drilled in `chaos_drill
//!   --scenario cache_drift_invalidation`).
//!
//! The cache is std-only and sharded (`Mutex` per shard, key-hash
//! partitioned) so the dispatcher thread and background prewarmer never
//! contend on one lock. All counters are mirrored into the process
//! metrics registry (`cache.*` families + the `cache.hit_age_us`
//! histogram — size the cache by where that histogram's mass sits
//! relative to the TTL).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use odt_obs::rng::splitmix64;
use odt_obs::{event, Level};

/// A packed cache key: `(o_cell << 40) | (d_cell << 16) | bucket`.
///
/// 24 bits per cell index and 16 bits for the time-of-day bucket — far
/// beyond any grid the oracle trains on (`lg²` cells, `lg ≤ 4096`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct OdKey(pub u64);

impl OdKey {
    /// Pack `(o_cell, d_cell, bucket)` into one key.
    pub fn new(o_cell: u32, d_cell: u32, bucket: u16) -> OdKey {
        OdKey(
            (u64::from(o_cell) & 0xFF_FFFF) << 40
                | (u64::from(d_cell) & 0xFF_FFFF) << 16
                | u64::from(bucket),
        )
    }

    /// The time-of-day bucket this key was built with.
    pub fn bucket(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }
}

/// Cache tuning.
#[derive(Copy, Clone, Debug)]
pub struct CacheConfig {
    /// Total entry capacity across all shards (≥ 1).
    pub capacity: usize,
    /// Shard count (rounded up to a power of two).
    pub shards: usize,
    /// Time-of-day buckets per day (48 = 30-minute buckets).
    pub buckets_per_day: u16,
    /// Off-peak TTL, µs on the caller's clock.
    pub ttl_us: u64,
    /// Rush-hour TTL (buckets covering 07–09 h and 17–19 h), µs.
    pub rush_ttl_us: u64,
    /// Stale-grace multiplier: past `ttl` but within `stale_grace × ttl`
    /// an entry may still serve on the slightly-stale tier.
    pub stale_grace: f64,
    /// Seed for the frequency sketch's hash functions.
    pub sketch_seed: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 4096,
            shards: 8,
            buckets_per_day: 48,
            ttl_us: 300_000_000,     // 5 min off-peak
            rush_ttl_us: 60_000_000, // 1 min in rush hour
            stale_grace: 3.0,
            sketch_seed: 0xCACE,
        }
    }
}

impl CacheConfig {
    /// The TTL for a key's time bucket: rush-hour buckets age faster.
    pub fn ttl_for_bucket(&self, bucket: u16) -> u64 {
        let hour = f64::from(bucket) * 24.0 / f64::from(self.buckets_per_day.max(1));
        if (7.0..9.0).contains(&hour) || (17.0..19.0).contains(&hour) {
            self.rush_ttl_us
        } else {
            self.ttl_us
        }
    }

    /// The hard expiry bound for a bucket (`stale_grace × ttl`).
    pub fn expiry_for_bucket(&self, bucket: u16) -> u64 {
        let ttl = self.ttl_for_bucket(bucket) as f64;
        (ttl * self.stale_grace.max(1.0)).min(u64::MAX as f64) as u64
    }
}

/// What a lookup found.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum CacheLookup {
    /// A live entry within its TTL.
    Fresh {
        /// The cached estimate, seconds.
        seconds: f64,
        /// Entry age at lookup, µs.
        age_us: u64,
    },
    /// An entry past its TTL but within the stale-grace window: may only
    /// answer on the slightly-stale ladder tier.
    Stale {
        /// The cached estimate, seconds.
        seconds: f64,
        /// Entry age at lookup, µs.
        age_us: u64,
    },
    /// No usable entry (absent, expired, or from an old generation).
    Miss,
}

/// 4-bit counting-Bloom frequency sketch with periodic halving — the
/// "TinyLFU" part of the admission policy. Four hash functions derived
/// from the workspace SplitMix64 mix; counters saturate at 15 and are
/// all halved once `sample_period` increments have been recorded, so the
/// sketch tracks *recent* popularity rather than all-time counts.
struct FreqSketch {
    /// Two 4-bit counters per byte.
    nibbles: Vec<u8>,
    /// Counter-index mask (`width - 1`, width a power of two).
    mask: u64,
    seeds: [u64; 4],
    ops: u64,
    sample_period: u64,
}

impl FreqSketch {
    fn new(min_counters: usize, seed: u64) -> FreqSketch {
        let width = min_counters.max(64).next_power_of_two();
        FreqSketch {
            nibbles: vec![0u8; width / 2],
            mask: width as u64 - 1,
            seeds: std::array::from_fn(|i| splitmix64(seed.wrapping_add(i as u64 + 1))),
            ops: 0,
            sample_period: (width as u64) * 8,
        }
    }

    fn counter_index(&self, key: u64, hash: usize) -> usize {
        (splitmix64(self.seeds[hash] ^ key) & self.mask) as usize
    }

    fn get(&self, idx: usize) -> u8 {
        let byte = self.nibbles[idx / 2];
        if idx % 2 == 0 {
            byte & 0x0F
        } else {
            byte >> 4
        }
    }

    fn bump(&mut self, idx: usize) {
        let cur = self.get(idx);
        if cur < 15 {
            let byte = &mut self.nibbles[idx / 2];
            if idx % 2 == 0 {
                *byte = (*byte & 0xF0) | (cur + 1);
            } else {
                *byte = (*byte & 0x0F) | ((cur + 1) << 4);
            }
        }
    }

    /// Record one access.
    fn increment(&mut self, key: u64) {
        for h in 0..4 {
            let idx = self.counter_index(key, h);
            self.bump(idx);
        }
        self.ops += 1;
        if self.ops >= self.sample_period {
            self.halve();
            self.ops = 0;
        }
    }

    /// Estimated access frequency: the count-min over the four counters.
    fn estimate(&self, key: u64) -> u8 {
        (0..4)
            .map(|h| self.get(self.counter_index(key, h)))
            .min()
            .unwrap_or(0)
    }

    /// Age the sketch: halve every counter (both nibbles at once).
    fn halve(&mut self) {
        for byte in &mut self.nibbles {
            *byte = (*byte >> 1) & 0x77;
        }
    }
}

const NIL: u32 = u32::MAX;

#[derive(Copy, Clone, PartialEq)]
enum Seg {
    Probation,
    Protected,
}

struct Entry {
    key: u64,
    seconds: f64,
    generation: u64,
    filled_at_us: u64,
    prev: u32,
    next: u32,
    seg: Seg,
}

/// One intrusive doubly-linked list over the shard's slot arena.
#[derive(Copy, Clone)]
struct DList {
    head: u32,
    tail: u32,
    len: usize,
}

impl DList {
    fn new() -> DList {
        DList {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    fn push_front(&mut self, slots: &mut [Entry], i: u32) {
        slots[i as usize].prev = NIL;
        slots[i as usize].next = self.head;
        if self.head != NIL {
            slots[self.head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
        self.len += 1;
    }

    fn unlink(&mut self, slots: &mut [Entry], i: u32) {
        let (prev, next) = (slots[i as usize].prev, slots[i as usize].next);
        if prev != NIL {
            slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.len -= 1;
    }
}

/// Why a shard dropped an entry (for the caller's stat accounting).
enum Dropped {
    Evicted,
    Expired,
    Invalidated,
}

/// One cache shard: slab-allocated segmented LRU plus its own frequency
/// sketch (keys are hash-partitioned onto shards, so a per-shard sketch
/// observes every access to its keys — and stays deterministic without
/// atomics).
struct Shard {
    map: HashMap<u64, u32>,
    slots: Vec<Entry>,
    free: Vec<u32>,
    probation: DList,
    protected: DList,
    cap: usize,
    protected_cap: usize,
    sketch: FreqSketch,
}

enum InsertOutcome {
    Stored,
    Rejected,
}

impl Shard {
    fn new(cap: usize, sketch_seed: u64) -> Shard {
        let cap = cap.max(1);
        Shard {
            map: HashMap::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            probation: DList::new(),
            protected: DList::new(),
            cap,
            // Classic SLRU split: ~80% protected, at least one probation
            // slot so admission always has a victim to compare against.
            protected_cap: (cap * 4 / 5).min(cap.saturating_sub(1)),
            sketch: FreqSketch::new(cap * 4, sketch_seed),
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn list_mut(&mut self, seg: Seg) -> &mut DList {
        match seg {
            Seg::Probation => &mut self.probation,
            Seg::Protected => &mut self.protected,
        }
    }

    fn remove_slot(&mut self, slot: u32) {
        let seg = self.slots[slot as usize].seg;
        let key = self.slots[slot as usize].key;
        match seg {
            Seg::Probation => self.probation.unlink(&mut self.slots, slot),
            Seg::Protected => self.protected.unlink(&mut self.slots, slot),
        }
        self.map.remove(&key);
        self.free.push(slot);
    }

    /// Move a touched entry toward the protected head, demoting the
    /// protected tail into probation if the protected segment overflows.
    fn promote(&mut self, slot: u32) {
        let seg = self.slots[slot as usize].seg;
        match seg {
            Seg::Probation => {
                self.probation.unlink(&mut self.slots, slot);
                self.slots[slot as usize].seg = Seg::Protected;
                self.protected.push_front(&mut self.slots, slot);
                if self.protected.len > self.protected_cap.max(1) {
                    let demote = self.protected.tail;
                    if demote != NIL && demote != slot {
                        self.protected.unlink(&mut self.slots, demote);
                        self.slots[demote as usize].seg = Seg::Probation;
                        self.probation.push_front(&mut self.slots, demote);
                    }
                }
            }
            Seg::Protected => {
                self.protected.unlink(&mut self.slots, slot);
                self.protected.push_front(&mut self.slots, slot);
            }
        }
    }

    /// Look `key` up, dropping dead entries on the way. Does *not* count
    /// hits — the caller does, and only when the cache actually serves.
    fn get(
        &mut self,
        key: u64,
        now_us: u64,
        generation: u64,
        ttl_us: u64,
        expiry_us: u64,
        count_access: bool,
    ) -> (CacheLookup, Option<Dropped>) {
        if count_access {
            self.sketch.increment(key);
        }
        let Some(&slot) = self.map.get(&key) else {
            return (CacheLookup::Miss, None);
        };
        let e = &self.slots[slot as usize];
        if e.generation != generation {
            self.remove_slot(slot);
            return (CacheLookup::Miss, Some(Dropped::Invalidated));
        }
        let age_us = now_us.saturating_sub(e.filled_at_us);
        if age_us > expiry_us {
            self.remove_slot(slot);
            return (CacheLookup::Miss, Some(Dropped::Expired));
        }
        let seconds = e.seconds;
        if count_access {
            self.promote(slot);
        }
        if age_us <= ttl_us {
            (CacheLookup::Fresh { seconds, age_us }, None)
        } else {
            (CacheLookup::Stale { seconds, age_us }, None)
        }
    }

    /// Insert (or refresh) `key`. With `force` off, a full shard admits
    /// the candidate only if the sketch estimates it more popular than
    /// the eviction victim — the TinyLFU gate.
    fn insert(
        &mut self,
        key: u64,
        seconds: f64,
        now_us: u64,
        generation: u64,
        force: bool,
    ) -> (InsertOutcome, Option<Dropped>) {
        self.sketch.increment(key);
        if let Some(&slot) = self.map.get(&key) {
            let e = &mut self.slots[slot as usize];
            e.seconds = seconds;
            e.filled_at_us = now_us;
            e.generation = generation;
            return (InsertOutcome::Stored, None);
        }
        let mut dropped = None;
        if self.len() >= self.cap {
            // Victim: the probation tail; if probation is empty, the
            // protected tail (capacity-1 shards).
            let victim = if self.probation.tail != NIL {
                self.probation.tail
            } else {
                self.protected.tail
            };
            let victim_key = self.slots[victim as usize].key;
            if !force && self.sketch.estimate(key) <= self.sketch.estimate(victim_key) {
                return (InsertOutcome::Rejected, None);
            }
            self.remove_slot(victim);
            dropped = Some(Dropped::Evicted);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Entry {
                    key,
                    seconds,
                    generation,
                    filled_at_us: now_us,
                    prev: NIL,
                    next: NIL,
                    seg: Seg::Probation,
                };
                s
            }
            None => {
                self.slots.push(Entry {
                    key,
                    seconds,
                    generation,
                    filled_at_us: now_us,
                    prev: NIL,
                    next: NIL,
                    seg: Seg::Probation,
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.map.insert(key, slot);
        self.probation.push_front(&mut self.slots, slot);
        (InsertOutcome::Stored, dropped)
    }
}

/// Point-in-time cache counters for reports and `/varz`.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Fresh entries actually served.
    pub hits: u64,
    /// Stale-tier entries actually served.
    pub stale_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries displaced by capacity pressure or hard expiry.
    pub evictions: u64,
    /// Candidates the TinyLFU gate refused to admit.
    pub admission_rejects: u64,
    /// Prewarm batches inferred into the cache.
    pub prewarm_batches: u64,
    /// `invalidate_all` calls (generation bumps).
    pub invalidations: u64,
    /// Lazily-discarded entries from pre-bump generations.
    pub invalidated_entries: u64,
    /// Live entries right now.
    pub len: u64,
    /// Configured capacity.
    pub capacity: u64,
    /// Current generation stamp.
    pub generation: u64,
}

impl CacheStats {
    /// `hits / (hits + stale_hits + misses)`, 0 when nothing looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.stale_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The sharded, bounded, TinyLFU-admitted estimate cache. See the module
/// docs for the policy walk-through.
pub struct EstimateCache {
    cfg: CacheConfig,
    shards: Vec<Mutex<Shard>>,
    shard_mask: u64,
    generation: AtomicU64,
    hits: AtomicU64,
    stale_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    admission_rejects: AtomicU64,
    prewarm_batches: AtomicU64,
    invalidations: AtomicU64,
    invalidated_entries: AtomicU64,
}

impl EstimateCache {
    /// A cache with `cfg.capacity` total entries spread over the shards.
    pub fn new(cfg: CacheConfig) -> EstimateCache {
        let shards = cfg.shards.max(1).next_power_of_two();
        let per_shard = cfg.capacity.max(1).div_ceil(shards);
        let shard_vec = (0..shards)
            .map(|i| {
                Mutex::new(Shard::new(
                    per_shard,
                    splitmix64(cfg.sketch_seed ^ (i as u64).wrapping_mul(0x9E37)),
                ))
            })
            .collect();
        // Touch the metric families once at construction so they exist in
        // the registry (and the exposition) before any traffic arrives.
        for name in [
            "cache.hits",
            "cache.misses",
            "cache.stale_hits",
            "cache.evictions",
            "cache.admission_rejects",
            "cache.prewarm_batches",
            "cache.invalidations",
        ] {
            let _ = odt_obs::counter(name);
        }
        let _ = odt_obs::histogram("cache.hit_age_us");
        EstimateCache {
            shards: shard_vec,
            shard_mask: shards as u64 - 1,
            generation: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            stale_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            admission_rejects: AtomicU64::new(0),
            prewarm_batches: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            invalidated_entries: AtomicU64::new(0),
            cfg,
        }
    }

    /// The configured tuning.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Pack a key: cells from the serving grid, the bucket from the
    /// departure's second-of-day.
    pub fn key_for(&self, o_cell: u32, d_cell: u32, second_of_day: f64) -> OdKey {
        let buckets = f64::from(self.cfg.buckets_per_day.max(1));
        let frac = (second_of_day.rem_euclid(86_400.0)) / 86_400.0;
        let bucket = ((frac * buckets) as u16).min(self.cfg.buckets_per_day.max(1) - 1);
        OdKey::new(o_cell, d_cell, bucket)
    }

    fn shard_of(&self, key: OdKey) -> &Mutex<Shard> {
        &self.shards[(splitmix64(key.0) & self.shard_mask) as usize]
    }

    fn record_drop(&self, d: Dropped) {
        match d {
            Dropped::Evicted | Dropped::Expired => {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                odt_obs::counter("cache.evictions").inc();
            }
            Dropped::Invalidated => {
                self.invalidated_entries.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Look `key` up and count the access (sketch + recency + a miss if
    /// nothing usable was found). Hits are *not* counted here — call
    /// [`EstimateCache::note_served`] when the looked-up value actually
    /// answers a request, so hit counters measure serves, not probes.
    pub fn lookup(&self, key: OdKey, now_us: u64) -> CacheLookup {
        let gen = self.generation.load(Ordering::Acquire);
        let ttl = self.cfg.ttl_for_bucket(key.bucket());
        let expiry = self.cfg.expiry_for_bucket(key.bucket());
        let (found, dropped) = self
            .shard_of(key)
            .lock()
            .unwrap()
            .get(key.0, now_us, gen, ttl, expiry, true);
        if let Some(d) = dropped {
            self.record_drop(d);
        }
        if found == CacheLookup::Miss {
            self.misses.fetch_add(1, Ordering::Relaxed);
            odt_obs::counter("cache.misses").inc();
        }
        found
    }

    /// A stat-free, order-free freshness check (used by the prewarmer to
    /// pick targets without polluting the sketch or the hit counters).
    pub fn peek_fresh(&self, key: OdKey, now_us: u64) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        let ttl = self.cfg.ttl_for_bucket(key.bucket());
        let expiry = self.cfg.expiry_for_bucket(key.bucket());
        let (found, dropped) = self
            .shard_of(key)
            .lock()
            .unwrap()
            .get(key.0, now_us, gen, ttl, expiry, false);
        if let Some(d) = dropped {
            self.record_drop(d);
        }
        matches!(found, CacheLookup::Fresh { .. })
    }

    /// Count one served answer that came from this cache (`fresh` =
    /// within TTL, otherwise the stale tier) and record its age.
    pub fn note_served(&self, age_us: u64, fresh: bool) {
        if fresh {
            self.hits.fetch_add(1, Ordering::Relaxed);
            odt_obs::counter("cache.hits").inc();
        } else {
            self.stale_hits.fetch_add(1, Ordering::Relaxed);
            odt_obs::counter("cache.stale_hits").inc();
        }
        odt_obs::histogram("cache.hit_age_us").record_micros(age_us);
    }

    /// Offer `(key, seconds)` through the TinyLFU admission gate. Returns
    /// whether the value was stored (refreshing an existing entry always
    /// stores).
    pub fn insert(&self, key: OdKey, seconds: f64, now_us: u64) -> bool {
        self.insert_inner(key, seconds, now_us, false)
    }

    /// Insert bypassing admission — the prewarmer's path: it has already
    /// paid for the inference, so the value always lands.
    pub fn insert_forced(&self, key: OdKey, seconds: f64, now_us: u64) {
        self.insert_inner(key, seconds, now_us, true);
    }

    fn insert_inner(&self, key: OdKey, seconds: f64, now_us: u64, force: bool) -> bool {
        if !seconds.is_finite() {
            return false;
        }
        let gen = self.generation.load(Ordering::Acquire);
        let (outcome, dropped) = self
            .shard_of(key)
            .lock()
            .unwrap()
            .insert(key.0, seconds, now_us, gen, force);
        if let Some(d) = dropped {
            self.record_drop(d);
        }
        match outcome {
            InsertOutcome::Stored => true,
            InsertOutcome::Rejected => {
                self.admission_rejects.fetch_add(1, Ordering::Relaxed);
                odt_obs::counter("cache.admission_rejects").inc();
                false
            }
        }
    }

    /// Bump the generation: every entry filled before this call is dead
    /// (discarded lazily at its next lookup). `reason` lands in the event
    /// stream.
    pub fn invalidate_all(&self, reason: &str) {
        let gen = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        odt_obs::counter("cache.invalidations").inc();
        event(Level::Warn, "cache.invalidate_all")
            .field("reason", reason)
            .field("generation", gen)
            .emit();
    }

    /// The current generation stamp.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total configured capacity (per-shard rounding may admit slightly
    /// more than `cfg.capacity`; never less).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.shards[0].lock().unwrap().cap
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            stale_hits: self.stale_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            admission_rejects: self.admission_rejects.load(Ordering::Relaxed),
            prewarm_batches: self.prewarm_batches.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            invalidated_entries: self.invalidated_entries.load(Ordering::Relaxed),
            len: self.len() as u64,
            capacity: self.capacity() as u64,
            generation: self.generation(),
        }
    }
}

/// Bounded Space-Saving top-K tracker over cache keys, keeping one
/// representative query per key so the prewarmer can re-infer it.
pub struct HotTracker<Q> {
    cap: usize,
    entries: HashMap<u64, (u64, Q)>,
}

impl<Q: Clone> HotTracker<Q> {
    /// A tracker holding at most `cap` keys.
    pub fn new(cap: usize) -> HotTracker<Q> {
        HotTracker {
            cap: cap.max(1),
            entries: HashMap::new(),
        }
    }

    /// Record one access to `key` (Space-Saving: when full, the minimum
    /// counter is displaced and the newcomer inherits its count + 1, so
    /// a genuinely hot key can never be starved out by churn).
    pub fn touch(&mut self, key: OdKey, query: &Q) {
        if let Some((count, q)) = self.entries.get_mut(&key.0) {
            *count += 1;
            *q = query.clone();
            return;
        }
        if self.entries.len() < self.cap {
            self.entries.insert(key.0, (1, query.clone()));
            return;
        }
        let (&min_key, &(min_count, _)) = self
            .entries
            .iter()
            .min_by_key(|(k, (c, _))| (*c, **k))
            .expect("tracker is non-empty at capacity");
        self.entries.remove(&min_key);
        self.entries.insert(key.0, (min_count + 1, query.clone()));
    }

    /// The top `k` keys by estimated count, hottest first (ties broken by
    /// key for determinism).
    pub fn top(&self, k: usize) -> Vec<(OdKey, Q)> {
        let mut all: Vec<_> = self
            .entries
            .iter()
            .map(|(key, (count, q))| (*count, *key, q.clone()))
            .collect();
        all.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        all.into_iter()
            .take(k)
            .map(|(_, key, q)| (OdKey(key), q))
            .collect()
    }

    /// Tracked key count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been tracked yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Prewarmer tuning.
#[derive(Copy, Clone, Debug)]
pub struct PrewarmConfig {
    /// Hot keys to consider per batch.
    pub top_k: usize,
    /// Minimum µs between batches (idle ticks fire far more often than
    /// prewarming should run).
    pub min_interval_us: u64,
}

impl Default for PrewarmConfig {
    fn default() -> Self {
        PrewarmConfig {
            top_k: 32,
            min_interval_us: 250_000,
        }
    }
}

/// Background prewarmer: on each eligible idle tick, batch-infers the
/// hottest not-currently-fresh OD keys through the caller's `infer`
/// closure (`estimate_batch` in production) and force-inserts the
/// results. Runs beside the shadow scorer on the dispatcher idle tick.
pub struct Prewarmer<Q> {
    cfg: PrewarmConfig,
    cache: Arc<EstimateCache>,
    hot: Arc<Mutex<HotTracker<Q>>>,
    last_run_us: Option<u64>,
}

impl<Q: Clone> Prewarmer<Q> {
    /// A prewarmer over `cache`, fed by the shared `hot` tracker.
    pub fn new(
        cfg: PrewarmConfig,
        cache: Arc<EstimateCache>,
        hot: Arc<Mutex<HotTracker<Q>>>,
    ) -> Prewarmer<Q> {
        Prewarmer {
            cfg,
            cache,
            hot,
            last_run_us: None,
        }
    }

    /// Run one prewarm batch if the throttle allows and any hot key needs
    /// warming. Returns the number of entries inferred and inserted.
    pub fn step(&mut self, now_us: u64, infer: impl FnOnce(&[Q]) -> Vec<f64>) -> usize {
        if let Some(last) = self.last_run_us {
            if now_us.saturating_sub(last) < self.cfg.min_interval_us {
                return 0;
            }
        }
        let candidates: Vec<(OdKey, Q)> = {
            let hot = self.hot.lock().unwrap();
            hot.top(self.cfg.top_k)
                .into_iter()
                .filter(|(key, _)| !self.cache.peek_fresh(*key, now_us))
                .collect()
        };
        self.last_run_us = Some(now_us);
        if candidates.is_empty() {
            return 0;
        }
        let queries: Vec<Q> = candidates.iter().map(|(_, q)| q.clone()).collect();
        let values = infer(&queries);
        let mut stored = 0usize;
        for ((key, _), seconds) in candidates.iter().zip(values) {
            if seconds.is_finite() {
                self.cache.insert_forced(*key, seconds, now_us);
                stored += 1;
            }
        }
        if stored > 0 {
            self.cache.prewarm_batches.fetch_add(1, Ordering::Relaxed);
            odt_obs::counter("cache.prewarm_batches").inc();
            event(Level::Info, "cache.prewarm")
                .field("entries", stored as u64)
                .emit();
        }
        stored
    }
}

/// Edge-triggered bridge from the quality tracker's drift alert to cache
/// invalidation: each *new* drift alert (the `drift_alerts` counter in a
/// [`odt_obs::quality::QualitySnapshot`] advancing) flushes the cache by
/// generation bump, so no pre-drift estimate can be served again.
#[derive(Default)]
pub struct DriftInvalidator {
    seen_alerts: u64,
}

impl DriftInvalidator {
    /// A fresh invalidator (no alerts seen).
    pub fn new() -> DriftInvalidator {
        DriftInvalidator::default()
    }

    /// Compare the latest quality snapshot against the alerts already
    /// handled; invalidate on any new alert. Returns whether a flush
    /// happened.
    pub fn observe(
        &mut self,
        quality: &odt_obs::quality::QualitySnapshot,
        cache: &EstimateCache,
    ) -> bool {
        if quality.drift_alerts > self.seen_alerts {
            self.seen_alerts = quality.drift_alerts;
            cache.invalidate_all("drift_alert");
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(capacity: usize) -> CacheConfig {
        CacheConfig {
            capacity,
            shards: 1,
            ttl_us: 1_000,
            rush_ttl_us: 500,
            stale_grace: 3.0,
            ..CacheConfig::default()
        }
    }

    #[test]
    fn key_packing_round_trips_the_bucket() {
        let k = OdKey::new(0xABCDE, 0x12345, 47);
        assert_eq!(k.bucket(), 47);
        assert_ne!(OdKey::new(1, 2, 3), OdKey::new(2, 1, 3));
        assert_ne!(OdKey::new(1, 2, 3), OdKey::new(1, 2, 4));
    }

    #[test]
    fn bucketing_maps_second_of_day_and_rush_hours() {
        let cache = EstimateCache::new(CacheConfig::default());
        let k_night = cache.key_for(1, 2, 3.0 * 3600.0);
        let k_rush = cache.key_for(1, 2, 8.0 * 3600.0);
        assert_ne!(k_night.bucket(), k_rush.bucket());
        let cfg = cache.config();
        assert_eq!(cfg.ttl_for_bucket(k_night.bucket()), cfg.ttl_us);
        assert_eq!(cfg.ttl_for_bucket(k_rush.bucket()), cfg.rush_ttl_us);
        // Wrap-around: unix-epoch-scale departures map by second-of-day.
        let k_wrapped = cache.key_for(1, 2, 86_400.0 * 100.0 + 3.0 * 3600.0);
        assert_eq!(k_wrapped.bucket(), k_night.bucket());
    }

    #[test]
    fn fresh_stale_expired_boundaries_are_exact() {
        let cache = EstimateCache::new(small_cfg(16));
        let k = OdKey::new(1, 2, 0); // off-peak bucket: ttl 1000, expiry 3000
        cache.insert_forced(k, 42.0, 1_000);
        // age == ttl: still fresh.
        assert!(matches!(
            cache.lookup(k, 2_000),
            CacheLookup::Fresh { seconds, age_us } if seconds == 42.0 && age_us == 1_000
        ));
        // age == ttl + 1: stale tier.
        assert!(matches!(
            cache.lookup(k, 2_001),
            CacheLookup::Stale { seconds, .. } if seconds == 42.0
        ));
        // age == grace bound: still stale.
        assert!(matches!(cache.lookup(k, 4_000), CacheLookup::Stale { .. }));
        // One µs past the grace bound: gone.
        assert_eq!(cache.lookup(k, 4_001), CacheLookup::Miss);
        assert_eq!(cache.len(), 0);
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 1, "hard expiry counts as an eviction");
    }

    #[test]
    fn capacity_is_never_exceeded_and_eviction_counts() {
        let cache = EstimateCache::new(small_cfg(4));
        for i in 0..64u32 {
            cache.insert_forced(OdKey::new(i, i, 0), f64::from(i), 10);
            assert!(cache.len() <= cache.capacity());
        }
        assert!(cache.stats().evictions >= 60);
    }

    #[test]
    fn tinylfu_prefers_the_frequent_key_over_a_scan() {
        let cache = EstimateCache::new(small_cfg(4));
        let hot = OdKey::new(999, 999, 0);
        cache.insert(hot, 1.0, 0);
        // Make `hot` popular in the sketch.
        for _ in 0..10 {
            let _ = cache.lookup(hot, 1);
        }
        // A scan of cold keys: each is seen once; the gate must not let
        // them displace entries ahead of `hot` faster than `hot`'s own
        // sketch weight protects it once it becomes the victim.
        for i in 0..32u32 {
            cache.insert(OdKey::new(i, i, 0), 2.0, 2);
        }
        assert!(
            matches!(cache.lookup(hot, 3), CacheLookup::Fresh { .. }),
            "hot key survived the scan"
        );
        assert!(cache.stats().admission_rejects > 0);
    }

    #[test]
    fn admission_is_deterministic_under_a_fixed_seed() {
        let run = || {
            let cache = EstimateCache::new(small_cfg(8));
            let mut decisions = Vec::new();
            for i in 0..200u32 {
                let key = OdKey::new(i % 23, (i * 7) % 23, 0);
                decisions.push(cache.insert(key, f64::from(i), u64::from(i)));
                let _ = cache.lookup(OdKey::new(i % 5, (i * 3) % 5, 0), u64::from(i));
            }
            (decisions, cache.stats())
        };
        let (d1, s1) = run();
        let (d2, s2) = run();
        assert_eq!(d1, d2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn generation_bump_kills_older_entries_lazily() {
        let cache = EstimateCache::new(small_cfg(16));
        let k_old = OdKey::new(1, 1, 0);
        let k_new = OdKey::new(2, 2, 0);
        cache.insert_forced(k_old, 10.0, 0);
        cache.invalidate_all("test");
        assert_eq!(cache.generation(), 1);
        cache.insert_forced(k_new, 20.0, 0);
        assert_eq!(cache.lookup(k_old, 1), CacheLookup::Miss);
        assert!(matches!(
            cache.lookup(k_new, 1),
            CacheLookup::Fresh { seconds, .. } if seconds == 20.0
        ));
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.invalidated_entries, 1);
    }

    #[test]
    fn note_served_splits_fresh_and_stale_hits() {
        let cache = EstimateCache::new(small_cfg(4));
        cache.note_served(10, true);
        cache.note_served(20, true);
        cache.note_served(2_000, false);
        let s = cache.stats();
        assert_eq!((s.hits, s.stale_hits), (2, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hot_tracker_keeps_the_heavy_hitters() {
        let mut hot: HotTracker<&'static str> = HotTracker::new(4);
        for _ in 0..50 {
            hot.touch(OdKey::new(1, 1, 0), &"a");
            hot.touch(OdKey::new(2, 2, 0), &"b");
        }
        for i in 10..40u32 {
            hot.touch(OdKey::new(i, i, 0), &"churn");
        }
        let top = hot.top(2);
        let keys: Vec<OdKey> = top.iter().map(|(k, _)| *k).collect();
        assert!(keys.contains(&OdKey::new(1, 1, 0)));
        assert!(keys.contains(&OdKey::new(2, 2, 0)));
        assert!(hot.len() <= 4);
    }

    #[test]
    fn prewarmer_fills_hot_missing_keys_and_throttles() {
        let cache = Arc::new(EstimateCache::new(small_cfg(16)));
        let hot = Arc::new(Mutex::new(HotTracker::new(8)));
        for _ in 0..5 {
            hot.lock().unwrap().touch(OdKey::new(7, 8, 0), &"q1");
        }
        hot.lock().unwrap().touch(OdKey::new(9, 9, 0), &"q2");
        let mut pw = Prewarmer::new(
            PrewarmConfig {
                top_k: 8,
                min_interval_us: 1_000,
            },
            Arc::clone(&cache),
            Arc::clone(&hot),
        );
        let n = pw.step(10, |qs| qs.iter().map(|_| 123.0).collect());
        assert_eq!(n, 2);
        assert!(matches!(
            cache.lookup(OdKey::new(7, 8, 0), 11),
            CacheLookup::Fresh { seconds, .. } if seconds == 123.0
        ));
        assert_eq!(cache.stats().prewarm_batches, 1);
        // Inside the throttle window: no work, even though keys are warm
        // anyway. A throttled step does not advance last_run.
        assert_eq!(pw.step(500, |_| panic!("throttled step must not infer")), 0);
        // Past the throttle with everything still fresh (age == ttl is the
        // fresh boundary): no inference.
        assert_eq!(pw.step(1_010, |_| panic!("all fresh, no infer")), 0);
        // Once the TTL lapses the hot keys count as needing warmth again.
        assert_eq!(pw.step(2_100, |qs| qs.iter().map(|_| 99.0).collect()), 2);
        assert_eq!(cache.stats().prewarm_batches, 2);
    }

    #[test]
    fn drift_invalidator_is_edge_triggered() {
        let cache = EstimateCache::new(small_cfg(4));
        let mut inv = DriftInvalidator::new();
        let mut q = odt_obs::quality::QualitySnapshot::default();
        assert!(!inv.observe(&q, &cache));
        q.drift_alerts = 1;
        assert!(inv.observe(&q, &cache));
        assert_eq!(cache.generation(), 1);
        // Same alert count again: no second flush.
        assert!(!inv.observe(&q, &cache));
        assert_eq!(cache.generation(), 1);
        q.drift_alerts = 3;
        assert!(inv.observe(&q, &cache));
        assert_eq!(cache.generation(), 2);
    }

    #[test]
    fn non_finite_values_are_never_stored() {
        let cache = EstimateCache::new(small_cfg(4));
        assert!(!cache.insert(OdKey::new(1, 1, 0), f64::NAN, 0));
        cache.insert_forced(OdKey::new(2, 2, 0), f64::INFINITY, 0);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn sharded_capacity_holds_under_shards() {
        let cache = EstimateCache::new(CacheConfig {
            capacity: 64,
            shards: 8,
            ..CacheConfig::default()
        });
        for i in 0..1_000u32 {
            cache.insert_forced(OdKey::new(i, i * 3, (i % 48) as u16), 1.0, 0);
            assert!(cache.len() <= cache.capacity());
        }
        assert!(cache.capacity() >= 64 && cache.capacity() <= 64 + 8);
    }
}
