//! Deterministic fault injection for serving drills.
//!
//! [`ChaosExecutor`] wraps any [`RungExecutor`] and injects faults —
//! extra latency, NaN outputs, outright panics — drawn from a seedable
//! [`SplitMix64`] stream, so a drill with the same seed injects the same
//! fault sequence. The [`scenarios`] catalog defines the standing chaos
//! drills (run by the `chaos_drill` eval binary and the CI smoke job),
//! each with explicit [`Expectations`] the frontend must meet *under*
//! that fault load: the point of the drill is not that faults happen but
//! that every request still gets an answer or an honest shed.

use crate::breaker::BreakerConfig;
use crate::frontend::{CacheProbe, FrontendSnapshot, RungExecutor};
use crate::ladder::Rung;
use crate::queue::ShedPolicy;
use odt_obs::{event, Level};

/// The workspace-shared seedable PRNG driving the fault stream (one
/// implementation for chaos, tracing and the load generator — see
/// `odt_obs::rng`). Re-exported here so existing `odt_serve::SplitMix64`
/// users keep compiling.
pub use odt_obs::rng::SplitMix64;

/// One injected fault.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Fault {
    /// No fault: the wrapped executor runs untouched.
    None,
    /// Sleep this long before running the wrapped executor.
    ExtraLatencyUs(u64),
    /// Return `NaN` instead of running the wrapped executor.
    NanOutput,
    /// Panic instead of running the wrapped executor.
    Panic,
}

/// Fault mix for a chaos phase. Probabilities are evaluated in order
/// panic → NaN → latency per call, so they need not sum to 1.
#[derive(Copy, Clone, Debug)]
pub struct ChaosConfig {
    /// Seed for the fault stream.
    pub seed: u64,
    /// Probability of injecting extra latency.
    pub p_latency: f64,
    /// The extra latency injected, microseconds.
    pub latency_us: u64,
    /// Probability of poisoning the output with NaN.
    pub p_nan: f64,
    /// Probability of panicking.
    pub p_panic: f64,
    /// Inject only into model-backed rungs, never the terminal fallback
    /// (the default: the fallback is the safety net under test).
    pub model_rungs_only: bool,
}

impl ChaosConfig {
    /// No faults at all (the stream is still seeded, for phase changes).
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            p_latency: 0.0,
            latency_us: 0,
            p_nan: 0.0,
            p_panic: 0.0,
            model_rungs_only: true,
        }
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig::quiet(0)
    }
}

/// Draws faults from the seeded stream according to a [`ChaosConfig`].
pub struct FaultInjector {
    cfg: ChaosConfig,
    rng: SplitMix64,
}

impl FaultInjector {
    /// An injector over `cfg`'s fault mix and seed.
    pub fn new(cfg: ChaosConfig) -> Self {
        FaultInjector {
            rng: SplitMix64::new(cfg.seed),
            cfg,
        }
    }

    /// Swap the fault mix mid-drill (reseeds the stream from the new
    /// config so phases replay independently).
    pub fn set_config(&mut self, cfg: ChaosConfig) {
        self.rng = SplitMix64::new(cfg.seed);
        self.cfg = cfg;
    }

    /// The fault (if any) to inject into the next call on `rung`.
    pub fn next_fault(&mut self, rung: Rung) -> Fault {
        if self.cfg.model_rungs_only && rung.is_terminal() {
            return Fault::None;
        }
        let draw = self.rng.next_f64();
        if draw < self.cfg.p_panic {
            Fault::Panic
        } else if draw < self.cfg.p_panic + self.cfg.p_nan {
            Fault::NanOutput
        } else if draw < self.cfg.p_panic + self.cfg.p_nan + self.cfg.p_latency {
            Fault::ExtraLatencyUs(self.cfg.latency_us)
        } else {
            Fault::None
        }
    }
}

/// A [`RungExecutor`] that injects faults around an inner executor.
pub struct ChaosExecutor<E: RungExecutor> {
    inner: E,
    injector: FaultInjector,
}

impl<E: RungExecutor> ChaosExecutor<E> {
    /// Wrap `inner` with the fault mix in `cfg`.
    pub fn new(inner: E, cfg: ChaosConfig) -> Self {
        ChaosExecutor {
            inner,
            injector: FaultInjector::new(cfg),
        }
    }

    /// Change the fault mix (e.g. between drill phases).
    pub fn set_config(&mut self, cfg: ChaosConfig) {
        self.injector.set_config(cfg);
    }

    /// The wrapped executor.
    pub fn inner_mut(&mut self) -> &mut E {
        &mut self.inner
    }
}

impl<E: RungExecutor> RungExecutor for ChaosExecutor<E> {
    type Query = E::Query;

    fn admit(&mut self, query: &Self::Query) -> Result<(), String> {
        self.inner.admit(query)
    }

    fn supports(&self, rung: Rung) -> bool {
        self.inner.supports(rung)
    }

    fn probe(&mut self, query: &Self::Query) -> CacheProbe {
        self.inner.probe(query)
    }

    fn execute(&mut self, rung: Rung, query: &Self::Query) -> Result<f64, String> {
        let fault = self.injector.next_fault(rung);
        if fault != Fault::None {
            // Emitted inside the request's rung span, so the fault event
            // inherits the trace/span ids and the trace shows exactly
            // which injected fault a breach or breaker trip came from.
            let kind = match fault {
                Fault::ExtraLatencyUs(_) => "latency",
                Fault::NanOutput => "nan",
                Fault::Panic => "panic",
                Fault::None => unreachable!(),
            };
            let mut ev = event(Level::Warn, "chaos.fault")
                .field("rung", rung.name())
                .field("fault", kind);
            if let Fault::ExtraLatencyUs(us) = fault {
                ev = ev.field("extra_us", us);
            }
            ev.emit();
        }
        match fault {
            Fault::Panic => panic!("chaos: injected panic on {}", rung.name()),
            Fault::NanOutput => Ok(f64::NAN),
            Fault::ExtraLatencyUs(us) => {
                std::thread::sleep(std::time::Duration::from_micros(us));
                self.inner.execute(rung, query)
            }
            Fault::None => self.inner.execute(rung, query),
        }
    }
}

/// What a drill scenario requires of the frontend under fault load.
/// `check` returns the violated expectations (empty = pass).
#[derive(Copy, Clone, Debug)]
pub struct Expectations {
    /// Minimum served / submitted ratio.
    pub min_answer_rate: f64,
    /// Whether load shedding (queue-full or deadline sheds) must occur.
    pub expect_sheds: bool,
    /// Whether at least one breaker trip must occur.
    pub expect_breaker_trips: bool,
    /// Whether at least one answer must come from a degraded rung.
    pub expect_downgrades: bool,
    /// Whether the full-fidelity rung must be serving again by the end
    /// (breaker closed and at least one full-fidelity answer).
    pub expect_full_rung_recovers: bool,
    /// Hard ceiling on `Internal` sheds (every-rung-failed).
    pub max_internal_sheds: u64,
}

impl Default for Expectations {
    fn default() -> Self {
        Expectations {
            min_answer_rate: 1.0,
            expect_sheds: false,
            expect_breaker_trips: false,
            expect_downgrades: false,
            expect_full_rung_recovers: false,
            max_internal_sheds: 0,
        }
    }
}

impl Expectations {
    /// Check a drill's final snapshot; returns human-readable violations.
    pub fn check(&self, s: &FrontendSnapshot) -> Vec<String> {
        let mut v = Vec::new();
        let rate = if s.submitted == 0 {
            1.0
        } else {
            s.served as f64 / s.submitted as f64
        };
        if rate < self.min_answer_rate {
            v.push(format!(
                "answer rate {rate:.3} below required {:.3} ({} / {} served)",
                self.min_answer_rate, s.served, s.submitted
            ));
        }
        let sheds = s.shed_queue_full + s.shed_deadline;
        if self.expect_sheds && sheds == 0 {
            v.push("expected load shedding, none occurred".to_string());
        }
        let trips: u64 = s.breaker_trips.iter().sum();
        if self.expect_breaker_trips && trips == 0 {
            v.push("expected breaker trips, none occurred".to_string());
        }
        let downgraded: u64 = s.rung_hits[Rung::Full.index() + 1..].iter().sum();
        if self.expect_downgrades && downgraded == 0 {
            v.push("expected degraded-rung answers, none occurred".to_string());
        }
        if self.expect_full_rung_recovers {
            let full = Rung::Full.index();
            if s.breaker_states[full] != "closed" {
                v.push(format!(
                    "full-fidelity breaker did not recover (state {})",
                    s.breaker_states[full]
                ));
            }
            if s.rung_hits[full] == 0 {
                v.push("full-fidelity rung never served after recovery".to_string());
            }
        }
        if s.shed_internal > self.max_internal_sheds {
            v.push(format!(
                "{} internal sheds exceed the ceiling of {}",
                s.shed_internal, self.max_internal_sheds
            ));
        }
        v
    }
}

/// One standing chaos drill.
#[derive(Copy, Clone, Debug)]
pub struct ScenarioSpec {
    /// Scenario name (`--scenario` argument of `chaos_drill`).
    pub name: &'static str,
    /// One-line description for the report.
    pub description: &'static str,
    /// The fault mix active from the first wave.
    pub chaos: ChaosConfig,
    /// Request waves to run.
    pub waves: usize,
    /// Requests per wave.
    pub wave_size: usize,
    /// Per-request deadline budget (µs); `None` = frontend default.
    pub deadline_us: Option<u64>,
    /// Admission queue capacity for this drill.
    pub queue_capacity: usize,
    /// Shed policy for this drill.
    pub shed_policy: ShedPolicy,
    /// Clear the fault mix after this wave index (recovery drills).
    pub clear_chaos_after_wave: Option<usize>,
    /// Breaker override (`None` = crate default).
    pub breaker: Option<BreakerConfig>,
    /// What the frontend must deliver under this load.
    pub expect: Expectations,
}

impl ScenarioSpec {
    fn base(name: &'static str, description: &'static str, seed: u64) -> Self {
        ScenarioSpec {
            name,
            description,
            chaos: ChaosConfig::quiet(seed),
            waves: 3,
            wave_size: 16,
            deadline_us: None,
            queue_capacity: 256,
            shed_policy: ShedPolicy::RejectNewest,
            clear_chaos_after_wave: None,
            breaker: None,
            expect: Expectations::default(),
        }
    }
}

/// The standing drill catalog. `seed` perturbs every scenario's fault
/// stream, so drills can be replayed (same seed) or varied (new seed).
pub fn scenarios(seed: u64) -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::base(
            "baseline",
            "no faults: everything serves at full fidelity",
            seed,
        ),
        ScenarioSpec {
            chaos: ChaosConfig {
                p_nan: 0.9,
                ..ChaosConfig::quiet(seed ^ 0x6e61_6e)
            },
            // Backoff far beyond the drill duration: once a breaker opens
            // it stays open, so replays with the same seed attempt the
            // same call sequence regardless of machine speed (the CI
            // replay-determinism check relies on this).
            breaker: Some(BreakerConfig {
                base_backoff_us: 60_000_000,
                max_backoff_us: 60_000_000,
                ..BreakerConfig::default()
            }),
            expect: Expectations {
                expect_breaker_trips: true,
                expect_downgrades: true,
                ..Expectations::default()
            },
            ..ScenarioSpec::base(
                "nan_storm",
                "90% of model-rung calls return NaN: breakers trip, fallback answers",
                seed,
            )
        },
        ScenarioSpec {
            chaos: ChaosConfig {
                p_latency: 0.8,
                latency_us: 30_000,
                ..ChaosConfig::quiet(seed ^ 0x6c61_74)
            },
            deadline_us: Some(20_000),
            expect: Expectations {
                // Early requests may be served late or expire in the queue
                // while the ladder is still learning the spike; once the
                // live p95s exceed the deadline, traffic routes to the
                // fallback and answer rate recovers.
                min_answer_rate: 0.3,
                expect_downgrades: true,
                ..Expectations::default()
            },
            ..ScenarioSpec::base(
                "latency_spike",
                "30ms injected latency against a 20ms deadline: the ladder routes down",
                seed,
            )
        },
        ScenarioSpec {
            chaos: ChaosConfig {
                p_panic: 0.7,
                ..ChaosConfig::quiet(seed ^ 0x7061_6e)
            },
            breaker: Some(BreakerConfig {
                failure_threshold: 2,
                base_backoff_us: 60_000_000,
                ..BreakerConfig::default()
            }),
            expect: Expectations {
                expect_breaker_trips: true,
                expect_downgrades: true,
                ..Expectations::default()
            },
            ..ScenarioSpec::base(
                "panic_wave",
                "70% of model-rung calls panic: panics are contained, requests still answer",
                seed,
            )
        },
        ScenarioSpec {
            waves: 1,
            wave_size: 160,
            queue_capacity: 16,
            expect: Expectations {
                min_answer_rate: 0.05,
                expect_sheds: true,
                ..Expectations::default()
            },
            ..ScenarioSpec::base(
                "queue_flood",
                "10x queue capacity in one wave: overflow is shed, admitted requests serve",
                seed,
            )
        },
        ScenarioSpec {
            chaos: ChaosConfig {
                p_nan: 1.0,
                ..ChaosConfig::quiet(seed ^ 0x7265_63)
            },
            waves: 4,
            clear_chaos_after_wave: Some(0),
            breaker: Some(BreakerConfig {
                failure_threshold: 3,
                base_backoff_us: 1_000,
                max_backoff_us: 10_000,
                half_open_probes: 2,
            }),
            expect: Expectations {
                expect_breaker_trips: true,
                expect_downgrades: true,
                expect_full_rung_recovers: true,
                ..Expectations::default()
            },
            ..ScenarioSpec::base(
                "breaker_recovery",
                "total NaN outage then recovery: breakers close and full fidelity resumes",
                seed,
            )
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_respects_probabilities_and_replays() {
        let cfg = ChaosConfig {
            p_panic: 0.2,
            p_nan: 0.3,
            ..ChaosConfig::quiet(42)
        };
        let mut a = FaultInjector::new(cfg);
        let mut b = FaultInjector::new(cfg);
        let mut counts = [0usize; 3]; // panic, nan, none
        for _ in 0..2_000 {
            let f = a.next_fault(Rung::Full);
            assert_eq!(f, b.next_fault(Rung::Full), "same seed, same stream");
            match f {
                Fault::Panic => counts[0] += 1,
                Fault::NanOutput => counts[1] += 1,
                Fault::None => counts[2] += 1,
                Fault::ExtraLatencyUs(_) => panic!("p_latency is 0"),
            }
        }
        assert!((300..=500).contains(&counts[0]), "panic {}", counts[0]);
        assert!((480..=720).contains(&counts[1]), "nan {}", counts[1]);
    }

    #[test]
    fn fallback_is_exempt_when_model_rungs_only() {
        let mut inj = FaultInjector::new(ChaosConfig {
            p_panic: 1.0,
            model_rungs_only: true,
            ..ChaosConfig::quiet(1)
        });
        for _ in 0..50 {
            assert_eq!(inj.next_fault(Rung::Fallback), Fault::None);
            assert_eq!(inj.next_fault(Rung::Full), Fault::Panic);
        }
    }

    #[test]
    fn scenario_catalog_is_well_formed() {
        let cat = scenarios(7);
        assert!(cat.len() >= 5);
        let names: Vec<_> = cat.iter().map(|s| s.name).collect();
        for required in ["baseline", "nan_storm", "queue_flood", "breaker_recovery"] {
            assert!(names.contains(&required), "missing {required}");
        }
        for s in &cat {
            assert!(s.waves > 0 && s.wave_size > 0, "{}", s.name);
            assert!(s.expect.min_answer_rate >= 0.0, "{}", s.name);
        }
    }

    #[test]
    fn expectations_flag_violations() {
        let mut snap = FrontendSnapshot {
            submitted: 10,
            served: 10,
            rung_hits: [0, 10, 0, 0, 0, 0],
            breaker_states: ["closed"; crate::ladder::MODEL_RUNGS],
            ..FrontendSnapshot::default()
        };
        assert!(Expectations::default().check(&snap).is_empty());
        let strict = Expectations {
            expect_breaker_trips: true,
            expect_downgrades: true,
            ..Expectations::default()
        };
        assert_eq!(strict.check(&snap).len(), 2);
        snap.served = 5;
        snap.shed_internal = 5;
        let v = Expectations::default().check(&snap);
        assert!(v.iter().any(|m| m.contains("answer rate")));
        assert!(v.iter().any(|m| m.contains("internal sheds")));
    }
}
