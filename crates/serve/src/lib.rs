//! # odt-serve
//!
//! The resilient serving frontend for the DOT oracle: what stands between
//! map-service traffic and [`odt_core::Dot`] when the oracle is deployed.
//!
//! The paper's serving story ends at `estimate()`; this crate adds the
//! production envelope around it:
//!
//! * **Admission control** — a bounded [`AdmissionQueue`] with an explicit
//!   [`ShedPolicy`] (reject-newest or reject-oldest), so overload degrades
//!   into counted sheds instead of unbounded latency. Strict query
//!   sanitization refuses far-out-of-region queries with a typed reason.
//! * **Deadline-aware degradation** — each request carries a deadline
//!   budget; the [`LatencyLadder`] picks the highest-fidelity rung (full
//!   DDPM → DDIM → reduced-step DDIM → haversine prior) whose live p95
//!   fits the remaining budget. Selection is monotone in the deadline
//!   (proptested): a stricter deadline never gets a slower rung.
//! * **Circuit breakers** — each model-backed rung sits behind a
//!   [`CircuitBreaker`] (closed → open → half-open, exponential backoff)
//!   that trips on panics, NaN outputs, and latency-budget violations;
//!   the ladder routes around open breakers.
//! * **Chaos harness** — [`ChaosExecutor`] injects seeded, replayable
//!   faults (latency, NaN, panics) and [`scenarios`] defines standing
//!   drills with explicit [`Expectations`], run by the `chaos_drill` eval
//!   binary and the CI `chaos-smoke` job.
//! * **Shadow quality scoring** — [`ShadowScorer`] replays a ground-truth
//!   holdout through the live model on idle ticks, feeding
//!   `odt_obs::QualityTracker`'s accuracy/drift windows so the admin
//!   plane exports live model-quality metrics.
//! * **Hot-path estimate cache** — [`EstimateCache`] is a sharded,
//!   bounded, TinyLFU-admitted cache keyed on `(o_cell, d_cell,
//!   time-of-day bucket)` with per-bucket TTLs, a slightly-stale grace
//!   tier, and generation-stamped invalidation wired to the drift alert
//!   via [`DriftInvalidator`]. It surfaces as two probe-gated ladder
//!   rungs (fresh hits before the model, stale hits above the prior) and
//!   is prewarmed by [`Prewarmer`] on dispatcher idle ticks. See
//!   DESIGN.md §13.
//! * **Zero-downtime hot model swap** — [`SwapController`] is a
//!   bounded-work state machine (validate → shadow-score → promote)
//!   over a [`SwapHost`]; the production host [`DotSwapHost`] gates
//!   candidates on CRC framing, grid shape and a shadow MAE drift gate,
//!   then installs them into the hot-swappable [`ModelSlot`] the
//!   executor reads per request — serving never pauses. See
//!   DESIGN.md §14.
//!
//! Everything runs on caller-visible microsecond clocks and seeded PRNGs,
//! so the whole stack — queue, breaker, ladder, chaos — is deterministic
//! under test. See DESIGN.md §9 for the full serving-resilience design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod dot;
pub mod frontend;
pub mod ladder;
pub mod queue;
pub mod shadow;
pub mod swap;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use cache::{
    CacheConfig, CacheLookup, CacheStats, DriftInvalidator, EstimateCache, HotTracker, OdKey,
    PrewarmConfig, Prewarmer,
};
pub use chaos::{
    scenarios, ChaosConfig, ChaosExecutor, Expectations, Fault, FaultInjector, ScenarioSpec,
    SplitMix64,
};
pub use dot::{
    dot_frontend, dot_frontend_cached, DotExecutor, DotFrontendConfig, DotSwapHost,
    DotSwapHostConfig, LoadedCandidate, ModelSlot, ModelSource,
};
pub use frontend::{
    CacheProbe, FrontendConfig, FrontendSnapshot, Request, Response, RungExecutor, ServeFrontend,
    ShedReason,
};
pub use ladder::{select_from_costs, LadderConfig, LatencyLadder, Rung, MODEL_RUNGS, NUM_RUNGS};
pub use queue::{AdmissionQueue, ShedPolicy};
pub use shadow::{ShadowConfig, ShadowScorer};
pub use swap::{SwapConfig, SwapController, SwapError, SwapHost, SwapOutcome, SwapStats};
