//! The deadline-aware serving frontend.
//!
//! [`ServeFrontend`] ties the resilience pieces together around any
//! [`RungExecutor`] (the production executor wraps [`odt_core::Dot`], see
//! [`crate::dot`]; tests use mocks):
//!
//! 1. **Admission** — requests pass the executor's `admit` check (strict
//!    query sanitization for the Dot executor) and then a bounded
//!    [`AdmissionQueue`] with an explicit shed policy.
//! 2. **Selection** — at dequeue time the remaining deadline budget picks
//!    a rung from the [`LatencyLadder`], skipping rungs whose
//!    [`CircuitBreaker`] is open.
//! 3. **Execution** — the rung runs under `catch_unwind`; a panic, error,
//!    or non-finite output counts as a rung failure and the request
//!    *descends* the ladder instead of failing. A served request that
//!    blew its deadline still answers, but feeds the breaker a failure so
//!    a persistently slow rung trips.
//!
//! All timing is microseconds since the frontend's construction epoch, so
//! the queue/breaker state machines stay deterministic under test.
//!
//! **Tracing.** When tracing is enabled (`odt_obs::trace`), every request
//! that reaches [`ServeFrontend::serve_one`] gets a root span
//! (`serve.request`) carrying its request id, a back-dated
//! `serve.queue_wait` child, and one child span per rung attempt — which
//! the compute pool extends down to kernel level via context propagation.
//! Traces that breach their deadline, expire in the queue, or answer from
//! the fallback rung are force-retained past head sampling; breaker trips
//! retain the triggering trace *and* dump the flight recorder (see
//! [`crate::breaker`]). An optional SLO burn-rate monitor
//! ([`FrontendConfig::slo`]) scores each outcome against the deadline SLA.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use odt_obs::{event, Level};

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::ladder::{LadderConfig, LatencyLadder, Rung, MODEL_RUNGS, NUM_RUNGS};
use crate::queue::{AdmissionQueue, ShedPolicy};

/// What an executor's cache probe found for a query (the frontend probes
/// once per request, before rung selection, and gates the two cache rungs
/// on the result).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CacheProbe {
    /// A fresh cached estimate exists: [`Rung::Cached`] is usable.
    Fresh,
    /// Only a slightly-stale estimate exists: [`Rung::CachedStale`] is
    /// usable, [`Rung::Cached`] is not.
    Stale,
    /// Nothing cached (or no cache at all): neither cache rung is usable.
    Miss,
}

/// One serving path the frontend can route a request to.
///
/// Implementations map each [`Rung`] to an actual estimation strategy and
/// may reject queries up front. `execute` returns the estimated travel
/// time in seconds; `Err`, a panic, or a non-finite value all count as a
/// rung failure and push the request down the ladder.
pub trait RungExecutor {
    /// The query type served (for the Dot executor: `OdtInput`).
    type Query: Clone;

    /// Validate a query before it is admitted; `Err(reason)` sheds it.
    fn admit(&mut self, _query: &Self::Query) -> Result<(), String> {
        Ok(())
    }

    /// Whether this executor can serve `rung` at all. The default opts
    /// out of the cache rungs (executors without a cache keep their exact
    /// pre-cache behavior) and into everything else.
    fn supports(&self, rung: Rung) -> bool {
        !rung.is_cache()
    }

    /// Probe the executor's estimate cache for `query`. Called once per
    /// request before rung selection; the result gates the cache rungs.
    /// Executors without a cache keep the default ([`CacheProbe::Miss`]).
    fn probe(&mut self, _query: &Self::Query) -> CacheProbe {
        CacheProbe::Miss
    }

    /// Serve `query` on `rung`, returning the travel time in seconds.
    fn execute(&mut self, rung: Rung, query: &Self::Query) -> Result<f64, String>;
}

/// Frontend tuning.
#[derive(Clone, Debug)]
pub struct FrontendConfig {
    /// Admission queue capacity (≥ 1).
    pub queue_capacity: usize,
    /// Which request to refuse when the queue is full.
    pub shed_policy: ShedPolicy,
    /// Deadline budget for requests that do not carry one, microseconds.
    pub default_deadline_us: u64,
    /// Degradation-ladder tuning.
    pub ladder: LadderConfig,
    /// Per-rung circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// When set, feed every served/shed outcome into an SLO burn-rate
    /// monitor (`ok` = served within deadline) on the frontend's epoch
    /// clock. `None` (the default) disables SLO accounting.
    pub slo: Option<odt_obs::slo::BurnRateConfig>,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            queue_capacity: 256,
            shed_policy: ShedPolicy::RejectNewest,
            default_deadline_us: 1_000_000,
            ladder: LadderConfig::default(),
            breaker: BreakerConfig::default(),
            slo: None,
        }
    }
}

/// A request admitted to the queue. `deadline_us` is absolute, on the
/// frontend's epoch clock.
pub struct Request<Q> {
    /// Frontend-assigned id, dense from 0 in submission order.
    pub id: u64,
    /// The query to serve.
    pub query: Q,
    /// Absolute deadline (µs since the frontend epoch).
    pub deadline_us: u64,
    /// A caller-propagated trace id (the `odt-wire/v1` `trace` field):
    /// when set, the request's root span *adopts* it instead of minting a
    /// local id, so client and server observe the same trace.
    pub wire_trace: Option<odt_obs::TraceId>,
    /// The caller's span id (the `odt-wire/v1` `parent_span` field): when
    /// nonzero (and `wire_trace` is set), the adopted root span records it
    /// as its parent, so cross-process stitchers can hang this process's
    /// fragment under the originating span. `0` means locally rooted.
    pub wire_parent: u64,
}

/// Why a request was refused instead of served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was full (under either shed policy) and the
    /// refused request still had deadline budget left.
    QueueFull,
    /// The request's deadline expired *while it sat in the queue*: either
    /// discovered at dequeue, or — under [`ShedPolicy::RejectOldest`] —
    /// when the already-expired oldest request was evicted to admit a
    /// fresh one. Distinct from [`ShedReason::QueueFull`] so overload
    /// accounting separates "refused for capacity" from "waited too long"
    /// (the wire error code mirrors this split).
    DeadlineExpiredInQueue,
    /// The executor's admission check rejected the query.
    InvalidQuery,
    /// Every rung including the terminal fallback failed (should not
    /// happen; kept so the frontend never panics outward).
    Internal,
}

impl ShedReason {
    /// Short tag for reports and wire error codes.
    pub fn name(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::DeadlineExpiredInQueue => "queue_expired",
            ShedReason::InvalidQuery => "invalid_query",
            ShedReason::Internal => "internal",
        }
    }
}

/// The frontend's answer for one submitted request.
#[derive(Clone, Debug)]
pub enum Response {
    /// The request was served (possibly by a degraded rung).
    Served {
        /// Request id.
        id: u64,
        /// Estimated travel time, seconds. Always finite.
        seconds: f64,
        /// The rung that produced the answer.
        rung: Rung,
        /// Time spent queued, µs.
        queue_wait_us: u64,
        /// Service time on the answering rung (failed attempts on higher
        /// rungs are not included), µs.
        service_us: u64,
        /// Whether the answer landed within the deadline.
        deadline_met: bool,
        /// Whether a rung below full fidelity answered.
        downgraded: bool,
    },
    /// The request was refused.
    Shed {
        /// Request id (dense ids are assigned even to shed requests).
        id: u64,
        /// Why it was refused.
        reason: ShedReason,
        /// Human-readable detail (e.g. the admission rejection reason).
        detail: String,
    },
}

impl Response {
    /// The request id this response answers.
    pub fn id(&self) -> u64 {
        match self {
            Response::Served { id, .. } | Response::Shed { id, .. } => *id,
        }
    }

    /// Whether the request was served.
    pub fn is_served(&self) -> bool {
        matches!(self, Response::Served { .. })
    }
}

/// Aggregate frontend counters for reports and drills.
#[derive(Clone, Debug, Default)]
pub struct FrontendSnapshot {
    /// Requests submitted (served + shed).
    pub submitted: u64,
    /// Requests that passed admission and entered the queue.
    pub admitted: u64,
    /// Requests answered by some rung.
    pub served: u64,
    /// Sheds because the queue was full (the refused request still had
    /// budget left).
    pub shed_queue_full: u64,
    /// Sheds because the deadline expired while queued (`queue_expired`):
    /// discovered at dequeue, or evicted-already-expired under
    /// [`ShedPolicy::RejectOldest`].
    pub shed_deadline: u64,
    /// Sheds by the executor's admission check.
    pub shed_invalid: u64,
    /// Sheds because every rung failed.
    pub shed_internal: u64,
    /// Answers per rung, ladder order.
    pub rung_hits: [u64; NUM_RUNGS],
    /// Failed attempts per rung, ladder order.
    pub rung_failures: [u64; NUM_RUNGS],
    /// Breaker trips per model-backed rung.
    pub breaker_trips: [u64; MODEL_RUNGS],
    /// Breaker state names per model-backed rung.
    pub breaker_states: [&'static str; MODEL_RUNGS],
    /// Served requests that landed within their deadline.
    pub deadline_met: u64,
    /// Served requests that blew their deadline.
    pub deadline_missed: u64,
    /// SLO burn-rate state, when [`FrontendConfig::slo`] is configured.
    pub slo: Option<odt_obs::slo::BurnRateSnapshot>,
    /// The latency ladder's live per-rung cost estimates (µs, ladder
    /// order) at snapshot time — what selection is currently using.
    pub ladder_cost_us: [u64; NUM_RUNGS],
}

/// The deadline-aware serving frontend. See the module docs.
pub struct ServeFrontend<E: RungExecutor> {
    cfg: FrontendConfig,
    exec: E,
    queue: AdmissionQueue<Request<E::Query>>,
    ladder: LatencyLadder,
    breakers: [CircuitBreaker; MODEL_RUNGS],
    epoch: Instant,
    next_id: u64,
    snap: FrontendSnapshot,
    slo: Option<odt_obs::slo::BurnRateMonitor>,
}

fn rung_hist_name(rung: Rung) -> &'static str {
    match rung {
        Rung::Cached => "serve.rung.cached",
        Rung::Full => "serve.rung.full_ddpm",
        Rung::Ddim => "serve.rung.ddim",
        Rung::DdimReduced => "serve.rung.ddim_reduced",
        Rung::CachedStale => "serve.rung.cached_stale",
        Rung::Fallback => "serve.rung.fallback",
    }
}

impl<E: RungExecutor> ServeFrontend<E> {
    /// A frontend over `exec` with the given tuning.
    pub fn new(exec: E, cfg: FrontendConfig) -> Self {
        let breakers =
            std::array::from_fn(|i| CircuitBreaker::new(Rung::from_index(i).name(), cfg.breaker));
        ServeFrontend {
            queue: AdmissionQueue::new(cfg.queue_capacity, cfg.shed_policy),
            ladder: LatencyLadder::new(cfg.ladder),
            breakers,
            exec,
            slo: cfg.slo.map(odt_obs::slo::BurnRateMonitor::new),
            cfg,
            epoch: Instant::now(),
            next_id: 0,
            snap: FrontendSnapshot::default(),
        }
    }

    /// Microseconds since the frontend epoch (the clock every internal
    /// state machine runs on).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// The wrapped executor (e.g. to reconfigure chaos between phases).
    pub fn executor_mut(&mut self) -> &mut E {
        &mut self.exec
    }

    /// The live latency ladder.
    pub fn ladder(&self) -> &LatencyLadder {
        &self.ladder
    }

    /// The breaker state guarding a model-backed rung.
    pub fn breaker_state(&self, rung: Rung) -> Option<BreakerState> {
        if rung.is_terminal() {
            None
        } else {
            Some(self.breakers[rung.index()].state())
        }
    }

    /// Current aggregate counters.
    pub fn snapshot(&self) -> FrontendSnapshot {
        let mut s = self.snap.clone();
        for i in 0..MODEL_RUNGS {
            s.breaker_trips[i] = self.breakers[i].trips();
            s.breaker_states[i] = self.breakers[i].state().name();
        }
        s.slo = self.slo.as_ref().map(|m| m.snapshot(self.now_us()));
        s.ladder_cost_us = self.ladder.costs();
        s
    }

    /// Seed the latency ladder by running each query once per model-backed
    /// rung, outside deadline accounting. Failures are ignored (they still
    /// inform the breakers). Call before a drill or benchmark so selection
    /// starts from measured costs instead of priors.
    pub fn warmup(&mut self, queries: &[E::Query]) {
        for q in queries {
            for rung in Rung::ALL {
                // Cache rungs are probe-gated and near-free; executing
                // them cold would only feed their breakers spurious
                // failures, so warmup leaves their priors in place.
                if rung.is_cache() {
                    continue;
                }
                let now = self.now_us();
                let sp = odt_obs::span(rung_hist_name(rung));
                let exec = &mut self.exec;
                // Warmup probes rungs that may legitimately panic (chaos
                // executors): those panics are caught here and must not
                // each produce a flight-recorder dump.
                let suppress = odt_obs::flightrec::suppress_panic_dump();
                let outcome = catch_unwind(AssertUnwindSafe(|| exec.execute(rung, q)));
                drop(suppress);
                let micros = sp.elapsed_micros();
                drop(sp); // records `micros` (±ns) into the rung histogram
                self.ladder.observe(rung, micros);
                let ok = matches!(&outcome, Ok(Ok(v)) if v.is_finite());
                if !rung.is_terminal() {
                    if ok {
                        self.breakers[rung.index()].record_success(now);
                    } else {
                        self.breakers[rung.index()].record_failure(now);
                    }
                }
            }
        }
    }

    /// The id the *next* submit will be assigned. Callers correlating
    /// frontend ids with their own (the network bridge) read this before
    /// submitting: under [`ShedPolicy::RejectOldest`] a submit can
    /// return another request's shed response while the submitted
    /// request itself was admitted under this id.
    pub fn next_request_id(&self) -> u64 {
        self.next_id
    }

    /// Submit one request. `deadline_us` is a *budget* from now (the
    /// configured default when `None`). Returns the assigned id, or the
    /// shed response if the request never made it into the queue.
    pub fn submit(&mut self, query: E::Query, deadline_us: Option<u64>) -> Result<u64, Response> {
        self.submit_traced(query, deadline_us, None, 0)
    }

    /// [`Self::submit`] with a caller-propagated trace context (the
    /// networked frontend passes the client's `odt-wire/v1` trace here, so
    /// server spans join the client's trace instead of minting a fresh
    /// id). `wire_parent` is the caller's span id (`0` = locally rooted);
    /// it is meaningful only when `wire_trace` is set.
    pub fn submit_traced(
        &mut self,
        query: E::Query,
        deadline_us: Option<u64>,
        wire_trace: Option<odt_obs::TraceId>,
        wire_parent: u64,
    ) -> Result<u64, Response> {
        let id = self.next_id;
        self.next_id += 1;
        self.snap.submitted += 1;

        if let Err(detail) = self.exec.admit(&query) {
            self.snap.shed_invalid += 1;
            event(Level::Warn, "serve.request.shed")
                .field("reason", ShedReason::InvalidQuery.name())
                .emit();
            return Err(Response::Shed {
                id,
                reason: ShedReason::InvalidQuery,
                detail,
            });
        }

        let now = self.now_us();
        let budget = deadline_us.unwrap_or(self.cfg.default_deadline_us);
        let req = Request {
            id,
            query,
            deadline_us: now.saturating_add(budget),
            wire_trace,
            wire_parent,
        };
        match self.queue.push(req, now) {
            Ok(()) => {
                self.snap.admitted += 1;
                Ok(id)
            }
            Err(shed) => {
                // Under reject-oldest the evicted request is the longest
                // waiter; if its deadline has *already passed* it would
                // have been a `queue_expired` shed at dequeue anyway —
                // count it as such (typed, not folded into queue_full).
                let expired = shed.deadline_us <= now && shed.id != id;
                let reason = if expired {
                    ShedReason::DeadlineExpiredInQueue
                } else {
                    ShedReason::QueueFull
                };
                if expired {
                    self.snap.shed_deadline += 1;
                } else {
                    self.snap.shed_queue_full += 1;
                }
                event(Level::Warn, "serve.request.shed")
                    .field("reason", reason.name())
                    .emit();
                let detail = if expired {
                    format!(
                        "expired {}us before eviction from a full queue",
                        now - shed.deadline_us
                    )
                } else {
                    format!("queue at capacity {}", self.queue.capacity())
                };
                Err(Response::Shed {
                    id: shed.id,
                    reason,
                    detail,
                })
            }
        }
    }

    /// Serve queued requests until the queue is empty.
    pub fn drain(&mut self) -> Vec<Response> {
        let mut out = Vec::new();
        loop {
            let now = self.now_us();
            let Some((req, wait)) = self.queue.pop(now) else {
                break;
            };
            out.push(self.serve_one(req, wait));
        }
        out
    }

    /// Submit a wave of `(query, deadline budget)` pairs, then drain the
    /// queue. Shed and served responses are returned together.
    pub fn process_wave(
        &mut self,
        wave: impl IntoIterator<Item = (E::Query, Option<u64>)>,
    ) -> Vec<Response> {
        let mut out = Vec::new();
        for (query, deadline) in wave {
            if let Err(shed) = self.submit(query, deadline) {
                out.push(shed);
            }
        }
        out.extend(self.drain());
        out
    }

    fn serve_one(&mut self, req: Request<E::Query>, queue_wait_us: u64) -> Response {
        // Root span for the whole request (inert when tracing is off).
        // While it lives, every span/event/histogram sample on this thread
        // — and, via pool context propagation, on compute workers — is
        // attributed to this request's trace. A wire-propagated client
        // trace id is adopted so the client and server share one trace.
        let root = match req.wire_trace {
            Some(id) => odt_obs::trace::root_span_adopted("serve.request", id, req.wire_parent),
            None => odt_obs::trace::root_span("serve.request"),
        };
        root.set_request_id(req.id);
        odt_obs::trace::record_backdated_span("serve.queue_wait", queue_wait_us);
        // One cache probe per request, before selection: the result gates
        // the two cache rungs for every iteration of the descent loop (a
        // cache-rung failure mid-descent must not re-probe).
        let probe = self.exec.probe(&req.query);
        let mut floor = 0usize;
        loop {
            let now = self.now_us();
            let remaining = req.deadline_us.saturating_sub(now);
            if remaining == 0 && floor == 0 {
                // Expired before any attempt: refuse rather than burn work.
                self.snap.shed_deadline += 1;
                odt_obs::trace::force_retain_current("deadline_expired_in_queue");
                event(Level::Warn, "serve.request.shed")
                    .field("reason", ShedReason::DeadlineExpiredInQueue.name())
                    .emit();
                self.record_slo(false);
                return Response::Shed {
                    id: req.id,
                    reason: ShedReason::DeadlineExpiredInQueue,
                    detail: format!("waited {queue_wait_us}us in queue"),
                };
            }

            // Breaker + probe + support gating, computed before selection
            // so the closure borrow does not conflict with
            // `&mut self.breakers`. A cache rung is usable only when the
            // executor has a cache (`supports`), its breaker allows, and
            // the probe found an entry of the right freshness.
            let mut usable = [true; NUM_RUNGS];
            for (i, usable_i) in usable.iter_mut().take(MODEL_RUNGS).enumerate() {
                let rung = Rung::from_index(i);
                let mut ok = i >= floor && self.exec.supports(rung) && self.breakers[i].allow(now);
                if rung.is_cache() {
                    ok = ok
                        && match rung {
                            Rung::Cached => probe == CacheProbe::Fresh,
                            _ => probe != CacheProbe::Miss,
                        };
                }
                *usable_i = ok;
            }
            let rung = self.ladder.select(remaining, |r| usable[r.index()]);
            let rung = if rung.index() < floor {
                Rung::from_index(floor.min(Rung::Fallback.index()))
            } else {
                rung
            };

            // The rung attempt is a trace child span; its drop records the
            // service time into the per-rung histogram exactly as the
            // manual record here used to.
            let sp = odt_obs::span(rung_hist_name(rung));
            let exec = &mut self.exec;
            // Executor panics (chaos-injected or real) are caught at this
            // boundary and handled as rung failures — suppress the panic
            // hook's flight-recorder dump for them.
            let suppress = odt_obs::flightrec::suppress_panic_dump();
            let outcome = catch_unwind(AssertUnwindSafe(|| exec.execute(rung, &req.query)));
            drop(suppress);
            let service_us = sp.elapsed_micros();
            drop(sp);
            self.ladder.observe(rung, service_us);
            let after = self.now_us();

            match outcome {
                Ok(Ok(seconds)) if seconds.is_finite() => {
                    self.snap.served += 1;
                    self.snap.rung_hits[rung.index()] += 1;
                    let deadline_met = after <= req.deadline_us;
                    if deadline_met {
                        self.snap.deadline_met += 1;
                    } else {
                        self.snap.deadline_missed += 1;
                        odt_obs::trace::force_retain_current("deadline_breach");
                    }
                    if rung == Rung::Fallback {
                        odt_obs::trace::force_retain_current("fallback_rung");
                    }
                    if !rung.is_terminal() {
                        // A served-but-late answer is a *latency* failure:
                        // it must push the breaker toward routing around
                        // this rung, even though the caller got an answer.
                        if deadline_met {
                            self.breakers[rung.index()].record_success(after);
                        } else {
                            self.breakers[rung.index()].record_failure(after);
                        }
                    }
                    self.record_slo(deadline_met);
                    return Response::Served {
                        id: req.id,
                        seconds,
                        rung,
                        queue_wait_us,
                        service_us,
                        deadline_met,
                        downgraded: rung.index() > Rung::Full.index(),
                    };
                }
                other => {
                    // Err(_), NaN/±inf output, or a caught panic.
                    self.snap.rung_failures[rung.index()] += 1;
                    odt_obs::counter("serve.rung.failures").inc();
                    let kind = match &other {
                        Ok(Ok(_)) => "non_finite",
                        Ok(Err(_)) => "error",
                        Err(_) => "panic",
                    };
                    event(Level::Warn, "serve.rung.failure")
                        .field("rung", rung.name())
                        .field("kind", kind)
                        .emit();
                    if !rung.is_terminal() {
                        self.breakers[rung.index()].record_failure(after);
                        floor = rung.index() + 1;
                        continue;
                    }
                    // Even the fallback failed: give up on this request.
                    self.snap.shed_internal += 1;
                    odt_obs::trace::force_retain_current("internal_shed");
                    self.record_slo(false);
                    return Response::Shed {
                        id: req.id,
                        reason: ShedReason::Internal,
                        detail: format!("terminal rung failed ({kind})"),
                    };
                }
            }
        }
    }

    /// Feed one terminal request outcome into the SLO monitor, if one is
    /// configured (`ok` = the request was served within its deadline).
    fn record_slo(&mut self, ok: bool) {
        let now = self.now_us();
        if let Some(m) = self.slo.as_mut() {
            m.record(ok, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that toggle the process-global trace sampling rate.
    fn trace_test_gate() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Scriptable executor: per-rung behavior, switchable mid-test. The
    /// default `supports`/`probe` opt out of the cache rungs; set
    /// `probe_result` to gate them in.
    struct MockExec {
        /// seconds returned per rung; NaN simulates a poisoned output.
        value: [f64; NUM_RUNGS],
        /// rungs that return Err.
        fail: [bool; NUM_RUNGS],
        /// rungs that panic.
        panic: [bool; NUM_RUNGS],
        /// queries containing this marker are refused at admission.
        reject_marker: Option<&'static str>,
        /// `Some(probe)` makes the mock cache-capable with that probe
        /// result for every query; `None` keeps the trait defaults.
        probe_result: Option<CacheProbe>,
        calls: Vec<Rung>,
    }

    impl MockExec {
        fn healthy() -> Self {
            MockExec {
                value: [550.0, 600.0, 610.0, 620.0, 650.0, 900.0],
                fail: [false; NUM_RUNGS],
                panic: [false; NUM_RUNGS],
                reject_marker: None,
                probe_result: None,
                calls: Vec::new(),
            }
        }
    }

    impl RungExecutor for MockExec {
        type Query = &'static str;

        fn admit(&mut self, query: &Self::Query) -> Result<(), String> {
            match self.reject_marker {
                Some(m) if query.contains(m) => Err(format!("marker {m}")),
                _ => Ok(()),
            }
        }

        fn supports(&self, rung: Rung) -> bool {
            !rung.is_cache() || self.probe_result.is_some()
        }

        fn probe(&mut self, _query: &Self::Query) -> CacheProbe {
            self.probe_result.unwrap_or(CacheProbe::Miss)
        }

        fn execute(&mut self, rung: Rung, _query: &Self::Query) -> Result<f64, String> {
            self.calls.push(rung);
            if self.panic[rung.index()] {
                panic!("injected panic on {}", rung.name());
            }
            if self.fail[rung.index()] {
                return Err(format!("injected error on {}", rung.name()));
            }
            Ok(self.value[rung.index()])
        }
    }

    fn cfg() -> FrontendConfig {
        FrontendConfig {
            queue_capacity: 8,
            // Millisecond-scale priors so mock execution (≈ µs) always
            // "fits" and queue wait cannot starve the budget on slow CI.
            ladder: LadderConfig {
                prior_us: [1, 50_000, 20_000, 10_000, 1, 1],
                min_samples: u64::MAX, // pin costs to the priors
            },
            ..FrontendConfig::default()
        }
    }

    #[test]
    fn healthy_requests_serve_on_full_fidelity() {
        let mut fe = ServeFrontend::new(MockExec::healthy(), cfg());
        let out = fe.process_wave((0..4).map(|_| ("od", None)));
        assert_eq!(out.len(), 4);
        for r in &out {
            match r {
                Response::Served {
                    rung,
                    seconds,
                    deadline_met,
                    downgraded,
                    ..
                } => {
                    assert_eq!(*rung, Rung::Full);
                    assert_eq!(*seconds, 600.0);
                    assert!(*deadline_met);
                    assert!(!*downgraded);
                }
                other => panic!("expected Served, got {other:?}"),
            }
        }
        let s = fe.snapshot();
        assert_eq!(s.served, 4);
        assert_eq!(s.rung_hits[Rung::Full.index()], 4);
        assert_eq!(s.deadline_met, 4);
    }

    #[test]
    fn fresh_probe_serves_from_the_cached_rung() {
        let mut exec = MockExec::healthy();
        exec.probe_result = Some(CacheProbe::Fresh);
        let mut fe = ServeFrontend::new(exec, cfg());
        let out = fe.process_wave([("od", None)]);
        match &out[0] {
            Response::Served {
                rung,
                seconds,
                downgraded,
                ..
            } => {
                assert_eq!(*rung, Rung::Cached);
                assert_eq!(*seconds, 550.0);
                assert!(!*downgraded, "a fresh cache hit is not a downgrade");
            }
            other => panic!("expected Served, got {other:?}"),
        }
        assert_eq!(fe.snapshot().rung_hits[Rung::Cached.index()], 1);
    }

    #[test]
    fn stale_probe_only_answers_when_model_rungs_do_not_fit() {
        let mut exec = MockExec::healthy();
        exec.probe_result = Some(CacheProbe::Stale);
        let mut fe = ServeFrontend::new(exec, cfg());
        // Plenty of budget: live inference outranks the stale tier.
        let out = fe.process_wave([("od", None)]);
        assert!(matches!(
            &out[0],
            Response::Served {
                rung: Rung::Full,
                ..
            }
        ));
        // 5ms budget: no model rung fits the priors, the stale tier does.
        let out = fe.process_wave([("od", Some(5_000u64))]);
        match &out[0] {
            Response::Served {
                rung,
                seconds,
                downgraded,
                ..
            } => {
                assert_eq!(*rung, Rung::CachedStale);
                assert_eq!(*seconds, 650.0);
                assert!(*downgraded);
            }
            other => panic!("expected Served, got {other:?}"),
        }
    }

    #[test]
    fn cache_miss_leaves_cache_rungs_untouched() {
        let mut exec = MockExec::healthy();
        exec.probe_result = Some(CacheProbe::Miss);
        let mut fe = ServeFrontend::new(exec, cfg());
        let out = fe.process_wave([("od", None), ("od", Some(5_000u64))]);
        assert!(out.iter().all(Response::is_served));
        let s = fe.snapshot();
        assert_eq!(s.rung_hits[Rung::Cached.index()], 0);
        assert_eq!(s.rung_hits[Rung::CachedStale.index()], 0);
        assert!(!fe.executor_mut().calls.iter().any(|r| r.is_cache()));
    }

    #[test]
    fn cached_rung_failures_trip_its_breaker_and_fall_through() {
        let mut exec = MockExec::healthy();
        exec.probe_result = Some(CacheProbe::Fresh);
        exec.panic[Rung::Cached.index()] = true;
        let mut fe = ServeFrontend::new(
            exec,
            FrontendConfig {
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    base_backoff_us: 60_000_000,
                    ..BreakerConfig::default()
                },
                ..cfg()
            },
        );
        let out = fe.process_wave((0..4).map(|_| ("od", None)));
        assert!(out.iter().all(Response::is_served));
        let s = fe.snapshot();
        // Every request still answered — by Full once the cache rung's
        // own breaker opened.
        assert_eq!(s.rung_hits[Rung::Full.index()], 4);
        assert_eq!(s.breaker_trips[Rung::Cached.index()], 1);
        assert_eq!(s.rung_failures[Rung::Cached.index()], 2);
        assert_eq!(fe.breaker_state(Rung::Cached), Some(BreakerState::Open));
    }

    #[test]
    fn tight_deadline_selects_a_faster_rung() {
        let mut fe = ServeFrontend::new(MockExec::healthy(), cfg());
        // Budget 15ms: priors say only DdimReduced (10ms) and Fallback fit.
        // Queue wait eats into the budget, so accept either of the two.
        let out = fe.process_wave([("od", Some(15_000u64))]);
        match &out[0] {
            Response::Served {
                rung, downgraded, ..
            } => {
                assert!(rung.index() >= Rung::DdimReduced.index(), "{rung:?}");
                assert!(*downgraded);
            }
            other => panic!("expected Served, got {other:?}"),
        }
    }

    #[test]
    fn failures_descend_the_ladder_not_the_request() {
        let mut exec = MockExec::healthy();
        exec.fail[Rung::Full.index()] = true; // Full errors
        exec.panic[Rung::Ddim.index()] = true; // Ddim panics
        exec.value[Rung::DdimReduced.index()] = f64::NAN; // poisoned output
        let mut fe = ServeFrontend::new(exec, cfg());
        let out = fe.process_wave([("od", None)]);
        match &out[0] {
            Response::Served { rung, seconds, .. } => {
                assert_eq!(*rung, Rung::Fallback);
                assert_eq!(*seconds, 900.0);
            }
            other => panic!("expected Served, got {other:?}"),
        }
        let s = fe.snapshot();
        assert_eq!(
            s.rung_failures[Rung::Full.index()..=Rung::DdimReduced.index()],
            [1, 1, 1]
        );
        assert_eq!(s.rung_hits[Rung::Fallback.index()], 1);
    }

    #[test]
    fn repeated_failures_trip_the_breaker_and_route_around() {
        let mut exec = MockExec::healthy();
        exec.fail[Rung::Full.index()] = true;
        let mut fe = ServeFrontend::new(
            exec,
            FrontendConfig {
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    base_backoff_us: 60_000_000, // stays open for the test
                    ..BreakerConfig::default()
                },
                ..cfg()
            },
        );
        let out = fe.process_wave((0..5).map(|_| ("od", None)));
        assert!(out.iter().all(Response::is_served));
        assert_eq!(fe.breaker_state(Rung::Full), Some(BreakerState::Open));
        let s = fe.snapshot();
        assert_eq!(s.breaker_trips[Rung::Full.index()], 1);
        // Once open, Full is not attempted: exactly 3 failures recorded.
        assert_eq!(s.rung_failures[Rung::Full.index()], 3);
        assert_eq!(
            s.rung_hits[Rung::Ddim.index()],
            5,
            "all five served by Ddim"
        );
    }

    #[test]
    fn queue_flood_sheds_by_policy() {
        let mut fe = ServeFrontend::new(
            MockExec::healthy(),
            FrontendConfig {
                queue_capacity: 4,
                ..cfg()
            },
        );
        let out = fe.process_wave((0..10).map(|_| ("od", None)));
        let served = out.iter().filter(|r| r.is_served()).count();
        let shed = out.len() - served;
        assert_eq!((served, shed), (4, 6));
        let s = fe.snapshot();
        assert_eq!(s.shed_queue_full, 6);
        assert!(out.iter().any(|r| matches!(
            r,
            Response::Shed {
                reason: ShedReason::QueueFull,
                ..
            }
        )));
    }

    #[test]
    fn invalid_queries_are_refused_at_admission() {
        let mut exec = MockExec::healthy();
        exec.reject_marker = Some("bad");
        let mut fe = ServeFrontend::new(exec, cfg());
        let out = fe.process_wave([("ok", None), ("bad od", None), ("ok", None)]);
        let shed: Vec<_> = out.iter().filter(|r| !r.is_served()).collect();
        assert_eq!(shed.len(), 1);
        assert!(matches!(
            shed[0],
            Response::Shed {
                reason: ShedReason::InvalidQuery,
                ..
            }
        ));
        assert_eq!(fe.snapshot().shed_invalid, 1);
        // Invalid queries never reach the executor.
        assert_eq!(fe.executor_mut().calls.len(), 2);
    }

    #[test]
    fn tracing_attributes_request_spans_and_retains_breaches() {
        /// Sleeps long enough that a 1 ms budget is always breached.
        struct SlowExec;
        impl RungExecutor for SlowExec {
            type Query = &'static str;
            fn execute(&mut self, _r: Rung, _q: &Self::Query) -> Result<f64, String> {
                std::thread::sleep(std::time::Duration::from_millis(3));
                Ok(1.0)
            }
        }
        let _gate = trace_test_gate();
        odt_obs::trace::set_sample_every(1);
        let mut fe = ServeFrontend::new(
            SlowExec,
            FrontendConfig {
                slo: Some(odt_obs::slo::BurnRateConfig::for_drill()),
                ..cfg()
            },
        );
        let out = fe.process_wave([("od", Some(1_000u64))]);
        odt_obs::trace::set_sample_every(0);
        let traces = odt_obs::trace::retained_traces();
        let t = traces
            .iter()
            .rev()
            .find(|t| t.root_name == "serve.request" && t.request_id == Some(0))
            .expect("breached request force-retained");
        assert!(!t.retain_reasons.is_empty(), "{:?}", t.retain_reasons);
        let names: Vec<&str> = t.spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"serve.request"), "{names:?}");
        assert!(names.contains(&"serve.queue_wait"), "{names:?}");
        if let Response::Served { deadline_met, .. } = &out[0] {
            assert!(!deadline_met, "3ms service cannot meet a 1ms budget");
            assert!(
                names.iter().any(|n| n.starts_with("serve.rung.")),
                "rung attempt span present: {names:?}"
            );
            assert!(
                t.retain_reasons.contains(&"deadline_breach")
                    || t.retain_reasons.contains(&"fallback_rung"),
                "{:?}",
                t.retain_reasons
            );
        }
        // Every span except the root parents inside the trace.
        for s in &t.spans {
            if s.name != "serve.request" {
                assert!(s.parent_id >= 1, "{s:?}");
            }
        }
        let slo = fe.snapshot().slo.expect("slo monitor configured");
        assert_eq!(slo.total, 1);
        assert_eq!(slo.errors, 1, "breach counts against the SLO");
    }

    #[test]
    fn zero_budget_at_dequeue_is_a_typed_rejection_not_a_panic() {
        // A request whose budget is already gone when it is dequeued must
        // shed with the typed queue_expired reason — straight out, no rung
        // attempt, no panic (satellite: the zero/negative-budget boundary).
        let mut fe = ServeFrontend::new(MockExec::healthy(), cfg());
        let out = fe.process_wave([("od", Some(0u64))]);
        match &out[0] {
            Response::Shed { reason, .. } => {
                assert_eq!(*reason, ShedReason::DeadlineExpiredInQueue);
                assert_eq!(reason.name(), "queue_expired");
            }
            other => panic!("expected queue_expired shed, got {other:?}"),
        }
        let s = fe.snapshot();
        assert_eq!(s.shed_deadline, 1);
        assert_eq!(s.served, 0);
        // The executor was never invoked for the expired request.
        assert!(fe.executor_mut().calls.is_empty());
    }

    #[test]
    fn reject_oldest_eviction_of_expired_request_counts_queue_expired() {
        let mut fe = ServeFrontend::new(
            MockExec::healthy(),
            FrontendConfig {
                queue_capacity: 1,
                shed_policy: ShedPolicy::RejectOldest,
                ..cfg()
            },
        );
        // First request: zero budget, so it is expired the moment it sits
        // in the queue. Second request evicts it (capacity 1).
        let a = fe.submit("a", Some(0));
        assert!(a.is_ok(), "first request admits");
        let b = fe.submit("b", Some(1_000_000));
        match b {
            Err(Response::Shed { id, reason, .. }) => {
                assert_eq!(id, 0, "the evicted oldest request is the shed one");
                assert_eq!(reason, ShedReason::DeadlineExpiredInQueue);
            }
            other => panic!("expected eviction shed, got {other:?}"),
        }
        let s = fe.snapshot();
        assert_eq!(
            (s.shed_deadline, s.shed_queue_full),
            (1, 0),
            "expired eviction is queue_expired, not folded into queue_full"
        );
        // The fresh request still serves.
        let out = fe.drain();
        assert_eq!(out.len(), 1);
        assert!(out[0].is_served());
    }

    #[test]
    fn reject_oldest_eviction_of_live_request_still_counts_queue_full() {
        let mut fe = ServeFrontend::new(
            MockExec::healthy(),
            FrontendConfig {
                queue_capacity: 1,
                shed_policy: ShedPolicy::RejectOldest,
                ..cfg()
            },
        );
        fe.submit("a", Some(1_000_000)).unwrap();
        match fe.submit("b", Some(1_000_000)) {
            Err(Response::Shed { reason, .. }) => {
                assert_eq!(reason, ShedReason::QueueFull);
            }
            other => panic!("expected queue_full shed, got {other:?}"),
        }
        let s = fe.snapshot();
        assert_eq!((s.shed_deadline, s.shed_queue_full), (0, 1));
    }

    #[test]
    fn wire_trace_ids_are_adopted_by_the_request_root_span() {
        let _gate = trace_test_gate();
        odt_obs::trace::set_sample_every(u64::MAX); // sampling would drop
        let wire = odt_obs::TraceId::from_hex("0000000000c0ffee").unwrap();
        let mut fe = ServeFrontend::new(MockExec::healthy(), cfg());
        fe.submit_traced("od", None, Some(wire), 7).unwrap();
        let out = fe.drain();
        odt_obs::trace::set_sample_every(0);
        assert!(out[0].is_served());
        let traces = odt_obs::trace::retained_traces();
        let t = traces
            .iter()
            .find(|t| t.trace_id == wire)
            .expect("adopted wire trace retained");
        assert_eq!(t.root_name, "serve.request");
        assert_eq!(t.request_id, Some(0));
        assert_eq!(t.parent_span, 7);
    }

    #[test]
    fn terminal_rung_failure_sheds_internal() {
        let mut exec = MockExec::healthy();
        exec.fail = [true; NUM_RUNGS];
        let mut fe = ServeFrontend::new(exec, cfg());
        let out = fe.process_wave([("od", None)]);
        assert!(matches!(
            &out[0],
            Response::Shed {
                reason: ShedReason::Internal,
                ..
            }
        ));
        assert_eq!(fe.snapshot().shed_internal, 1);
    }
}
