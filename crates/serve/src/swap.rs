//! Zero-downtime hot model swap: a bounded-work state machine that
//! validates, shadow-scores and promotes a candidate checkpoint while
//! serving never pauses.
//!
//! The controller runs on the dispatcher thread, driven from the same
//! idle tick that steps the shadow scorer and the cache prewarmer —
//! each [`SwapController::tick`] does one bounded unit of work, so a
//! swap in progress steals microseconds, not the serving loop:
//!
//! ```text
//! Idle ──request──▶ Loading ──load ok──▶ Shadowing ──gate──▶ promote
//!   ▲                  │ load/validate fail          │ drift fail
//!   └──────────────────┴────────── reject ◀──────────┘
//! ```
//!
//! * **Loading** — one tick: the host reads and validates the candidate
//!   (CRC framing, schema, grid shape). Any failure is a typed
//!   [`SwapError`] and the swap is rejected without touching serving.
//! * **Shadowing** — one holdout batch per tick: the host scores the
//!   candidate *and* the serving model against the same frozen
//!   ground-truth slice. When [`SwapConfig::shadow_samples`] have been
//!   scored, the gate compares MAEs: the candidate must not be worse
//!   than `serving_mae * max_mae_ratio + mae_slack_s`.
//! * **Promote** — one tick: the host installs the candidate as the
//!   live model (for the DOT stack: leak, slot swap, cache
//!   invalidation, registry promotion) and reports the new version.
//!
//! The controller is generic over [`SwapHost`] so the state machine is
//! testable with a fake host — no trained model, no filesystem. The
//! production host is [`crate::dot::DotSwapHost`].

use std::sync::mpsc;

use odt_obs::{counter, event, Level};

/// Why a swap was refused. `code()` is the stable wire-facing name
/// reported by `POST /swap` and counted in varz.
#[derive(Clone, Debug)]
pub enum SwapError {
    /// A swap is already in flight; one at a time.
    Busy,
    /// The candidate could not be read at all (I/O, missing file).
    Load(String),
    /// The candidate failed integrity validation (bad magic, CRC
    /// mismatch, truncation, non-finite parameters).
    Corrupt(String),
    /// The candidate parses but its grid/parameter shape does not match
    /// what this process serves.
    ShapeMismatch(String),
    /// The candidate shadow-scored worse than the drift gate allows.
    DriftFailed {
        /// Candidate MAE over the shadow holdout, seconds.
        cand_mae_s: f64,
        /// Serving model MAE over the same holdout, seconds.
        serving_mae_s: f64,
    },
}

impl SwapError {
    /// Stable short name for wire responses and metrics.
    pub fn code(&self) -> &'static str {
        match self {
            SwapError::Busy => "busy",
            SwapError::Load(_) => "load_failed",
            SwapError::Corrupt(_) => "corrupt",
            SwapError::ShapeMismatch(_) => "shape_mismatch",
            SwapError::DriftFailed { .. } => "drift_failed",
        }
    }
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::Busy => write!(f, "a swap is already in progress"),
            SwapError::Load(detail) => write!(f, "candidate load failed: {detail}"),
            SwapError::Corrupt(detail) => write!(f, "candidate corrupt: {detail}"),
            SwapError::ShapeMismatch(detail) => {
                write!(f, "candidate shape mismatch: {detail}")
            }
            SwapError::DriftFailed {
                cand_mae_s,
                serving_mae_s,
            } => write!(
                f,
                "candidate failed the shadow drift gate: \
                 candidate mae {cand_mae_s:.3}s vs serving mae {serving_mae_s:.3}s"
            ),
        }
    }
}

impl std::error::Error for SwapError {}

/// How much shadow evidence a candidate must survive before promotion.
#[derive(Clone, Copy, Debug)]
pub struct SwapConfig {
    /// Holdout samples to score before the gate decides. `0` skips
    /// shadow scoring entirely (promote straight after validation).
    pub shadow_samples: usize,
    /// The candidate is rejected when its shadow MAE exceeds
    /// `serving_mae * max_mae_ratio + mae_slack_s`.
    pub max_mae_ratio: f64,
    /// Absolute slack (seconds) added to the gate — keeps tiny-MAE
    /// serving models from rejecting candidates over noise.
    pub mae_slack_s: f64,
}

impl Default for SwapConfig {
    fn default() -> Self {
        SwapConfig {
            shadow_samples: 64,
            max_mae_ratio: 1.25,
            mae_slack_s: 1.0,
        }
    }
}

/// How a concluded swap ended.
#[derive(Clone, Debug)]
pub enum SwapOutcome {
    /// The candidate passed every gate and is now the serving model.
    Promoted {
        /// Registry version the candidate was promoted as.
        version: u64,
        /// Candidate shadow MAE (seconds; 0 when shadowing was skipped).
        cand_mae_s: f64,
        /// Serving-model shadow MAE over the same holdout.
        serving_mae_s: f64,
    },
    /// The candidate was refused; serving is untouched.
    Rejected(SwapError),
}

impl SwapOutcome {
    /// `true` for [`SwapOutcome::Promoted`].
    pub fn promoted(&self) -> bool {
        matches!(self, SwapOutcome::Promoted { .. })
    }
}

/// What the swap machinery needs from the model stack. One bounded call
/// per tick; the host owns holdout data, batch size and the mechanics
/// of installing a model.
pub trait SwapHost {
    /// A loaded-and-validated candidate awaiting promotion.
    type Model;

    /// Read and validate the candidate at `path`: integrity framing,
    /// schema, grid shape against the serving model. Must not disturb
    /// serving.
    fn load(&mut self, path: &str) -> Result<Self::Model, SwapError>;

    /// Score one holdout batch with both the candidate and the serving
    /// model. Returns `(candidate_abs_err_sum, serving_abs_err_sum,
    /// samples)` in seconds; `samples == 0` means the holdout is
    /// exhausted/empty and the controller stops asking.
    fn shadow_batch(&mut self, model: &mut Self::Model) -> (f64, f64, usize);

    /// Install the candidate as the live serving model and return its
    /// new version number. Every quality gate has already passed, but
    /// the install itself may still fail (registry I/O); on `Err` the
    /// serving model must be left untouched.
    fn promote(&mut self, model: Self::Model) -> Result<u64, SwapError>;
}

enum SwapState<M> {
    Idle,
    /// Request accepted; the candidate loads on the next tick.
    Loading {
        path: String,
    },
    Shadowing {
        model: M,
        cand_err_sum: f64,
        serving_err_sum: f64,
        scored: usize,
    },
}

impl<M> SwapState<M> {
    fn name(&self) -> &'static str {
        match self {
            SwapState::Idle => "idle",
            SwapState::Loading { .. } => "loading",
            SwapState::Shadowing { .. } => "shadowing",
        }
    }
}

/// Counters and state for varz / `POST /swap` reporting.
#[derive(Clone, Debug)]
pub struct SwapStats {
    /// Current state name: `idle` / `loading` / `shadowing`.
    pub state: &'static str,
    /// Swap requests accepted (not counting `busy` refusals).
    pub requested: u64,
    /// Candidates promoted to serving.
    pub promoted: u64,
    /// Candidates rejected by any gate.
    pub rejected: u64,
    /// Error code of the most recent rejection, if any.
    pub last_reject_code: Option<&'static str>,
    /// Version of the most recent promotion, if any.
    pub last_promoted_version: Option<u64>,
}

/// The swap state machine. Owns the host; driven by `tick()` from the
/// dispatcher's idle loop. At most one swap is in flight at a time.
pub struct SwapController<H: SwapHost> {
    host: H,
    cfg: SwapConfig,
    state: SwapState<H::Model>,
    reply: Option<mpsc::Sender<SwapOutcome>>,
    requested: u64,
    promoted: u64,
    rejected: u64,
    last_reject_code: Option<&'static str>,
    last_promoted_version: Option<u64>,
}

impl<H: SwapHost> SwapController<H> {
    /// A controller over `host` with the given gate configuration.
    pub fn new(host: H, cfg: SwapConfig) -> Self {
        SwapController {
            host,
            cfg,
            state: SwapState::Idle,
            reply: None,
            requested: 0,
            promoted: 0,
            rejected: 0,
            last_reject_code: None,
            last_promoted_version: None,
        }
    }

    /// The wrapped host.
    pub fn host(&self) -> &H {
        &self.host
    }

    /// Mutable access to the wrapped host.
    pub fn host_mut(&mut self) -> &mut H {
        &mut self.host
    }

    /// Accept a swap request for the checkpoint at `path`. The outcome
    /// is delivered on `reply` (if provided) once the machine concludes,
    /// ticks later. Refuses with [`SwapError::Busy`] when a swap is
    /// already in flight — the in-flight swap is unaffected.
    pub fn request(
        &mut self,
        path: &str,
        reply: Option<mpsc::Sender<SwapOutcome>>,
    ) -> Result<(), SwapError> {
        if !matches!(self.state, SwapState::Idle) {
            counter("swap.busy_refused").inc();
            return Err(SwapError::Busy);
        }
        self.requested += 1;
        counter("swap.requested").inc();
        event(Level::Info, "swap.requested")
            .field("path", path)
            .emit();
        self.state = SwapState::Loading {
            path: path.to_string(),
        };
        self.reply = reply;
        Ok(())
    }

    /// `true` while a swap is in flight (loading or shadowing).
    pub fn busy(&self) -> bool {
        !matches!(self.state, SwapState::Idle)
    }

    /// Counters and current state.
    pub fn stats(&self) -> SwapStats {
        SwapStats {
            state: self.state.name(),
            requested: self.requested,
            promoted: self.promoted,
            rejected: self.rejected,
            last_reject_code: self.last_reject_code,
            last_promoted_version: self.last_promoted_version,
        }
    }

    /// One bounded unit of swap work. Returns the outcome on the tick
    /// that concludes a swap, `None` otherwise (including when idle).
    pub fn tick(&mut self) -> Option<SwapOutcome> {
        match std::mem::replace(&mut self.state, SwapState::Idle) {
            SwapState::Idle => None,
            SwapState::Loading { path } => match self.host.load(&path) {
                Ok(model) => {
                    if self.cfg.shadow_samples == 0 {
                        return Some(self.conclude_promote(model, 0.0, 0.0));
                    }
                    self.state = SwapState::Shadowing {
                        model,
                        cand_err_sum: 0.0,
                        serving_err_sum: 0.0,
                        scored: 0,
                    };
                    None
                }
                Err(e) => Some(self.conclude_reject(e)),
            },
            SwapState::Shadowing {
                mut model,
                mut cand_err_sum,
                mut serving_err_sum,
                mut scored,
            } => {
                let (c, s, n) = self.host.shadow_batch(&mut model);
                cand_err_sum += c;
                serving_err_sum += s;
                scored += n;
                if n > 0 && scored < self.cfg.shadow_samples {
                    self.state = SwapState::Shadowing {
                        model,
                        cand_err_sum,
                        serving_err_sum,
                        scored,
                    };
                    return None;
                }
                // Enough evidence (or the holdout ran dry): gate.
                let (cand_mae, serving_mae) = if scored > 0 {
                    (
                        cand_err_sum / scored as f64,
                        serving_err_sum / scored as f64,
                    )
                } else {
                    (0.0, 0.0)
                };
                let ceiling = serving_mae * self.cfg.max_mae_ratio + self.cfg.mae_slack_s;
                if scored > 0 && (!cand_mae.is_finite() || cand_mae > ceiling) {
                    return Some(self.conclude_reject(SwapError::DriftFailed {
                        cand_mae_s: cand_mae,
                        serving_mae_s: serving_mae,
                    }));
                }
                Some(self.conclude_promote(model, cand_mae, serving_mae))
            }
        }
    }

    fn conclude_promote(
        &mut self,
        model: H::Model,
        cand_mae: f64,
        serving_mae: f64,
    ) -> SwapOutcome {
        let version = match self.host.promote(model) {
            Ok(v) => v,
            Err(e) => return self.conclude_reject(e),
        };
        self.promoted += 1;
        self.last_promoted_version = Some(version);
        counter("swap.promoted").inc();
        event(Level::Info, "swap.promoted")
            .field("version", version)
            .field("cand_mae_s", cand_mae)
            .field("serving_mae_s", serving_mae)
            .emit();
        let outcome = SwapOutcome::Promoted {
            version,
            cand_mae_s: cand_mae,
            serving_mae_s: serving_mae,
        };
        self.finish(&outcome);
        outcome
    }

    fn conclude_reject(&mut self, error: SwapError) -> SwapOutcome {
        self.rejected += 1;
        self.last_reject_code = Some(error.code());
        counter("swap.rejected").inc();
        event(Level::Warn, "swap.rejected")
            .field("code", error.code())
            .field("detail", error.to_string())
            .emit();
        let outcome = SwapOutcome::Rejected(error);
        self.finish(&outcome);
        outcome
    }

    fn finish(&mut self, outcome: &SwapOutcome) {
        self.state = SwapState::Idle;
        if let Some(reply) = self.reply.take() {
            // The requester may have timed out and dropped the receiver;
            // that must not poison the serving loop.
            reply.send(outcome.clone()).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted host: candidate "models" are just labels, behaviour is
    /// keyed on the requested path.
    struct FakeHost {
        /// Per-batch candidate MAE (seconds) the shadow phase reports.
        cand_mae: f64,
        /// Per-batch serving MAE.
        serving_mae: f64,
        batch: usize,
        next_version: u64,
        promoted_paths: Vec<String>,
        shadow_calls: usize,
    }

    impl FakeHost {
        fn new(cand_mae: f64, serving_mae: f64) -> Self {
            FakeHost {
                cand_mae,
                serving_mae,
                batch: 8,
                next_version: 1,
                promoted_paths: Vec::new(),
                shadow_calls: 0,
            }
        }
    }

    impl SwapHost for FakeHost {
        type Model = String;

        fn load(&mut self, path: &str) -> Result<String, SwapError> {
            match path {
                p if p.contains("corrupt") => Err(SwapError::Corrupt("crc32 mismatch".into())),
                p if p.contains("wrong_shape") => {
                    Err(SwapError::ShapeMismatch("lg 8 != serving lg 16".into()))
                }
                p if p.contains("missing") => Err(SwapError::Load("no such file".into())),
                p => Ok(p.to_string()),
            }
        }

        fn shadow_batch(&mut self, _model: &mut String) -> (f64, f64, usize) {
            self.shadow_calls += 1;
            let n = self.batch;
            (self.cand_mae * n as f64, self.serving_mae * n as f64, n)
        }

        fn promote(&mut self, model: String) -> Result<u64, SwapError> {
            self.promoted_paths.push(model);
            let v = self.next_version;
            self.next_version += 1;
            Ok(v)
        }
    }

    fn drive_to_conclusion<H: SwapHost>(c: &mut SwapController<H>) -> SwapOutcome {
        for _ in 0..1000 {
            if let Some(outcome) = c.tick() {
                return outcome;
            }
        }
        panic!("swap did not conclude within 1000 ticks");
    }

    #[test]
    fn good_candidate_is_shadow_scored_then_promoted() {
        let cfg = SwapConfig {
            shadow_samples: 32,
            ..SwapConfig::default()
        };
        let (tx, rx) = mpsc::channel();
        let mut c = SwapController::new(FakeHost::new(10.0, 11.0), cfg);
        c.request("/tmp/v2.dotckpt", Some(tx)).unwrap();
        assert!(c.busy());
        assert_eq!(c.stats().state, "loading");
        let outcome = drive_to_conclusion(&mut c);
        match &outcome {
            SwapOutcome::Promoted {
                version,
                cand_mae_s,
                serving_mae_s,
            } => {
                assert_eq!(*version, 1);
                assert!((cand_mae_s - 10.0).abs() < 1e-9);
                assert!((serving_mae_s - 11.0).abs() < 1e-9);
            }
            other => panic!("expected promotion, got {other:?}"),
        }
        // 32 samples at batch 8 = exactly 4 shadow ticks.
        assert_eq!(c.host().shadow_calls, 4);
        assert_eq!(c.host().promoted_paths, vec!["/tmp/v2.dotckpt"]);
        assert!(!c.busy());
        assert!(matches!(rx.try_recv(), Ok(SwapOutcome::Promoted { .. })));
        let stats = c.stats();
        assert_eq!((stats.promoted, stats.rejected), (1, 0));
        assert_eq!(stats.last_promoted_version, Some(1));
    }

    #[test]
    fn corrupt_and_misshapen_candidates_are_rejected_with_typed_codes() {
        for (path, want) in [
            ("/tmp/corrupt.dotckpt", "corrupt"),
            ("/tmp/wrong_shape.dotckpt", "shape_mismatch"),
            ("/tmp/missing.dotckpt", "load_failed"),
        ] {
            let mut c = SwapController::new(FakeHost::new(1.0, 1.0), SwapConfig::default());
            c.request(path, None).unwrap();
            let outcome = drive_to_conclusion(&mut c);
            match &outcome {
                SwapOutcome::Rejected(e) => assert_eq!(e.code(), want, "{path}"),
                other => panic!("expected rejection for {path}, got {other:?}"),
            }
            assert!(
                c.host().promoted_paths.is_empty(),
                "{path} must not promote"
            );
            assert_eq!(c.stats().last_reject_code, Some(want));
            assert!(!c.busy(), "machine must return to idle after {path}");
        }
    }

    #[test]
    fn drift_failing_candidate_is_rejected_and_serving_untouched() {
        // Serving MAE 10s; gate ceiling = 10*1.25 + 1 = 13.5s; candidate 40s.
        let mut c = SwapController::new(FakeHost::new(40.0, 10.0), SwapConfig::default());
        c.request("/tmp/bad_model.dotckpt", None).unwrap();
        let outcome = drive_to_conclusion(&mut c);
        match &outcome {
            SwapOutcome::Rejected(SwapError::DriftFailed {
                cand_mae_s,
                serving_mae_s,
            }) => {
                assert!((cand_mae_s - 40.0).abs() < 1e-9);
                assert!((serving_mae_s - 10.0).abs() < 1e-9);
            }
            other => panic!("expected drift rejection, got {other:?}"),
        }
        assert_eq!(outcome.promoted(), false);
        assert!(c.host().promoted_paths.is_empty());
        assert_eq!(c.stats().last_reject_code, Some("drift_failed"));
    }

    #[test]
    fn slightly_worse_candidate_passes_within_ratio_and_slack() {
        // 12s vs serving 10s is within 10*1.25+1 = 13.5s.
        let mut c = SwapController::new(FakeHost::new(12.0, 10.0), SwapConfig::default());
        c.request("/tmp/v3.dotckpt", None).unwrap();
        assert!(drive_to_conclusion(&mut c).promoted());
    }

    #[test]
    fn concurrent_swap_is_refused_busy_without_disturbing_the_first() {
        let (tx, rx) = mpsc::channel();
        let mut c = SwapController::new(FakeHost::new(1.0, 1.0), SwapConfig::default());
        c.request("/tmp/first.dotckpt", Some(tx)).unwrap();
        let err = c.request("/tmp/second.dotckpt", None).unwrap_err();
        assert_eq!(err.code(), "busy");
        let outcome = drive_to_conclusion(&mut c);
        assert!(outcome.promoted());
        assert_eq!(c.host().promoted_paths, vec!["/tmp/first.dotckpt"]);
        assert!(matches!(rx.try_recv(), Ok(SwapOutcome::Promoted { .. })));
        // The machine is idle again: a new request is accepted now.
        c.request("/tmp/second.dotckpt", None).unwrap();
    }

    #[test]
    fn zero_shadow_samples_promotes_straight_after_validation() {
        let cfg = SwapConfig {
            shadow_samples: 0,
            ..SwapConfig::default()
        };
        let mut c = SwapController::new(FakeHost::new(999.0, 1.0), cfg);
        c.request("/tmp/v9.dotckpt", None).unwrap();
        assert!(drive_to_conclusion(&mut c).promoted());
        assert_eq!(c.host().shadow_calls, 0, "shadowing skipped entirely");
    }

    #[test]
    fn empty_holdout_promotes_without_a_gate() {
        struct NoHoldout(FakeHost);
        impl SwapHost for NoHoldout {
            type Model = String;
            fn load(&mut self, path: &str) -> Result<String, SwapError> {
                self.0.load(path)
            }
            fn shadow_batch(&mut self, _m: &mut String) -> (f64, f64, usize) {
                (0.0, 0.0, 0)
            }
            fn promote(&mut self, m: String) -> Result<u64, SwapError> {
                self.0.promote(m)
            }
        }
        let mut c = SwapController::new(NoHoldout(FakeHost::new(1.0, 1.0)), SwapConfig::default());
        c.request("/tmp/v1.dotckpt", None).unwrap();
        assert!(drive_to_conclusion(&mut c).promoted());
    }

    #[test]
    fn dropped_reply_receiver_does_not_poison_the_machine() {
        let (tx, rx) = mpsc::channel();
        drop(rx);
        let mut c = SwapController::new(FakeHost::new(1.0, 1.0), SwapConfig::default());
        c.request("/tmp/v1.dotckpt", Some(tx)).unwrap();
        assert!(drive_to_conclusion(&mut c).promoted());
        assert!(!c.busy());
    }
}
