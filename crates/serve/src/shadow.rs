//! Shadow holdout scoring: replaying ground-truth queries through the
//! live oracle to measure model quality *in production*.
//!
//! The training pipeline holds out a slice of trajectories whose true
//! travel times are known. [`ShadowScorer`] owns those `(query, actual)`
//! pairs and, on every idle tick of the serving loop, replays a small
//! batch through the caller-supplied predictor, feeding the resulting
//! `(predicted, actual)` pairs into an [`odt_obs::QualityTracker`]. The
//! tracker maintains windowed MAE/MAPE/bias gauges and a quantile-shift
//! drift score against a frozen reference window; when live accuracy
//! drifts, the tracker raises the edge-triggered alert, burns the
//! accuracy SLO and triggers a flight-recorder dump (see
//! `odt_obs::quality`).
//!
//! Design constraints:
//!
//! * **Off the request path.** The scorer is driven by an explicit
//!   [`ShadowScorer::step`] call with a caller-supplied clock — the
//!   network dispatcher calls it from its idle tick, never while a
//!   client request is in flight. Throttling lives here
//!   ([`ShadowConfig::min_interval_us`]) so the tick can be called as
//!   often as convenient.
//! * **Backend-agnostic.** Prediction is a closure over a batch of
//!   queries, so the scorer neither knows about `Dot` (which is
//!   `!Send`, `Rc`-based) nor forces a threading model. The dispatcher
//!   thread that owns the backend is the one that steps the scorer.
//! * **Deterministic.** The holdout is replayed in order, wrapping
//!   around; no sampling randomness. Two runs over the same holdout and
//!   clock produce identical tracker states.

use odt_obs::{QualityConfig, QualitySnapshot, QualityTracker};

/// Pacing for shadow scoring — how much holdout work one idle tick does.
#[derive(Clone, Copy, Debug)]
pub struct ShadowConfig {
    /// Queries scored per [`ShadowScorer::step`] call.
    pub batch: usize,
    /// Minimum microseconds between scoring batches; earlier steps are
    /// no-ops. Keeps shadow load bounded regardless of tick frequency.
    pub min_interval_us: u64,
    /// Quality-window configuration handed to the embedded tracker.
    pub quality: QualityConfig,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        Self {
            batch: 8,
            min_interval_us: 200_000,
            quality: QualityConfig::default(),
        }
    }
}

impl ShadowConfig {
    /// Aggressive pacing for drills and tests: score every step, small
    /// quality windows so drift fires within one drill.
    pub fn for_drill() -> Self {
        Self {
            batch: 8,
            min_interval_us: 0,
            quality: QualityConfig::for_drill(),
        }
    }
}

/// Replays a ground-truth holdout through the live model and feeds the
/// quality tracker. Generic over the query type so tests don't need a
/// trained oracle.
pub struct ShadowScorer<Q> {
    holdout: Vec<(Q, f64)>,
    cursor: usize,
    cfg: ShadowConfig,
    tracker: QualityTracker,
    last_step_us: Option<u64>,
    scored: u64,
}

impl<Q> ShadowScorer<Q> {
    /// Build a scorer over `holdout` pairs of `(query, actual_seconds)`.
    /// Pairs with non-finite or non-positive ground truth are dropped up
    /// front (the tracker would reject them per sample anyway).
    pub fn new(holdout: Vec<(Q, f64)>, cfg: ShadowConfig) -> Self {
        let holdout: Vec<_> = holdout
            .into_iter()
            .filter(|(_, actual)| actual.is_finite() && *actual > 0.0)
            .collect();
        Self {
            holdout,
            cursor: 0,
            tracker: QualityTracker::new(cfg.quality),
            cfg: ShadowConfig {
                batch: cfg.batch.max(1),
                ..cfg
            },
            last_step_us: None,
            scored: 0,
        }
    }

    /// Number of usable holdout pairs.
    pub fn holdout_len(&self) -> usize {
        self.holdout.len()
    }

    /// Total samples scored so far.
    pub fn scored(&self) -> u64 {
        self.scored
    }

    /// The embedded tracker's current state.
    pub fn quality(&self, now_us: u64) -> QualitySnapshot {
        self.tracker.snapshot(now_us)
    }
}

impl<Q: Clone> ShadowScorer<Q> {
    /// Run one shadow batch if the throttle allows: takes the next
    /// `cfg.batch` holdout queries (wrapping), asks `predict` for their
    /// travel-time estimates (seconds, same order) and records each
    /// `(predicted, actual)` pair. Returns the number of samples scored
    /// (0 when throttled or the holdout is empty).
    ///
    /// `predict` returning fewer estimates than queries scores only the
    /// prefix; extra estimates are ignored. The batch queries are cloned
    /// (bounded by `cfg.batch`, 8 by default) so `predict` gets the
    /// contiguous `&[Q]` slice batch estimators want.
    pub fn step<F>(&mut self, now_us: u64, mut predict: F) -> usize
    where
        F: FnMut(&[Q]) -> Vec<f64>,
    {
        if self.holdout.is_empty() {
            return 0;
        }
        if let Some(last) = self.last_step_us {
            if now_us.saturating_sub(last) < self.cfg.min_interval_us {
                return 0;
            }
        }
        self.last_step_us = Some(now_us);

        let n = self.cfg.batch.min(self.holdout.len());
        let start = self.cursor;
        let mut queries = Vec::with_capacity(n);
        let mut actuals = Vec::with_capacity(n);
        for i in 0..n {
            let (q, actual) = &self.holdout[(start + i) % self.holdout.len()];
            queries.push(q.clone());
            actuals.push(*actual);
        }
        self.cursor = (start + n) % self.holdout.len();

        let preds = predict(&queries);
        let scored = preds.len().min(actuals.len());
        for (i, pred) in preds.into_iter().take(scored).enumerate() {
            self.tracker.record(pred, actuals[i], now_us);
        }
        self.scored += scored as u64;
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_obs::slo::BurnRateConfig;

    fn scorer(n: usize, cfg: ShadowConfig) -> ShadowScorer<u32> {
        // Query i has ground truth 100 + i seconds.
        ShadowScorer::new((0..n).map(|i| (i as u32, 100.0 + i as f64)).collect(), cfg)
    }

    #[test]
    fn drops_unusable_holdout_pairs() {
        let s = ShadowScorer::new(
            vec![(1u32, 100.0), (2, f64::NAN), (3, 0.0), (4, -5.0), (5, 7.0)],
            ShadowConfig::default(),
        );
        assert_eq!(s.holdout_len(), 2);
    }

    #[test]
    fn throttle_gates_batches_and_cursor_wraps() {
        let mut s = scorer(
            5,
            ShadowConfig {
                batch: 2,
                min_interval_us: 1_000,
                ..ShadowConfig::for_drill()
            },
        );
        let mut seen: Vec<u32> = Vec::new();
        let mut run = |s: &mut ShadowScorer<u32>, now| {
            s.step(now, |qs: &[u32]| {
                seen.extend_from_slice(qs);
                qs.iter().map(|&q| 100.0 + q as f64).collect()
            })
        };
        assert_eq!(run(&mut s, 0), 2);
        assert_eq!(run(&mut s, 500), 0, "throttled: only 500 µs elapsed");
        assert_eq!(run(&mut s, 1_000), 2);
        assert_eq!(run(&mut s, 2_000), 2, "wraps past the end");
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 0]);
        assert_eq!(s.scored(), 6);
    }

    #[test]
    fn empty_holdout_scores_nothing() {
        let mut s = scorer(0, ShadowConfig::for_drill());
        assert_eq!(s.step(0, |qs: &[u32]| vec![1.0; qs.len()]), 0);
        assert_eq!(s.quality(0).samples, 0);
    }

    #[test]
    fn short_prediction_scores_prefix_only() {
        let mut s = scorer(8, ShadowConfig::for_drill());
        assert_eq!(s.step(0, |_qs: &[u32]| vec![100.0, 101.0]), 2);
        assert_eq!(s.scored(), 2);
    }

    #[test]
    fn accurate_predictions_keep_quality_calm() {
        let mut s = scorer(64, ShadowConfig::for_drill());
        let mut now = 0u64;
        for _ in 0..32 {
            now += 10_000;
            s.step(now, |qs: &[u32]| {
                qs.iter().map(|&q| 100.0 + q as f64).collect()
            });
        }
        let q = s.quality(now);
        assert!(q.samples >= 64);
        assert!(q.mae_s < 1e-9, "perfect predictions: mae {}", q.mae_s);
        assert_eq!(q.drift_alerts, 0);
    }

    #[test]
    fn degraded_predictions_trip_drift_through_the_scorer() {
        let cfg = ShadowConfig {
            quality: QualityConfig {
                slo: Some(BurnRateConfig::for_drill()),
                ..QualityConfig::for_drill()
            },
            ..ShadowConfig::for_drill()
        };
        let mut s = scorer(64, cfg);
        let mut now = 0u64;
        // Healthy phase freezes the reference...
        for _ in 0..16 {
            now += 10_000;
            s.step(now, |qs: &[u32]| {
                qs.iter().map(|&q| 100.0 + q as f64).collect()
            });
        }
        assert!(s.quality(now).reference_frozen);
        // ...then the model goes stale: 60% underprediction.
        for _ in 0..16 {
            now += 10_000;
            s.step(now, |qs: &[u32]| {
                qs.iter().map(|&q| (100.0 + q as f64) * 0.4).collect()
            });
        }
        let q = s.quality(now);
        assert!(q.drift_alerting, "drift score {}", q.drift_score);
        assert!(q.drift_alerts >= 1);
    }
}
