//! The bounded admission queue in front of the oracle.
//!
//! Overload policy is explicit: the queue has a hard capacity and a
//! [`ShedPolicy`] deciding *which* request is refused when it is full —
//! the incoming one ([`ShedPolicy::RejectNewest`], default: first-come
//! first-served fairness) or the longest-waiting one
//! ([`ShedPolicy::RejectOldest`], freshest-data preference: the oldest
//! request is also the one most likely to blow its deadline anyway).
//! Every shed is counted (`serve.queue.shed`) and every dequeue records
//! the request's queue wait (`serve.queue.wait`).

use std::collections::VecDeque;

/// Which request to refuse when the admission queue is full.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the incoming request (FIFO fairness).
    RejectNewest,
    /// Drop the longest-waiting request and admit the incoming one.
    RejectOldest,
}

impl ShedPolicy {
    /// Short tag for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ShedPolicy::RejectNewest => "reject_newest",
            ShedPolicy::RejectOldest => "reject_oldest",
        }
    }
}

struct Enqueued<T> {
    item: T,
    enq_us: u64,
}

/// A bounded FIFO queue with an explicit load-shedding policy.
///
/// Time is supplied by the caller as microseconds on any monotonic clock
/// (the frontend uses micros since its epoch), which keeps the queue — and
/// everything built on it — deterministic under test.
pub struct AdmissionQueue<T> {
    capacity: usize,
    policy: ShedPolicy,
    q: VecDeque<Enqueued<T>>,
    shed: u64,
}

impl<T> AdmissionQueue<T> {
    /// A queue holding at most `capacity` (≥ 1) requests.
    pub fn new(capacity: usize, policy: ShedPolicy) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            policy,
            q: VecDeque::new(),
            shed: 0,
        }
    }

    /// Enqueue `item` at time `now_us`. On overflow, returns `Err` with the
    /// shed request: the incoming one under [`ShedPolicy::RejectNewest`],
    /// the oldest queued one under [`ShedPolicy::RejectOldest`] (the
    /// incoming request is then admitted in its place).
    pub fn push(&mut self, item: T, now_us: u64) -> Result<(), T> {
        if self.q.len() < self.capacity {
            self.q.push_back(Enqueued {
                item,
                enq_us: now_us,
            });
            odt_obs::gauge("serve.queue.depth").set(self.q.len() as f64);
            return Ok(());
        }
        self.shed += 1;
        odt_obs::counter("serve.queue.shed").inc();
        match self.policy {
            ShedPolicy::RejectNewest => Err(item),
            ShedPolicy::RejectOldest => {
                let oldest = self.q.pop_front().expect("full queue has a front").item;
                self.q.push_back(Enqueued {
                    item,
                    enq_us: now_us,
                });
                Err(oldest)
            }
        }
    }

    /// Dequeue the oldest request and its queue wait in microseconds.
    pub fn pop(&mut self, now_us: u64) -> Option<(T, u64)> {
        let e = self.q.pop_front()?;
        odt_obs::gauge("serve.queue.depth").set(self.q.len() as f64);
        let wait = now_us.saturating_sub(e.enq_us);
        odt_obs::histogram("serve.queue.wait").record_micros(wait);
        Some((e.item, wait))
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// The hard capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total requests shed since construction.
    pub fn shed_count(&self) -> u64 {
        self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_wait_accounting() {
        let mut q = AdmissionQueue::new(4, ShedPolicy::RejectNewest);
        q.push("a", 0).unwrap();
        q.push("b", 10).unwrap();
        let (item, wait) = q.pop(25).unwrap();
        assert_eq!((item, wait), ("a", 25));
        let (item, wait) = q.pop(25).unwrap();
        assert_eq!((item, wait), ("b", 15));
        assert!(q.pop(30).is_none());
    }

    #[test]
    fn reject_newest_sheds_incoming() {
        let mut q = AdmissionQueue::new(2, ShedPolicy::RejectNewest);
        q.push(1, 0).unwrap();
        q.push(2, 0).unwrap();
        assert_eq!(q.push(3, 1), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.shed_count(), 1);
        assert_eq!(q.pop(2).unwrap().0, 1);
    }

    #[test]
    fn reject_oldest_sheds_head_and_admits_incoming() {
        let mut q = AdmissionQueue::new(2, ShedPolicy::RejectOldest);
        q.push(1, 0).unwrap();
        q.push(2, 0).unwrap();
        assert_eq!(q.push(3, 1), Err(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(2).unwrap().0, 2);
        assert_eq!(q.pop(2).unwrap().0, 3);
    }

    #[test]
    fn capacity_floor_is_one() {
        let mut q = AdmissionQueue::new(0, ShedPolicy::RejectNewest);
        assert_eq!(q.capacity(), 1);
        q.push(1, 0).unwrap();
        assert_eq!(q.push(2, 0), Err(2));
    }

    #[test]
    fn wait_is_saturating_on_clock_skew() {
        let mut q = AdmissionQueue::new(1, ShedPolicy::RejectNewest);
        q.push(1, 100).unwrap();
        // A caller-supplied earlier timestamp must not underflow.
        assert_eq!(q.pop(50).unwrap().1, 0);
    }
}
