//! The adaptive degradation ladder: deadline-aware rung selection.
//!
//! The ladder orders the serving paths by preference — cached estimate,
//! full DDPM sampling, DDIM fast path, reduced-step DDIM, slightly-stale
//! cached estimate, haversine-prior fallback — and keeps a live latency
//! histogram per rung. A request with `d` microseconds of deadline budget
//! left takes the **first usable rung whose live p95 latency fits in `d`**
//! (skipping rungs whose circuit breaker is open, and cache rungs with no
//! usable entry); if nothing else fits, the terminal fallback answers —
//! it is always available and effectively instant.
//!
//! The two cache rungs bracket the model rungs deliberately: a *fresh*
//! cached estimate is the best answer at the lowest cost, so it sits
//! first; a *stale* one (past TTL but inside the grace window) is still
//! better than the model-free haversine prior but worse than live
//! inference, so it sits just above the fallback — it only answers when
//! no model rung fits the budget or every model breaker is open.
//!
//! Selection is *monotone in the deadline* (verified by a proptest): for a
//! fixed latency snapshot, shrinking the budget can only move the choice
//! down the ladder, never up. This is what makes per-request deadlines
//! composable with SLA reporting — a stricter SLA never gets a slower
//! answer.

use odt_obs::Histogram;

/// One rung of the degradation ladder, in selection-preference order.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Rung {
    /// A fresh cached estimate (within its TTL) — full-fidelity answer at
    /// microsecond cost. Only usable when the executor's cache probe hit.
    Cached,
    /// Full stochastic DDPM sampling with candidate selection.
    Full,
    /// Deterministic DDIM over a reduced strided schedule.
    Ddim,
    /// DDIM over an even smaller step count.
    DdimReduced,
    /// A slightly-stale cached estimate (past TTL, inside the grace
    /// window) — better than the prior when no model rung fits.
    CachedStale,
    /// The model-free haversine-prior fallback (terminal; always available).
    Fallback,
}

/// Number of rungs on the ladder.
pub const NUM_RUNGS: usize = 6;

/// Number of rungs guarded by circuit breakers (all but the fallback).
pub const MODEL_RUNGS: usize = 5;

impl Rung {
    /// Every rung, selection-preference order.
    pub const ALL: [Rung; NUM_RUNGS] = [
        Rung::Cached,
        Rung::Full,
        Rung::Ddim,
        Rung::DdimReduced,
        Rung::CachedStale,
        Rung::Fallback,
    ];

    /// Position on the ladder (0 = tried first).
    pub fn index(self) -> usize {
        match self {
            Rung::Cached => 0,
            Rung::Full => 1,
            Rung::Ddim => 2,
            Rung::DdimReduced => 3,
            Rung::CachedStale => 4,
            Rung::Fallback => 5,
        }
    }

    /// The rung at ladder position `i` (`i < NUM_RUNGS`).
    pub fn from_index(i: usize) -> Rung {
        Rung::ALL[i]
    }

    /// Short tag for metrics, events and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Cached => "cached",
            Rung::Full => "full_ddpm",
            Rung::Ddim => "ddim",
            Rung::DdimReduced => "ddim_reduced",
            Rung::CachedStale => "cached_stale",
            Rung::Fallback => "fallback",
        }
    }

    /// Whether this is the terminal (breaker-less) rung.
    pub fn is_terminal(self) -> bool {
        matches!(self, Rung::Fallback)
    }

    /// Whether this rung serves from the estimate cache (and therefore
    /// needs a successful cache probe to be usable).
    pub fn is_cache(self) -> bool {
        matches!(self, Rung::Cached | Rung::CachedStale)
    }
}

/// Ladder tuning.
#[derive(Copy, Clone, Debug)]
pub struct LadderConfig {
    /// Optimistic per-rung latency priors (µs, ladder order) used until
    /// `min_samples` live observations exist for a rung.
    pub prior_us: [u64; NUM_RUNGS],
    /// Observations per rung before its live p95 replaces the prior.
    pub min_samples: u64,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            prior_us: [5, 200_000, 50_000, 20_000, 5, 100],
            min_samples: 5,
        }
    }
}

/// Live per-rung latency tracking + deadline-aware selection.
pub struct LatencyLadder {
    cfg: LadderConfig,
    hists: [Histogram; NUM_RUNGS],
}

impl LatencyLadder {
    /// An empty ladder (selection starts from the configured priors).
    pub fn new(cfg: LadderConfig) -> Self {
        LatencyLadder {
            cfg,
            hists: std::array::from_fn(|_| Histogram::default()),
        }
    }

    /// Record one observed service latency for a rung (successes *and*
    /// failures: a slow failure is exactly the signal that should push
    /// traffic down the ladder).
    pub fn observe(&self, rung: Rung, micros: u64) {
        self.hists[rung.index()].record_micros(micros);
    }

    /// The cost estimate selection uses for a rung: its live p95 once
    /// `min_samples` observations exist, the configured prior before.
    pub fn cost_us(&self, rung: Rung) -> u64 {
        let h = &self.hists[rung.index()];
        if h.count() >= self.cfg.min_samples {
            h.quantile_micros(0.95) as u64
        } else {
            self.cfg.prior_us[rung.index()]
        }
    }

    /// A snapshot of every rung's cost estimate, ladder order.
    pub fn costs(&self) -> [u64; NUM_RUNGS] {
        std::array::from_fn(|i| self.cost_us(Rung::from_index(i)))
    }

    /// Pick the rung for a request with `remaining_us` of deadline budget:
    /// the first usable rung (ladder order) whose cost fits. See
    /// [`select_from_costs`].
    pub fn select(&self, remaining_us: u64, usable: impl Fn(Rung) -> bool) -> Rung {
        select_from_costs(&self.costs(), remaining_us, usable)
    }
}

/// The pure selection rule: the first rung in ladder order that is
/// `usable` and whose cost fits the remaining budget; the terminal
/// fallback if none fits (it is always usable — breakers never apply to
/// it).
///
/// Monotonicity (the proptested invariant): for fixed `costs` and
/// `usable`, if `d' ≤ d` then `select(d').index() ≥ select(d).index()` —
/// a shorter deadline never picks a slower (higher-preference) rung. Proof
/// sketch: the predicate `cost[i] ≤ d` is monotone in `d` for every `i`,
/// so the first index satisfying it can only move right as `d` shrinks.
pub fn select_from_costs(
    costs: &[u64; NUM_RUNGS],
    remaining_us: u64,
    usable: impl Fn(Rung) -> bool,
) -> Rung {
    for rung in Rung::ALL {
        if !rung.is_terminal() && !usable(rung) {
            continue;
        }
        if costs[rung.index()] <= remaining_us {
            return rung;
        }
    }
    Rung::Fallback
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The usable mask every pre-cache test used: model rungs only (no
    /// cache probe available).
    fn no_cache(r: Rung) -> bool {
        !r.is_cache()
    }

    #[test]
    fn rung_order_and_names() {
        assert_eq!(Rung::ALL.len(), NUM_RUNGS);
        for (i, r) in Rung::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Rung::from_index(i), *r);
        }
        assert!(Rung::Fallback.is_terminal());
        assert_eq!(Rung::Full.name(), "full_ddpm");
        assert_eq!(Rung::Cached.name(), "cached");
        assert_eq!(Rung::CachedStale.name(), "cached_stale");
        assert!(Rung::Cached.is_cache() && Rung::CachedStale.is_cache());
        assert!(!Rung::Full.is_cache() && !Rung::Fallback.is_cache());
        assert_eq!(MODEL_RUNGS, NUM_RUNGS - 1);
    }

    #[test]
    fn selection_prefers_fidelity_within_budget() {
        let costs = [2, 100_000, 20_000, 5_000, 2, 10];
        assert_eq!(select_from_costs(&costs, 200_000, no_cache), Rung::Full);
        assert_eq!(select_from_costs(&costs, 50_000, no_cache), Rung::Ddim);
        assert_eq!(
            select_from_costs(&costs, 10_000, no_cache),
            Rung::DdimReduced
        );
        assert_eq!(select_from_costs(&costs, 100, no_cache), Rung::Fallback);
        // Nothing fits: still answered, by the terminal rung.
        assert_eq!(select_from_costs(&costs, 0, no_cache), Rung::Fallback);
    }

    #[test]
    fn fresh_cache_hit_short_circuits_the_model_rungs() {
        let costs = [2, 100_000, 20_000, 5_000, 2, 10];
        // Probe hit fresh: Cached outranks everything.
        assert_eq!(select_from_costs(&costs, 200_000, |_| true), Rung::Cached);
        // Probe hit stale only: model rungs still preferred while they
        // fit; the stale tier answers when they don't.
        let stale_only = |r: Rung| r != Rung::Cached;
        assert_eq!(select_from_costs(&costs, 200_000, stale_only), Rung::Full);
        assert_eq!(
            select_from_costs(&costs, 1_000, stale_only),
            Rung::CachedStale
        );
        // Stale beats the prior, but an exhausted budget still falls
        // through to the terminal rung.
        assert_eq!(select_from_costs(&costs, 0, stale_only), Rung::Fallback);
    }

    #[test]
    fn open_breakers_route_down_the_ladder() {
        let costs = [10; NUM_RUNGS];
        let no_full = |r: Rung| !r.is_cache() && r != Rung::Full;
        assert_eq!(select_from_costs(&costs, 1_000, no_full), Rung::Ddim);
        let only_fallback = |_: Rung| false;
        assert_eq!(
            select_from_costs(&costs, 1_000, only_fallback),
            Rung::Fallback
        );
    }

    #[test]
    fn zero_remaining_budget_never_panics_and_goes_straight_down() {
        // The dequeue-time boundary: a request whose budget is already
        // exhausted (remaining saturates to 0) must select without
        // panicking, and can only land on a zero-cost rung or the prior
        // (terminal) fallback — never a rung that "costs" anything.
        for costs in [
            [2u64, 100_000, 20_000, 5_000, 2, 10],
            [0; NUM_RUNGS],
            [u64::MAX; NUM_RUNGS],
            [0, u64::MAX, 0, 1, 0, 1],
        ] {
            let pick = select_from_costs(&costs, 0, no_cache);
            assert!(
                costs[pick.index()] == 0 || pick.is_terminal(),
                "budget 0 picked {pick:?} with cost {} (costs {costs:?})",
                costs[pick.index()]
            );
        }
        // With every breaker open and no budget, the terminal prior rung
        // still answers.
        assert_eq!(
            select_from_costs(&[0; NUM_RUNGS], 0, |_| false),
            Rung::Fallback
        );
        // The live ladder agrees at the same boundary.
        let ladder = LatencyLadder::new(LadderConfig::default());
        let pick = ladder.select(0, no_cache);
        assert!(ladder.cost_us(pick) == 0 || pick.is_terminal());
    }

    #[test]
    fn selection_is_monotone_on_a_cost_grid() {
        // Exhaustive small-grid check of the proptested invariant, now
        // over all 2^5 usable masks including the cache rungs.
        let grids: [[u64; NUM_RUNGS]; 4] = [
            [1, 100, 50, 20, 1, 1],
            [0, 10, 50, 5, 3, 0],
            [1; NUM_RUNGS],
            [1_000; NUM_RUNGS],
        ];
        for costs in &grids {
            for mask in 0..32u8 {
                let usable = |r: Rung| r.is_terminal() || mask & (1 << r.index()) != 0;
                let mut prev_idx = None;
                // Deadlines descending: selected index must not decrease.
                for d in (0..=1_200u64).rev().step_by(7) {
                    let idx = select_from_costs(costs, d, usable).index();
                    if let Some(p) = prev_idx {
                        assert!(idx >= p, "costs {costs:?} mask {mask} d {d}");
                    }
                    prev_idx = Some(idx);
                }
            }
        }
    }

    #[test]
    fn ladder_blends_prior_and_live_p95() {
        let ladder = LatencyLadder::new(LadderConfig {
            prior_us: [1, 1_000, 100, 10, 1, 1],
            min_samples: 3,
        });
        // Below min_samples: the prior answers.
        ladder.observe(Rung::Full, 5);
        assert_eq!(ladder.cost_us(Rung::Full), 1_000);
        // At min_samples: the live p95 takes over (all samples ≈ 5µs).
        ladder.observe(Rung::Full, 5);
        ladder.observe(Rung::Full, 5);
        assert!(
            ladder.cost_us(Rung::Full) <= 8,
            "{}",
            ladder.cost_us(Rung::Full)
        );
        // And selection adapts: Full now fits a 10µs budget.
        assert_eq!(ladder.select(10, no_cache), Rung::Full);
    }
}
