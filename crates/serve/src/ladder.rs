//! The adaptive degradation ladder: deadline-aware rung selection.
//!
//! The ladder orders the serving paths by fidelity — full DDPM sampling,
//! DDIM fast path, reduced-step DDIM, haversine-prior fallback — and keeps
//! a live latency histogram per rung. A request with `d` microseconds of
//! deadline budget left takes the **highest-fidelity rung whose live p95
//! latency fits in `d`** (skipping rungs whose circuit breaker is open);
//! if no model-backed rung fits, the terminal fallback answers — it is
//! always available and effectively instant.
//!
//! Selection is *monotone in the deadline* (verified by a proptest): for a
//! fixed latency snapshot, shrinking the budget can only move the choice
//! down the ladder, never up. This is what makes per-request deadlines
//! composable with SLA reporting — a stricter SLA never gets a slower
//! answer.

use odt_obs::Histogram;

/// One rung of the degradation ladder, in fidelity order.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Rung {
    /// Full stochastic DDPM sampling with candidate selection.
    Full,
    /// Deterministic DDIM over a reduced strided schedule.
    Ddim,
    /// DDIM over an even smaller step count.
    DdimReduced,
    /// The model-free haversine-prior fallback (terminal; always available).
    Fallback,
}

/// Number of rungs guarded by circuit breakers (all but the fallback).
pub const MODEL_RUNGS: usize = 3;

impl Rung {
    /// Every rung, highest fidelity first.
    pub const ALL: [Rung; 4] = [Rung::Full, Rung::Ddim, Rung::DdimReduced, Rung::Fallback];

    /// Position on the ladder (0 = highest fidelity).
    pub fn index(self) -> usize {
        match self {
            Rung::Full => 0,
            Rung::Ddim => 1,
            Rung::DdimReduced => 2,
            Rung::Fallback => 3,
        }
    }

    /// The rung at ladder position `i` (`i ≤ 3`).
    pub fn from_index(i: usize) -> Rung {
        Rung::ALL[i]
    }

    /// Short tag for metrics, events and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Full => "full_ddpm",
            Rung::Ddim => "ddim",
            Rung::DdimReduced => "ddim_reduced",
            Rung::Fallback => "fallback",
        }
    }

    /// Whether this is the terminal (breaker-less) rung.
    pub fn is_terminal(self) -> bool {
        matches!(self, Rung::Fallback)
    }
}

/// Ladder tuning.
#[derive(Copy, Clone, Debug)]
pub struct LadderConfig {
    /// Optimistic per-rung latency priors (µs, fidelity order) used until
    /// `min_samples` live observations exist for a rung.
    pub prior_us: [u64; 4],
    /// Observations per rung before its live p95 replaces the prior.
    pub min_samples: u64,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            prior_us: [200_000, 50_000, 20_000, 100],
            min_samples: 5,
        }
    }
}

/// Live per-rung latency tracking + deadline-aware selection.
pub struct LatencyLadder {
    cfg: LadderConfig,
    hists: [Histogram; 4],
}

impl LatencyLadder {
    /// An empty ladder (selection starts from the configured priors).
    pub fn new(cfg: LadderConfig) -> Self {
        LatencyLadder {
            cfg,
            hists: std::array::from_fn(|_| Histogram::default()),
        }
    }

    /// Record one observed service latency for a rung (successes *and*
    /// failures: a slow failure is exactly the signal that should push
    /// traffic down the ladder).
    pub fn observe(&self, rung: Rung, micros: u64) {
        self.hists[rung.index()].record_micros(micros);
    }

    /// The cost estimate selection uses for a rung: its live p95 once
    /// `min_samples` observations exist, the configured prior before.
    pub fn cost_us(&self, rung: Rung) -> u64 {
        let h = &self.hists[rung.index()];
        if h.count() >= self.cfg.min_samples {
            h.quantile_micros(0.95) as u64
        } else {
            self.cfg.prior_us[rung.index()]
        }
    }

    /// A snapshot of every rung's cost estimate, fidelity order.
    pub fn costs(&self) -> [u64; 4] {
        [
            self.cost_us(Rung::Full),
            self.cost_us(Rung::Ddim),
            self.cost_us(Rung::DdimReduced),
            self.cost_us(Rung::Fallback),
        ]
    }

    /// Pick the rung for a request with `remaining_us` of deadline budget:
    /// the first usable rung (fidelity order) whose cost fits. See
    /// [`select_from_costs`].
    pub fn select(&self, remaining_us: u64, usable: impl Fn(Rung) -> bool) -> Rung {
        select_from_costs(&self.costs(), remaining_us, usable)
    }
}

/// The pure selection rule: the first rung in fidelity order that is
/// `usable` and whose cost fits the remaining budget; the terminal
/// fallback if none fits (it is always usable — breakers never apply to
/// it).
///
/// Monotonicity (the proptested invariant): for fixed `costs` and
/// `usable`, if `d' ≤ d` then `select(d').index() ≥ select(d).index()` —
/// a shorter deadline never picks a slower (higher-fidelity) rung. Proof
/// sketch: the predicate `cost[i] ≤ d` is monotone in `d` for every `i`,
/// so the first index satisfying it can only move right as `d` shrinks.
pub fn select_from_costs(
    costs: &[u64; 4],
    remaining_us: u64,
    usable: impl Fn(Rung) -> bool,
) -> Rung {
    for rung in Rung::ALL {
        if !rung.is_terminal() && !usable(rung) {
            continue;
        }
        if costs[rung.index()] <= remaining_us {
            return rung;
        }
    }
    Rung::Fallback
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_order_and_names() {
        assert_eq!(Rung::ALL.len(), 4);
        for (i, r) in Rung::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Rung::from_index(i), *r);
        }
        assert!(Rung::Fallback.is_terminal());
        assert_eq!(Rung::Full.name(), "full_ddpm");
    }

    #[test]
    fn selection_prefers_fidelity_within_budget() {
        let costs = [100_000, 20_000, 5_000, 10];
        let all = |_: Rung| true;
        assert_eq!(select_from_costs(&costs, 200_000, all), Rung::Full);
        assert_eq!(select_from_costs(&costs, 50_000, all), Rung::Ddim);
        assert_eq!(select_from_costs(&costs, 10_000, all), Rung::DdimReduced);
        assert_eq!(select_from_costs(&costs, 100, all), Rung::Fallback);
        // Nothing fits: still answered, by the terminal rung.
        assert_eq!(select_from_costs(&costs, 0, all), Rung::Fallback);
    }

    #[test]
    fn open_breakers_route_down_the_ladder() {
        let costs = [10, 10, 10, 10];
        let no_full = |r: Rung| r != Rung::Full;
        assert_eq!(select_from_costs(&costs, 1_000, no_full), Rung::Ddim);
        let only_fallback = |_: Rung| false;
        assert_eq!(
            select_from_costs(&costs, 1_000, only_fallback),
            Rung::Fallback
        );
    }

    #[test]
    fn zero_remaining_budget_never_panics_and_goes_straight_down() {
        // The dequeue-time boundary: a request whose budget is already
        // exhausted (remaining saturates to 0) must select without
        // panicking, and can only land on a zero-cost rung or the prior
        // (terminal) fallback — never a rung that "costs" anything.
        let all = |_: Rung| true;
        for costs in [
            [100_000u64, 20_000, 5_000, 10],
            [0, 0, 0, 0],
            [u64::MAX, u64::MAX, u64::MAX, u64::MAX],
            [0, u64::MAX, 0, 1],
        ] {
            let pick = select_from_costs(&costs, 0, all);
            assert!(
                costs[pick.index()] == 0 || pick.is_terminal(),
                "budget 0 picked {pick:?} with cost {} (costs {costs:?})",
                costs[pick.index()]
            );
        }
        // With every breaker open and no budget, the terminal prior rung
        // still answers.
        assert_eq!(
            select_from_costs(&[0, 0, 0, 0], 0, |_| false),
            Rung::Fallback
        );
        // The live ladder agrees at the same boundary.
        let ladder = LatencyLadder::new(LadderConfig::default());
        let pick = ladder.select(0, all);
        assert!(ladder.cost_us(pick) == 0 || pick.is_terminal());
    }

    #[test]
    fn selection_is_monotone_on_a_cost_grid() {
        // Exhaustive small-grid check of the proptested invariant.
        let grids: [[u64; 4]; 4] = [
            [100, 50, 20, 1],
            [10, 50, 5, 0],
            [1, 1, 1, 1],
            [1_000, 1_000, 1_000, 1_000],
        ];
        for costs in &grids {
            for mask in 0..8u8 {
                let usable = |r: Rung| r.is_terminal() || mask & (1 << r.index()) != 0;
                let mut prev_idx = None;
                // Deadlines descending: selected index must not decrease.
                for d in (0..=1_200u64).rev().step_by(7) {
                    let idx = select_from_costs(costs, d, usable).index();
                    if let Some(p) = prev_idx {
                        assert!(idx >= p, "costs {costs:?} mask {mask} d {d}");
                    }
                    prev_idx = Some(idx);
                }
            }
        }
    }

    #[test]
    fn ladder_blends_prior_and_live_p95() {
        let ladder = LatencyLadder::new(LadderConfig {
            prior_us: [1_000, 100, 10, 1],
            min_samples: 3,
        });
        // Below min_samples: the prior answers.
        ladder.observe(Rung::Full, 5);
        assert_eq!(ladder.cost_us(Rung::Full), 1_000);
        // At min_samples: the live p95 takes over (all samples ≈ 5µs).
        ladder.observe(Rung::Full, 5);
        ladder.observe(Rung::Full, 5);
        assert!(
            ladder.cost_us(Rung::Full) <= 8,
            "{}",
            ladder.cost_us(Rung::Full)
        );
        // And selection adapts: Full now fits a 10µs budget.
        assert_eq!(ladder.select(10, |_| true), Rung::Full);
    }
}
