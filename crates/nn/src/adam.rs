//! The Adam optimizer (the paper trains everything with Adam, lr 1e-3, §6.3).

use odt_tensor::{Param, Tensor};

/// Adam with optional gradient clipping.
pub struct Adam {
    params: Vec<Param>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    clip: Option<f32>,
}

impl Adam {
    /// Standard Adam (β₁=0.9, β₂=0.999, ε=1e-8) over the given parameters.
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        let m = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().to_vec()))
            .collect();
        let v = params
            .iter()
            .map(|p| Tensor::zeros(p.value().shape().to_vec()))
            .collect();
        Adam {
            params,
            m,
            v,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            clip: None,
        }
    }

    /// Enable elementwise gradient clipping to `[-c, c]`.
    pub fn with_clip(mut self, c: f32) -> Self {
        self.clip = Some(c);
        self
    }

    /// Override the learning rate (e.g. for a decay schedule).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Zero every parameter's accumulated gradient.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Apply one Adam update from the accumulated gradients.
    pub fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let mut grad = p.grad();
            if let Some(c) = self.clip {
                grad = grad.map(|g| g.clamp(-c, c));
            }
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let mut value = p.value();
            for j in 0..grad.numel() {
                let gj = grad.data()[j];
                let mj = self.beta1 * m.data()[j] + (1.0 - self.beta1) * gj;
                let vj = self.beta2 * v.data()[j] + (1.0 - self.beta2) * gj * gj;
                m.data_mut()[j] = mj;
                v.data_mut()[j] = vj;
                let mhat = mj / bc1;
                let vhat = vj / bc2;
                value.data_mut()[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.set_value(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_tensor::Graph;

    #[test]
    fn minimizes_quadratic() {
        // f(w) = (w - 3)^2, optimum at w = 3.
        let w = Param::new(Tensor::scalar(0.0), "w");
        let mut opt = Adam::new(vec![w.clone()], 0.1);
        for _ in 0..300 {
            opt.zero_grad();
            let g = Graph::new();
            let wv = g.param(&w);
            let loss = g.square(g.add_scalar(wv, -3.0));
            g.backward(loss);
            opt.step();
        }
        assert!(
            (w.value().data()[0] - 3.0).abs() < 1e-2,
            "w = {}",
            w.value().data()[0]
        );
    }

    #[test]
    fn fits_linear_regression() {
        use odt_tensor::init;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        // Ground truth: y = 2 x0 - x1 + 0.5
        let xs = init::uniform(&mut rng, vec![64, 2], -1.0, 1.0);
        let mut ys = Tensor::zeros(vec![64, 1]);
        for i in 0..64 {
            let x0 = xs.at(&[i, 0]);
            let x1 = xs.at(&[i, 1]);
            ys.set(&[i, 0], 2.0 * x0 - x1 + 0.5);
        }
        let w = Param::new(Tensor::zeros(vec![2, 1]), "w");
        let b = Param::new(Tensor::zeros(vec![1]), "b");
        let mut opt = Adam::new(vec![w.clone(), b.clone()], 0.05);
        let mut last = f32::INFINITY;
        for _ in 0..400 {
            opt.zero_grad();
            let g = Graph::new();
            let x = g.input(xs.clone());
            let y = g.input(ys.clone());
            let pred = g.add(g.matmul(x, g.param(&w)), g.param(&b));
            let loss = g.mse(pred, y);
            last = g.value(loss).data()[0];
            g.backward(loss);
            opt.step();
        }
        assert!(last < 1e-3, "final loss {last}");
        assert!((w.value().at(&[0, 0]) - 2.0).abs() < 0.05);
        assert!((w.value().at(&[1, 0]) + 1.0).abs() < 0.05);
        assert!((b.value().data()[0] - 0.5).abs() < 0.05);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let w = Param::new(Tensor::scalar(0.0), "w");
        let mut opt = Adam::new(vec![w.clone()], 1.0).with_clip(1e-6);
        w.accumulate_grad(&Tensor::scalar(1e9));
        opt.step();
        // Even with a huge gradient, a tiny clip keeps the step ≈ lr.
        assert!(w.value().data()[0].abs() <= 1.1);
    }

    #[test]
    fn zero_grad_resets() {
        let w = Param::new(Tensor::scalar(0.0), "w");
        let opt = Adam::new(vec![w.clone()], 0.1);
        w.accumulate_grad(&Tensor::scalar(5.0));
        opt.zero_grad();
        assert_eq!(w.grad().data()[0], 0.0);
    }
}
