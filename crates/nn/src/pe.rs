//! Sinusoidal positional encoding (paper Eq. 12).

use odt_tensor::Tensor;

/// The positional encoding of Eq. 12 for positions `0..len`:
///
/// `PE(n)[2i] = sin(n / 10000^(2i/d))`, `PE(n)[2i+1] = cos(n / 10000^(2i/d))`.
///
/// Returns `[len, d]`. Used both to embed the diffusion step indicator `n`
/// into the denoiser and to encode flattened-PiT positions in the MViT.
pub fn positional_encoding(len: usize, d: usize) -> Tensor {
    assert!(d % 2 == 0, "positional encoding dimension must be even");
    let mut out = Tensor::zeros(vec![len, d]);
    for n in 0..len {
        for i in 0..d / 2 {
            let angle = n as f32 / 10000f32.powf(2.0 * i as f32 / d as f32);
            out.set(&[n, 2 * i], angle.sin());
            out.set(&[n, 2 * i + 1], angle.cos());
        }
    }
    out
}

/// The encoding of a single position as `[1, d]`.
pub fn encode_position(pos: usize, d: usize) -> Tensor {
    let full = positional_encoding(pos + 1, d);
    full.slice(0, pos, pos + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_range() {
        let pe = positional_encoding(16, 8);
        assert_eq!(pe.shape(), &[16, 8]);
        assert!(pe.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn position_zero_is_sin0_cos0() {
        let pe = positional_encoding(2, 4);
        assert_eq!(pe.at(&[0, 0]), 0.0); // sin 0
        assert_eq!(pe.at(&[0, 1]), 1.0); // cos 0
    }

    #[test]
    fn distinct_positions_distinct_codes() {
        let pe = positional_encoding(64, 16);
        for a in 0..8 {
            for b in (a + 1)..8 {
                let ra = &pe.data()[a * 16..(a + 1) * 16];
                let rb = &pe.data()[b * 16..(b + 1) * 16];
                assert!(ra != rb, "positions {a} and {b} collide");
            }
        }
    }

    #[test]
    fn encode_position_matches_table() {
        let pe = positional_encoding(10, 6);
        let p7 = encode_position(7, 6);
        assert_eq!(p7.data(), &pe.data()[7 * 6..8 * 6]);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_dim_rejected() {
        let _ = positional_encoding(4, 3);
    }
}
