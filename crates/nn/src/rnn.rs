//! Gated recurrent units — the sequence encoders the path-based baselines
//! (WDDRA, STDGCN) and DeepOD's trajectory branch use (paper §6.2, §6.4.3:
//! "they also employ RNNs for processing the input path sequences").

use crate::{HasParams, Linear};
use odt_tensor::{Graph, Param, Tensor, Var};
use rand::Rng;

/// A single GRU cell.
pub struct GruCell {
    // Update gate, reset gate and candidate each combine input and hidden.
    wz: Linear,
    uz: Linear,
    wr: Linear,
    ur: Linear,
    wh: Linear,
    uh: Linear,
    hidden: usize,
}

impl GruCell {
    /// `in_dim` input width, `hidden` state width.
    pub fn new(rng: &mut impl Rng, in_dim: usize, hidden: usize, name: &str) -> Self {
        GruCell {
            wz: Linear::new(rng, in_dim, hidden, &format!("{name}.wz")),
            uz: Linear::new_no_bias(rng, hidden, hidden, &format!("{name}.uz")),
            wr: Linear::new(rng, in_dim, hidden, &format!("{name}.wr")),
            ur: Linear::new_no_bias(rng, hidden, hidden, &format!("{name}.ur")),
            wh: Linear::new(rng, in_dim, hidden, &format!("{name}.wh")),
            uh: Linear::new_no_bias(rng, hidden, hidden, &format!("{name}.uh")),
            hidden,
        }
    }

    /// One step: `x [b, in]`, `h [b, hidden]` → new hidden `[b, hidden]`.
    pub fn step(&self, g: &Graph, x: Var, h: Var) -> Var {
        let z = g.sigmoid(g.add(self.wz.forward(g, x), self.uz.forward(g, h)));
        let r = g.sigmoid(g.add(self.wr.forward(g, x), self.ur.forward(g, h)));
        let rh = g.mul(r, h);
        let cand = g.tanh(g.add(self.wh.forward(g, x), self.uh.forward(g, rh)));
        // h' = (1 - z) ⊙ h + z ⊙ cand
        let one_minus_z = g.add_scalar(g.neg(z), 1.0);
        g.add(g.mul(one_minus_z, h), g.mul(z, cand))
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

impl HasParams for GruCell {
    fn params(&self) -> Vec<Param> {
        [&self.wz, &self.uz, &self.wr, &self.ur, &self.wh, &self.uh]
            .iter()
            .flat_map(|l| l.params())
            .collect()
    }
}

/// A single-layer GRU over `[b, t, in]` sequences.
pub struct Gru {
    cell: GruCell,
}

impl Gru {
    /// Construct with the given input and hidden widths.
    pub fn new(rng: &mut impl Rng, in_dim: usize, hidden: usize, name: &str) -> Self {
        Gru {
            cell: GruCell::new(rng, in_dim, hidden, name),
        }
    }

    /// Run over the full sequence; returns the final hidden state `[b, hidden]`.
    pub fn forward_last(&self, g: &Graph, x: Var) -> Var {
        let shape = g.shape(x);
        assert_eq!(shape.len(), 3, "GRU input must be [b, t, in]");
        let (b, t, in_dim) = (shape[0], shape[1], shape[2]);
        let mut h = g.input(Tensor::zeros(vec![b, self.cell.hidden()]));
        for step in 0..t {
            let xt = g.reshape(g.slice(x, 1, step, step + 1), vec![b, in_dim]);
            h = self.cell.step(g, xt, h);
        }
        h
    }

    /// Run over the sequence; returns all hidden states `[b, t, hidden]`.
    pub fn forward_all(&self, g: &Graph, x: Var) -> Var {
        let shape = g.shape(x);
        assert_eq!(shape.len(), 3, "GRU input must be [b, t, in]");
        let (b, t, in_dim) = (shape[0], shape[1], shape[2]);
        let mut h = g.input(Tensor::zeros(vec![b, self.cell.hidden()]));
        let mut outs = Vec::with_capacity(t);
        for step in 0..t {
            let xt = g.reshape(g.slice(x, 1, step, step + 1), vec![b, in_dim]);
            h = self.cell.step(g, xt, h);
            outs.push(g.reshape(h, vec![b, 1, self.cell.hidden()]));
        }
        g.concat(&outs, 1)
    }
}

impl HasParams for Gru {
    fn params(&self) -> Vec<Param> {
        self.cell.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let gru = Gru::new(&mut rng, 3, 5, "gru");
        let g = Graph::new();
        let x = g.input(init::normal(&mut rng, vec![2, 4, 3], 1.0));
        assert_eq!(g.shape(gru.forward_last(&g, x)), vec![2, 5]);
        assert_eq!(g.shape(gru.forward_all(&g, x)), vec![2, 4, 5]);
    }

    #[test]
    fn last_equals_final_of_all() {
        let mut rng = StdRng::seed_from_u64(1);
        let gru = Gru::new(&mut rng, 2, 3, "gru");
        let g = Graph::new();
        let input = init::normal(&mut rng, vec![1, 5, 2], 1.0);
        let x = g.input(input.clone());
        let last = g.value(gru.forward_last(&g, x));
        let x2 = g.input(input);
        let all = g.value(gru.forward_all(&g, x2));
        let final_step = all.slice(1, 4, 5).reshape(vec![1, 3]);
        for (a, b) in last.data().iter().zip(final_step.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn state_stays_bounded() {
        // GRU hidden state is a convex-ish combination through sigmoid/tanh;
        // it must stay in (-1, 1) regardless of input magnitude.
        let mut rng = StdRng::seed_from_u64(2);
        let gru = Gru::new(&mut rng, 2, 4, "gru");
        let g = Graph::new();
        let x = g.input(init::normal(&mut rng, vec![1, 20, 2], 1.0).scale(100.0));
        let h = g.value(gru.forward_last(&g, x));
        assert!(h.data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn gradients_flow_through_time() {
        let mut rng = StdRng::seed_from_u64(3);
        let gru = Gru::new(&mut rng, 2, 3, "gru");
        let g = Graph::new();
        let x = g.input(init::normal(&mut rng, vec![1, 4, 2], 1.0));
        g.backward(g.sum_all(g.square(gru.forward_last(&g, x))));
        for p in gru.params() {
            assert!(
                p.grad().data().iter().any(|&v| v != 0.0),
                "no grad for {}",
                p.name()
            );
        }
    }
}
