//! Fully-connected layer.

use crate::HasParams;
use odt_tensor::{init, Graph, Param, Tensor, Var};
use rand::Rng;

/// A fully-connected layer `y = x Wᵀ + b`.
///
/// Accepts inputs of any rank `>= 1` whose last dimension equals `in_dim`;
/// leading dimensions are flattened into a batch and restored afterwards.
pub struct Linear {
    weight: Param, // [out, in]
    bias: Option<Param>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Create with Xavier-uniform weights and zero bias.
    pub fn new(rng: &mut impl Rng, in_dim: usize, out_dim: usize, name: &str) -> Self {
        Linear {
            weight: Param::new(
                init::xavier_uniform(rng, vec![out_dim, in_dim]),
                format!("{name}.weight"),
            ),
            bias: Some(Param::new(
                Tensor::zeros(vec![out_dim]),
                format!("{name}.bias"),
            )),
            in_dim,
            out_dim,
        }
    }

    /// Create without a bias term.
    pub fn new_no_bias(rng: &mut impl Rng, in_dim: usize, out_dim: usize, name: &str) -> Self {
        Linear {
            weight: Param::new(
                init::xavier_uniform(rng, vec![out_dim, in_dim]),
                format!("{name}.weight"),
            ),
            bias: None,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Apply the layer. Input shape `[..., in_dim]` → `[..., out_dim]`.
    pub fn forward(&self, g: &Graph, x: Var) -> Var {
        let shape = g.shape(x);
        assert_eq!(
            *shape.last().expect("linear input must have rank >= 1"),
            self.in_dim,
            "linear expected last dim {}, got {:?}",
            self.in_dim,
            shape
        );
        let batch: usize = shape[..shape.len() - 1].iter().product();
        let flat = g.reshape(x, vec![batch, self.in_dim]);
        let w = g.param(&self.weight);
        let wt = g.permute(w, &[1, 0]);
        let mut y = g.matmul(flat, wt);
        if let Some(b) = &self.bias {
            let bv = g.param(b);
            y = g.add(y, bv);
        }
        let mut out_shape = shape[..shape.len() - 1].to_vec();
        out_shape.push(self.out_dim);
        g.reshape(y, out_shape)
    }
}

impl HasParams for Linear {
    fn params(&self) -> Vec<Param> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_2d_and_3d() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut rng, 4, 3, "l");
        let g = Graph::new();
        let x2 = g.input(Tensor::zeros(vec![5, 4]));
        assert_eq!(g.shape(l.forward(&g, x2)), vec![5, 3]);
        let x3 = g.input(Tensor::zeros(vec![2, 5, 4]));
        assert_eq!(g.shape(l.forward(&g, x3)), vec![2, 5, 3]);
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut rng, 4, 3, "l");
        assert_eq!(l.num_params(), 4 * 3 + 3);
        let l2 = Linear::new_no_bias(&mut rng, 4, 3, "l2");
        assert_eq!(l2.num_params(), 12);
    }

    #[test]
    fn gradient_flows_to_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(&mut rng, 2, 1, "l");
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1.0, 2.0], vec![1, 2]));
        let y = l.forward(&g, x);
        let loss = g.sum_all(y);
        g.backward(loss);
        let gw = l.params()[0].grad();
        assert_eq!(gw.shape(), &[1, 2]);
        assert_eq!(gw.data(), &[1.0, 2.0]); // dy/dW = x
        let gb = l.params()[1].grad();
        assert_eq!(gb.data(), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "linear expected last dim")]
    fn wrong_input_dim_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut rng, 4, 3, "l");
        let g = Graph::new();
        let x = g.input(Tensor::zeros(vec![5, 5]));
        let _ = l.forward(&g, x);
    }
}
