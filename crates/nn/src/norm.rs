//! Layer and group normalization.

use crate::HasParams;
use odt_tensor::{Graph, Param, Tensor, Var};

/// Layer normalization over the last dimension, with learnable affine.
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Normalize over a trailing feature dimension of size `dim`.
    pub fn new(dim: usize, name: &str) -> Self {
        LayerNorm {
            gamma: Param::new(Tensor::ones(vec![dim]), format!("{name}.gamma")),
            beta: Param::new(Tensor::zeros(vec![dim]), format!("{name}.beta")),
            dim,
            eps: 1e-5,
        }
    }

    /// Apply to `[..., dim]` via the fused row-parallel graph op (one tape
    /// node instead of the eight-op composed form).
    pub fn forward(&self, g: &Graph, x: Var) -> Var {
        let shape = g.shape(x);
        assert_eq!(
            *shape.last().expect("layernorm needs rank >= 1"),
            self.dim,
            "layernorm dim mismatch"
        );
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        g.layernorm_lastdim(x, gamma, beta, self.eps)
    }
}

impl HasParams for LayerNorm {
    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// Group normalization over channel groups of an NCHW tensor, with
/// learnable per-channel affine — the normalization used inside the
/// conditioned PiT denoiser's convolution blocks.
pub struct GroupNorm {
    gamma: Param, // [c]
    beta: Param,  // [c]
    groups: usize,
    channels: usize,
    eps: f32,
}

impl GroupNorm {
    /// `groups` must divide `channels`.
    pub fn new(groups: usize, channels: usize, name: &str) -> Self {
        assert!(
            channels % groups == 0,
            "groups {groups} must divide channels {channels}"
        );
        GroupNorm {
            gamma: Param::new(Tensor::ones(vec![channels]), format!("{name}.gamma")),
            beta: Param::new(Tensor::zeros(vec![channels]), format!("{name}.beta")),
            groups,
            channels,
            eps: 1e-5,
        }
    }

    /// Apply to `[b, c, h, w]`.
    pub fn forward(&self, g: &Graph, x: Var) -> Var {
        let shape = g.shape(x);
        assert_eq!(shape.len(), 4, "groupnorm input must be NCHW");
        let (b, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(c, self.channels, "groupnorm channel mismatch");
        let gs = c / self.groups;
        // [b, groups, gs*h*w]: normalize within each group.
        let grouped = g.reshape(x, vec![b, self.groups, gs * h * w]);
        let mean = g.mean_axis(grouped, 2, true);
        let centered = g.sub(grouped, mean);
        let var = g.mean_axis(g.square(centered), 2, true);
        let std = g.sqrt(g.add_scalar(var, self.eps));
        let normed = g.div(centered, std);
        let back = g.reshape(normed, vec![b, c, h, w]);
        // Per-channel affine: reshape gamma/beta to [c, 1, 1] for broadcast.
        let gamma = g.reshape(g.param(&self.gamma), vec![c, 1, 1]);
        let beta = g.reshape(g.param(&self.beta), vec![c, 1, 1]);
        g.add(g.mul(back, gamma), beta)
    }
}

impl HasParams for GroupNorm {
    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let ln = LayerNorm::new(4, "ln");
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            vec![2, 4],
        ));
        let y = g.value(ln.forward(&g, x));
        for row in 0..2 {
            let d = &y.data()[row * 4..(row + 1) * 4];
            let mean: f32 = d.iter().sum::<f32>() / 4.0;
            let var: f32 = d.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4, "row {row} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {row} var {var}");
        }
    }

    #[test]
    fn layernorm_gradcheck_via_training_signal() {
        // Gradients must flow into gamma and beta.
        let ln = LayerNorm::new(3, "ln");
        let g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1.0, -1.0, 0.5], vec![1, 3]));
        let y = ln.forward(&g, x);
        g.backward(g.sum_all(g.square(y)));
        assert!(ln
            .params()
            .iter()
            .all(|p| p.grad().data().iter().any(|&v| v != 0.0) || p.name().contains("beta")));
    }

    #[test]
    fn layernorm_fused_matches_composed_formula() {
        // The fused graph op must agree with the op-by-op composition it
        // replaced (same mean/var/eps convention), forward and backward.
        let ln = LayerNorm::new(5, "ln");
        let xt = Tensor::from_vec(
            (0..15).map(|v| (v as f32) * 0.3 - 2.0).collect(),
            vec![3, 5],
        );

        let g1 = Graph::new();
        let x1 = g1.input(xt.clone());
        let fused = ln.forward(&g1, x1);
        let fused_val = g1.value(fused);
        g1.backward(g1.sum_all(g1.square(fused)));
        let fused_dx = g1.grad(x1).expect("grad");

        let g2 = Graph::new();
        let x2 = g2.input(xt.clone());
        let mean = g2.mean_axis(x2, 1, true);
        let centered = g2.sub(x2, mean);
        let var = g2.mean_axis(g2.square(centered), 1, true);
        let std = g2.sqrt(g2.add_scalar(var, 1e-5));
        let normed = g2.div(centered, std);
        let gamma = g2.param(&ln.gamma);
        let beta = g2.param(&ln.beta);
        let composed = g2.add(g2.mul(normed, gamma), beta);
        let composed_val = g2.value(composed);
        g2.backward(g2.sum_all(g2.square(composed)));
        let composed_dx = g2.grad(x2).expect("grad");

        for (a, b) in fused_val.data().iter().zip(composed_val.data()) {
            assert!((a - b).abs() < 1e-5, "forward {a} vs {b}");
        }
        for (a, b) in fused_dx.data().iter().zip(composed_dx.data()) {
            assert!((a - b).abs() < 1e-4, "backward {a} vs {b}");
        }
    }

    #[test]
    fn groupnorm_normalizes_within_groups() {
        let gn = GroupNorm::new(2, 4, "gn");
        let g = Graph::new();
        // Two groups of two channels; fill with distinct scales.
        let mut x = Tensor::zeros(vec![1, 4, 2, 2]);
        for c in 0..4 {
            for i in 0..4 {
                x.data_mut()[c * 4 + i] = (c as f32 + 1.0) * (i as f32 + 1.0);
            }
        }
        let xv = g.input(x);
        let y = g.value(gn.forward(&g, xv));
        // Each group of 8 values should be ~zero-mean.
        for grp in 0..2 {
            let d = &y.data()[grp * 8..(grp + 1) * 8];
            let mean: f32 = d.iter().sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "group {grp} mean {mean}");
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn groupnorm_rejects_bad_groups() {
        let _ = GroupNorm::new(3, 4, "gn");
    }
}
