//! JSON checkpointing of parameter sets.
//!
//! The two DOT stages are trained separately (paper §5: stage 1's parameters
//! are frozen before stage 2 trains), so being able to snapshot and restore a
//! parameter set is part of the pipeline, not just a convenience.

use odt_tensor::{Param, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why a [`StateDict`] could not be restored into a parameter set.
///
/// Checkpoint loading distinguishes these so callers can tell a corrupted
/// file from an architecture mismatch from numerically-poisoned parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum StateDictError {
    /// A parameter the model expects is absent from the dict.
    MissingParam {
        /// The expected parameter name.
        name: String,
    },
    /// A stored tensor's shape disagrees with the model parameter's.
    ShapeMismatch {
        /// The parameter name.
        name: String,
        /// Shape the model expects.
        expected: Vec<usize>,
        /// Shape found in the dict.
        found: Vec<usize>,
    },
    /// A stored tensor contains NaN or infinite values.
    NonFinite {
        /// The parameter name.
        name: String,
        /// How many elements are non-finite.
        count: usize,
    },
}

impl std::fmt::Display for StateDictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateDictError::MissingParam { name } => {
                write!(f, "state dict missing parameter '{name}'")
            }
            StateDictError::ShapeMismatch { name, expected, found } => write!(
                f,
                "parameter '{name}' shape mismatch: model expects {expected:?}, dict holds {found:?}"
            ),
            StateDictError::NonFinite { name, count } => {
                write!(f, "parameter '{name}' holds {count} non-finite value(s)")
            }
        }
    }
}

impl std::error::Error for StateDictError {}

/// A serializable snapshot of named parameter values.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
pub struct StateDict {
    entries: BTreeMap<String, Tensor>,
}

impl StateDict {
    /// Number of parameters captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(name, tensor)` entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The stored tensor for a parameter name, if present.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Verify every stored tensor is finite; the error names the first
    /// offending parameter.
    pub fn validate_finite(&self) -> Result<(), StateDictError> {
        for (name, t) in &self.entries {
            let count = t.count_non_finite();
            if count > 0 {
                return Err(StateDictError::NonFinite {
                    name: name.clone(),
                    count,
                });
            }
        }
        Ok(())
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("state dict serialization cannot fail")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Capture the current values of `params` keyed by parameter name.
///
/// Panics if two parameters share a name — state dicts require unique names.
pub fn state_dict(params: &[Param]) -> StateDict {
    let mut entries = BTreeMap::new();
    for p in params {
        let prev = entries.insert(p.name(), p.value());
        assert!(prev.is_none(), "duplicate parameter name '{}'", p.name());
    }
    StateDict { entries }
}

/// Restore values into `params` from a snapshot. Every parameter must be
/// present in the dict with a matching shape.
pub fn load_state_dict(params: &[Param], dict: &StateDict) {
    for p in params {
        let value = dict
            .entries
            .get(&p.name())
            .unwrap_or_else(|| panic!("state dict missing parameter '{}'", p.name()));
        p.set_value(value.clone());
    }
}

/// Fallible [`load_state_dict`]: validates presence, shape and finiteness of
/// every entry *before* mutating any parameter, so a failed load leaves the
/// model untouched. This is what checkpoint loading uses to turn file
/// corruption into a typed error instead of a panic or a poisoned model.
pub fn try_load_state_dict(params: &[Param], dict: &StateDict) -> Result<(), StateDictError> {
    for p in params {
        let name = p.name();
        let value = dict
            .entries
            .get(&name)
            .ok_or_else(|| StateDictError::MissingParam { name: name.clone() })?;
        let expected = p.value().shape().to_vec();
        if value.shape() != &expected[..] {
            return Err(StateDictError::ShapeMismatch {
                name,
                expected,
                found: value.shape().to_vec(),
            });
        }
        let count = value.count_non_finite();
        if count > 0 {
            return Err(StateDictError::NonFinite { name, count });
        }
    }
    for p in params {
        let value = dict.entries.get(&p.name()).expect("validated above");
        p.set_value(value.clone());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let a = Param::new(Tensor::from_vec(vec![1.0, 2.0], vec![2]), "a");
        let b = Param::new(Tensor::scalar(5.0), "b");
        let dict = state_dict(&[a.clone(), b.clone()]);
        let json = dict.to_json();
        let restored = StateDict::from_json(&json).unwrap();
        a.set_value(Tensor::zeros(vec![2]));
        b.set_value(Tensor::scalar(0.0));
        load_state_dict(&[a.clone(), b.clone()], &restored);
        assert_eq!(a.value().data(), &[1.0, 2.0]);
        assert_eq!(b.value().data()[0], 5.0);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let a = Param::new(Tensor::scalar(1.0), "x");
        let b = Param::new(Tensor::scalar(2.0), "x");
        let _ = state_dict(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "missing parameter")]
    fn missing_entry_rejected() {
        let a = Param::new(Tensor::scalar(1.0), "a");
        let dict = state_dict(&[a]);
        let c = Param::new(Tensor::scalar(1.0), "c");
        load_state_dict(&[c], &dict);
    }

    #[test]
    fn try_load_reports_missing_shape_and_nonfinite() {
        let a = Param::new(Tensor::from_vec(vec![1.0, 2.0], vec![2]), "a");
        let dict = state_dict(&[a.clone()]);

        // Missing parameter.
        let c = Param::new(Tensor::scalar(1.0), "c");
        assert!(matches!(
            try_load_state_dict(&[c], &dict),
            Err(StateDictError::MissingParam { name }) if name == "c"
        ));

        // Shape mismatch; the target parameter must stay untouched.
        let wide = Param::new(Tensor::zeros(vec![3]), "a");
        assert!(matches!(
            try_load_state_dict(&[wide.clone()], &dict),
            Err(StateDictError::ShapeMismatch { ref name, .. }) if name == "a"
        ));
        assert_eq!(wide.value().data(), &[0.0, 0.0, 0.0]);

        // Non-finite payload.
        let nan = Param::new(Tensor::from_vec(vec![f32::NAN, 1.0], vec![2]), "a");
        let bad = state_dict(&[nan]);
        assert!(bad.validate_finite().is_err());
        let tgt = Param::new(Tensor::zeros(vec![2]), "a");
        assert!(matches!(
            try_load_state_dict(&[tgt.clone()], &bad),
            Err(StateDictError::NonFinite { count: 1, .. })
        ));
        assert_eq!(tgt.value().data(), &[0.0, 0.0]);

        // Happy path still loads.
        let tgt2 = Param::new(Tensor::zeros(vec![2]), "a");
        try_load_state_dict(&[tgt2.clone()], &dict).unwrap();
        assert_eq!(tgt2.value().data(), &[1.0, 2.0]);
    }
}
