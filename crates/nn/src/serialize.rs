//! JSON checkpointing of parameter sets.
//!
//! The two DOT stages are trained separately (paper §5: stage 1's parameters
//! are frozen before stage 2 trains), so being able to snapshot and restore a
//! parameter set is part of the pipeline, not just a convenience.

use odt_tensor::{Param, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A serializable snapshot of named parameter values.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
pub struct StateDict {
    entries: BTreeMap<String, Tensor>,
}

impl StateDict {
    /// Number of parameters captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("state dict serialization cannot fail")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Capture the current values of `params` keyed by parameter name.
///
/// Panics if two parameters share a name — state dicts require unique names.
pub fn state_dict(params: &[Param]) -> StateDict {
    let mut entries = BTreeMap::new();
    for p in params {
        let prev = entries.insert(p.name(), p.value());
        assert!(prev.is_none(), "duplicate parameter name '{}'", p.name());
    }
    StateDict { entries }
}

/// Restore values into `params` from a snapshot. Every parameter must be
/// present in the dict with a matching shape.
pub fn load_state_dict(params: &[Param], dict: &StateDict) {
    for p in params {
        let value = dict
            .entries
            .get(&p.name())
            .unwrap_or_else(|| panic!("state dict missing parameter '{}'", p.name()));
        p.set_value(value.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let a = Param::new(Tensor::from_vec(vec![1.0, 2.0], vec![2]), "a");
        let b = Param::new(Tensor::scalar(5.0), "b");
        let dict = state_dict(&[a.clone(), b.clone()]);
        let json = dict.to_json();
        let restored = StateDict::from_json(&json).unwrap();
        a.set_value(Tensor::zeros(vec![2]));
        b.set_value(Tensor::scalar(0.0));
        load_state_dict(&[a.clone(), b.clone()], &restored);
        assert_eq!(a.value().data(), &[1.0, 2.0]);
        assert_eq!(b.value().data()[0], 5.0);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let a = Param::new(Tensor::scalar(1.0), "x");
        let b = Param::new(Tensor::scalar(2.0), "x");
        let _ = state_dict(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "missing parameter")]
    fn missing_entry_rejected() {
        let a = Param::new(Tensor::scalar(1.0), "a");
        let dict = state_dict(&[a]);
        let c = Param::new(Tensor::scalar(1.0), "c");
        load_state_dict(&[c], &dict);
    }
}
