//! # odt-nn
//!
//! Neural-network building blocks on top of the [`odt_tensor`] autograd tape:
//! the layer zoo the DOT ODT-Oracle models are assembled from.
//!
//! * [`Linear`], [`Conv2d`], [`Embedding`] — parametric layers
//! * [`LayerNorm`], [`GroupNorm`] — normalization
//! * [`MultiHeadAttention`], [`FeedForward`], [`EncoderLayer`] — Transformer
//!   components (used by both the UNet denoiser's attention blocks and the
//!   Masked Vision Transformer)
//! * [`GruCell`] / [`Gru`] — recurrent encoder used by the path-based
//!   baselines (WDDRA, STDGCN, DeepOD's trajectory branch)
//! * [`Adam`] — the optimizer the paper uses throughout (§6.3)
//! * [`positional_encoding`] — the sinusoidal encoding of Eq. 12
//! * [`state_dict`] / [`load_state_dict`] — JSON checkpointing
//!
//! Layers expose `forward(&Graph, Var) -> Var` and `params() -> Vec<Param>`;
//! a fresh graph is built per training step.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adam;
mod attention;
mod conv;
mod embedding;
mod linear;
mod norm;
mod pe;
mod rnn;
pub mod serialize;
mod transformer;

pub use adam::Adam;
pub use attention::MultiHeadAttention;
pub use conv::Conv2d;
pub use embedding::Embedding;
pub use linear::Linear;
pub use norm::{GroupNorm, LayerNorm};
pub use pe::{encode_position, positional_encoding};
pub use rnn::{Gru, GruCell};
pub use serialize::{load_state_dict, state_dict, try_load_state_dict, StateDictError};
pub use transformer::{EncoderLayer, FeedForward};

use odt_tensor::Param;

/// Anything that owns trainable parameters.
pub trait HasParams {
    /// All trainable parameters, in a stable order.
    fn params(&self) -> Vec<Param>;

    /// Total scalar parameter count (the paper's "model size" unit,
    /// multiplied by 4 bytes for Table 5).
    fn num_params(&self) -> usize {
        self.params().iter().map(Param::numel).sum()
    }
}
