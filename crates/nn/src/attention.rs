//! Multi-head dot-product attention.

use crate::{HasParams, Linear};
use odt_tensor::{Graph, Param, Tensor, Var};
use rand::Rng;

/// Multi-head self/cross attention over `[batch, seq, dim]` sequences.
///
/// Used in two places in the DOT pipeline:
/// * the spatial attention modules inside the UNet denoiser blocks (§4.2),
///   where the sequence is the flattened feature map;
/// * the MViT / vanilla-ViT estimator layers (§5.2), where the sequence is
///   the flattened PiT (vanilla ViT passes an additive key mask; MViT gathers
///   valid items beforehand and needs no mask).
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// `dim` must be divisible by `heads`.
    pub fn new(rng: &mut impl Rng, dim: usize, heads: usize, name: &str) -> Self {
        assert!(
            dim % heads == 0,
            "dim {dim} must be divisible by heads {heads}"
        );
        MultiHeadAttention {
            wq: Linear::new(rng, dim, dim, &format!("{name}.wq")),
            wk: Linear::new(rng, dim, dim, &format!("{name}.wk")),
            wv: Linear::new(rng, dim, dim, &format!("{name}.wv")),
            wo: Linear::new(rng, dim, dim, &format!("{name}.wo")),
            heads,
            dim,
        }
    }

    /// Self-attention. `x: [b, t, d]`; optional additive `key_mask: [b, t]`
    /// (use 0 for valid keys and a large negative number, e.g. `-1e9`, for
    /// padded/invalid keys — the vanilla-ViT masking scheme of Figure 7(a)).
    pub fn forward(&self, g: &Graph, x: Var, key_mask: Option<&Tensor>) -> Var {
        let shape = g.shape(x);
        assert_eq!(shape.len(), 3, "attention input must be [b, t, d]");
        let (b, t, d) = (shape[0], shape[1], shape[2]);
        assert_eq!(d, self.dim, "attention dim mismatch");
        let h = self.heads;
        let dh = d / h;

        let split = |g: &Graph, v: Var| -> Var {
            // [b, t, d] -> [b, t, h, dh] -> [b, h, t, dh] -> [b*h, t, dh]
            let r = g.reshape(v, vec![b, t, h, dh]);
            let p = g.permute(r, &[0, 2, 1, 3]);
            g.reshape(p, vec![b * h, t, dh])
        };

        let q = split(g, self.wq.forward(g, x));
        let k = split(g, self.wk.forward(g, x));
        let v = split(g, self.wv.forward(g, x));

        let kt = g.permute(k, &[0, 2, 1]);
        let mut logits = g.scale(g.bmm(q, kt), 1.0 / (dh as f32).sqrt());

        if let Some(mask) = key_mask {
            assert_eq!(mask.shape(), &[b, t], "key mask must be [b, t]");
            // Repeat each batch row for every head: [b, t] -> [b*h, 1, t].
            let indices: Vec<usize> = (0..b)
                .flat_map(|bi| std::iter::repeat(bi).take(h))
                .collect();
            let expanded = mask.index_select0(&indices).reshape(vec![b * h, 1, t]);
            let mv = g.input(expanded);
            logits = g.add(logits, mv);
        }

        let attn = g.softmax_lastdim(logits);
        let ctx = g.bmm(attn, v); // [b*h, t, dh]
                                  // Back to [b, t, d].
        let r = g.reshape(ctx, vec![b, h, t, dh]);
        let p = g.permute(r, &[0, 2, 1, 3]);
        let merged = g.reshape(p, vec![b, t, d]);
        self.wo.forward(g, merged)
    }
}

impl HasParams for MultiHeadAttention {
    fn params(&self) -> Vec<Param> {
        [&self.wq, &self.wk, &self.wv, &self.wo]
            .iter()
            .flat_map(|l| l.params())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(&mut rng, 8, 2, "a");
        let g = Graph::new();
        let x = g.input(init::normal(&mut rng, vec![2, 5, 8], 1.0));
        let y = mha.forward(&g, x, None);
        assert_eq!(g.shape(y), vec![2, 5, 8]);
    }

    #[test]
    fn masked_keys_do_not_influence_output() {
        // With key 2 masked out, perturbing token 2's content must not
        // change other tokens' outputs (query side of token 2 still varies,
        // so compare outputs at tokens 0 and 1 only).
        let mut rng = StdRng::seed_from_u64(1);
        let mha = MultiHeadAttention::new(&mut rng, 4, 1, "a");
        let base = init::normal(&mut rng, vec![1, 3, 4], 1.0);
        let mut perturbed = base.clone();
        for i in 0..4 {
            perturbed.data_mut()[2 * 4 + i] += 5.0;
        }
        let mask = Tensor::from_vec(vec![0.0, 0.0, -1e9], vec![1, 3]);

        let run = |input: &Tensor| {
            let g = Graph::new();
            let x = g.input(input.clone());
            g.value(mha.forward(&g, x, Some(&mask)))
        };
        let ya = run(&base);
        let yb = run(&perturbed);
        for tkn in 0..2 {
            for i in 0..4 {
                let a = ya.at(&[0, tkn, i]);
                let b = yb.at(&[0, tkn, i]);
                assert!((a - b).abs() < 1e-5, "token {tkn} dim {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn gradients_flow_to_all_projections() {
        let mut rng = StdRng::seed_from_u64(2);
        let mha = MultiHeadAttention::new(&mut rng, 4, 2, "a");
        let g = Graph::new();
        let x = g.input(init::normal(&mut rng, vec![1, 3, 4], 1.0));
        let y = mha.forward(&g, x, None);
        g.backward(g.sum_all(g.square(y)));
        for p in mha.params() {
            assert!(
                p.grad().data().iter().any(|&v| v != 0.0),
                "no gradient reached {}",
                p.name()
            );
        }
    }

    #[test]
    fn num_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(&mut rng, 8, 2, "a");
        // 4 linears of (8*8 + 8).
        assert_eq!(mha.num_params(), 4 * (64 + 8));
    }
}
