//! Transformer encoder components: feed-forward network and encoder layer.

use crate::{HasParams, LayerNorm, Linear, MultiHeadAttention};
use odt_tensor::{Graph, Param, Tensor, Var};
use rand::Rng;

/// Two-layer position-wise feed-forward network with GELU.
pub struct FeedForward {
    fc1: Linear,
    fc2: Linear,
}

impl FeedForward {
    /// `dim -> hidden -> dim`.
    pub fn new(rng: &mut impl Rng, dim: usize, hidden: usize, name: &str) -> Self {
        FeedForward {
            fc1: Linear::new(rng, dim, hidden, &format!("{name}.fc1")),
            fc2: Linear::new(rng, hidden, dim, &format!("{name}.fc2")),
        }
    }

    /// Apply position-wise: `[..., dim] -> [..., dim]`.
    pub fn forward(&self, g: &Graph, x: Var) -> Var {
        let h = g.gelu(self.fc1.forward(g, x));
        self.fc2.forward(g, h)
    }
}

impl HasParams for FeedForward {
    fn params(&self) -> Vec<Param> {
        let mut p = self.fc1.params();
        p.extend(self.fc2.params());
        p
    }
}

/// A pre-norm Transformer encoder layer: self-attention and feed-forward,
/// each with a residual connection (paper §5.2, "each layer contains two
/// modules, a self-attention and a feed-forward network, both with the
/// residual connection").
pub struct EncoderLayer {
    attn: MultiHeadAttention,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
}

impl EncoderLayer {
    /// `dim` model width, `heads` attention heads, `hidden` FFN width.
    pub fn new(rng: &mut impl Rng, dim: usize, heads: usize, hidden: usize, name: &str) -> Self {
        EncoderLayer {
            attn: MultiHeadAttention::new(rng, dim, heads, &format!("{name}.attn")),
            ffn: FeedForward::new(rng, dim, hidden, &format!("{name}.ffn")),
            ln1: LayerNorm::new(dim, &format!("{name}.ln1")),
            ln2: LayerNorm::new(dim, &format!("{name}.ln2")),
        }
    }

    /// Apply to `[b, t, d]` with optional additive key mask `[b, t]`.
    pub fn forward(&self, g: &Graph, x: Var, key_mask: Option<&Tensor>) -> Var {
        let a = self.attn.forward(g, self.ln1.forward(g, x), key_mask);
        let x = g.add(x, a);
        let f = self.ffn.forward(g, self.ln2.forward(g, x));
        g.add(x, f)
    }
}

impl HasParams for EncoderLayer {
    fn params(&self) -> Vec<Param> {
        let mut p = self.attn.params();
        p.extend(self.ffn.params());
        p.extend(self.ln1.params());
        p.extend(self.ln2.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encoder_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = EncoderLayer::new(&mut rng, 8, 2, 16, "enc");
        let g = Graph::new();
        let x = g.input(init::normal(&mut rng, vec![2, 4, 8], 1.0));
        assert_eq!(g.shape(layer.forward(&g, x, None)), vec![2, 4, 8]);
    }

    #[test]
    fn residual_keeps_signal_at_init() {
        // With random init and small weights, output should correlate with
        // input thanks to the residual connections — it must not be zero.
        let mut rng = StdRng::seed_from_u64(1);
        let layer = EncoderLayer::new(&mut rng, 8, 2, 16, "enc");
        let g = Graph::new();
        let input = init::normal(&mut rng, vec![1, 4, 8], 1.0);
        let x = g.input(input.clone());
        let y = g.value(layer.forward(&g, x, None));
        let dot: f32 = y.data().iter().zip(input.data()).map(|(a, b)| a * b).sum();
        assert!(dot.abs() > 0.1, "residual path lost the input signal");
    }

    #[test]
    fn ffn_gradients_flow() {
        let mut rng = StdRng::seed_from_u64(2);
        let ffn = FeedForward::new(&mut rng, 4, 8, "ffn");
        let g = Graph::new();
        let x = g.input(init::normal(&mut rng, vec![3, 4], 1.0));
        g.backward(g.sum_all(g.square(ffn.forward(&g, x))));
        for p in ffn.params() {
            let any = p.grad().data().iter().any(|&v| v != 0.0);
            assert!(any, "no grad for {}", p.name());
        }
    }
}
