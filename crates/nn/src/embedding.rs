//! Learned embedding table.

use crate::HasParams;
use odt_tensor::{init, Graph, Param, Var};
use rand::Rng;

/// An embedding table `[vocab, dim]`; lookup by row index.
///
/// Used for the MViT's cell embeddings (`E` in Eq. 18) and the baselines'
/// spatial-cell / temporal-slot embeddings (MURAT).
pub struct Embedding {
    table: Param,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Create with small normal initialization.
    pub fn new(rng: &mut impl Rng, vocab: usize, dim: usize, name: &str) -> Self {
        Embedding {
            table: Param::new(
                init::normal(rng, vec![vocab, dim], 0.02),
                format!("{name}.table"),
            ),
            vocab,
            dim,
        }
    }

    /// Look up rows: returns `[indices.len(), dim]`.
    pub fn forward(&self, g: &Graph, indices: &[usize]) -> Var {
        for &i in indices {
            assert!(
                i < self.vocab,
                "embedding index {i} out of vocab {}",
                self.vocab
            );
        }
        let t = g.param(&self.table);
        g.index_select0(t, indices)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl HasParams for Embedding {
    fn params(&self) -> Vec<Param> {
        vec![self.table.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_tensor::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_shape_and_grad() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(&mut rng, 10, 4, "e");
        let g = Graph::new();
        let out = e.forward(&g, &[3, 3, 7]);
        assert_eq!(g.shape(out), vec![3, 4]);
        g.backward(g.sum_all(out));
        let grad = e.params()[0].grad();
        // Row 3 used twice -> grad 2, row 7 once -> grad 1, others 0.
        assert_eq!(grad.at(&[3, 0]), 2.0);
        assert_eq!(grad.at(&[7, 0]), 1.0);
        assert_eq!(grad.at(&[0, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn out_of_vocab_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(&mut rng, 4, 2, "e");
        let g = Graph::new();
        let _ = e.forward(&g, &[4]);
    }
}
