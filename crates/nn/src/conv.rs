//! 2-D convolution layer (NCHW).

use crate::HasParams;
use odt_tensor::{init, Graph, Param, Tensor, Var};
use rand::Rng;

/// A 2-D convolution layer with Kaiming-normal weights and zero bias.
pub struct Conv2d {
    weight: Param, // [c_out, c_in, k, k]
    bias: Option<Param>,
    stride: usize,
    pad: usize,
}

impl Conv2d {
    /// Create a `k × k` convolution.
    pub fn new(
        rng: &mut impl Rng,
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
        name: &str,
    ) -> Self {
        Conv2d {
            weight: Param::new(
                init::kaiming_normal(rng, vec![c_out, c_in, k, k]),
                format!("{name}.weight"),
            ),
            bias: Some(Param::new(
                Tensor::zeros(vec![c_out]),
                format!("{name}.bias"),
            )),
            stride,
            pad,
        }
    }

    /// A 3×3 same-padding stride-1 convolution, the UNet workhorse.
    pub fn same3(rng: &mut impl Rng, c_in: usize, c_out: usize, name: &str) -> Self {
        Self::new(rng, c_in, c_out, 3, 1, 1, name)
    }

    /// A 1×1 projection convolution (residual shortcuts / channel changes).
    pub fn proj1(rng: &mut impl Rng, c_in: usize, c_out: usize, name: &str) -> Self {
        Self::new(rng, c_in, c_out, 1, 1, 0, name)
    }

    /// Apply to `[b, c_in, h, w]`.
    pub fn forward(&self, g: &Graph, x: Var) -> Var {
        let w = g.param(&self.weight);
        let b = self.bias.as_ref().map(|b| g.param(b));
        g.conv2d(x, w, b, self.stride, self.pad)
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.weight.value().shape()[0]
    }
}

impl HasParams for Conv2d {
    fn params(&self) -> Vec<Param> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn same3_preserves_spatial_dims() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Conv2d::same3(&mut rng, 2, 4, "c");
        let g = Graph::new();
        let x = g.input(Tensor::zeros(vec![1, 2, 8, 8]));
        assert_eq!(g.shape(c.forward(&g, x)), vec![1, 4, 8, 8]);
    }

    #[test]
    fn strided_halves_spatial_dims() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Conv2d::new(&mut rng, 1, 1, 4, 2, 1, "c");
        let g = Graph::new();
        let x = g.input(Tensor::zeros(vec![1, 1, 8, 8]));
        assert_eq!(g.shape(c.forward(&g, x)), vec![1, 1, 4, 4]);
    }

    #[test]
    fn gradient_reaches_kernel() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = Conv2d::proj1(&mut rng, 1, 1, "c");
        let g = Graph::new();
        let x = g.input(Tensor::ones(vec![1, 1, 2, 2]));
        let y = c.forward(&g, x);
        g.backward(g.sum_all(y));
        // d/dw of sum over a 1x1 conv on all-ones input = number of pixels.
        assert_eq!(c.params()[0].grad().data()[0], 4.0);
        assert_eq!(c.params()[1].grad().data()[0], 4.0);
    }
}
