//! PiT flattening and feature extraction (paper §5.1, Eqs. 17–18).

use odt_nn::{positional_encoding, Embedding, HasParams, Linear};
use odt_tensor::{Graph, Param, Tensor, Var};
use odt_traj::Pit;
use rand::Rng;

/// Configuration of the embedding stage.
#[derive(Clone, Debug)]
pub struct EmbedderConfig {
    /// Grid side length `L_G`.
    pub lg: usize,
    /// Embedding dimension `d_E` (Table 2).
    pub d_e: usize,
    /// Include the cell embedding module `E` (disable for *No-CE*).
    pub use_cell_embedding: bool,
    /// Include the latent casting module `FC_ST` (disable for *No-ST*).
    pub use_latent_cast: bool,
}

impl EmbedderConfig {
    /// The full embedder at a given size.
    pub fn new(lg: usize, d_e: usize) -> Self {
        EmbedderConfig {
            lg,
            d_e,
            use_cell_embedding: true,
            use_latent_cast: true,
        }
    }
}

/// Computes `X_latent[x, y] = E[i] + PE(i) + FC_ST(X[x, y, :])` (Eq. 18)
/// for every cell of a PiT, in the row-major flatten order of Eq. 17.
pub struct PitEmbedder {
    cfg: EmbedderConfig,
    cell_emb: Option<Embedding>,
    latent_cast: Option<Linear>,
    pe: Tensor, // [lg*lg, d_e], constant
}

impl PitEmbedder {
    /// Build with random initialization.
    pub fn new(rng: &mut impl Rng, cfg: EmbedderConfig) -> Self {
        let cells = cfg.lg * cfg.lg;
        PitEmbedder {
            cell_emb: cfg
                .use_cell_embedding
                .then(|| Embedding::new(rng, cells, cfg.d_e, "embed.cell")),
            latent_cast: cfg
                .use_latent_cast
                .then(|| Linear::new(rng, 3, cfg.d_e, "embed.fc_st")),
            pe: positional_encoding(cells, cfg.d_e),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EmbedderConfig {
        &self.cfg
    }

    /// Embed the cells at `indices` (row-major flat ids) of `pit`,
    /// returning `[indices.len(), d_e]`. Passing all `L_G²` indices yields
    /// the full latent sequence; passing `pit.visited_indices()` yields the
    /// masked sequence the MViT attends over.
    pub fn embed(&self, g: &Graph, pit: &Pit, indices: &[usize]) -> Var {
        let lg = self.cfg.lg;
        assert_eq!(pit.lg(), lg, "PiT grid size mismatch");
        let n = indices.len();
        assert!(n > 0, "cannot embed an empty cell selection");

        // Gather the 3 channel values per selected cell -> [n, 3].
        let mut feats = Tensor::zeros(vec![n, 3]);
        for (row_i, &idx) in indices.iter().enumerate() {
            let (row, col) = (idx / lg, idx % lg);
            for ch in 0..3 {
                feats.set(&[row_i, ch], pit.at(ch, row, col));
            }
        }

        let mut acc: Option<Var> = None;
        let add = |g: &Graph, v: Var, acc: &mut Option<Var>| {
            *acc = Some(match acc.take() {
                Some(a) => g.add(a, v),
                None => v,
            });
        };
        if let Some(emb) = &self.cell_emb {
            let e = emb.forward(g, indices);
            add(g, e, &mut acc);
        }
        let pe_rows = g.input(self.pe.index_select0(indices));
        add(g, pe_rows, &mut acc);
        if let Some(cast) = &self.latent_cast {
            let f = cast.forward(g, g.input(feats));
            add(g, f, &mut acc);
        }
        acc.expect("positional encoding is always present")
    }
}

impl HasParams for PitEmbedder {
    fn params(&self) -> Vec<Param> {
        let mut p = Vec::new();
        if let Some(e) = &self.cell_emb {
            p.extend(e.params());
        }
        if let Some(l) = &self.latent_cast {
            p.extend(l.params());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_roadnet::LngLat;
    use odt_traj::{GpsPoint, GridSpec, Trajectory};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_pit(lg: usize) -> Pit {
        let grid = GridSpec::new(
            LngLat { lng: 0.0, lat: 0.0 },
            LngLat { lng: 1.0, lat: 1.0 },
            lg,
        );
        let t = Trajectory::new(vec![
            GpsPoint {
                loc: LngLat { lng: 0.1, lat: 0.1 },
                t: 0.0,
            },
            GpsPoint {
                loc: LngLat { lng: 0.5, lat: 0.5 },
                t: 300.0,
            },
            GpsPoint {
                loc: LngLat { lng: 0.9, lat: 0.9 },
                t: 600.0,
            },
        ]);
        Pit::from_trajectory(&t, &grid)
    }

    #[test]
    fn embeds_selected_cells() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = PitEmbedder::new(&mut rng, EmbedderConfig::new(4, 8));
        let pit = sample_pit(4);
        let g = Graph::new();
        let idx = pit.visited_indices();
        let out = e.embed(&g, &pit, &idx);
        assert_eq!(g.shape(out), vec![idx.len(), 8]);
    }

    #[test]
    fn no_ce_and_no_st_still_work() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cfg = EmbedderConfig::new(4, 8);
        cfg.use_cell_embedding = false;
        let no_ce = PitEmbedder::new(&mut rng, cfg.clone());
        cfg.use_cell_embedding = true;
        cfg.use_latent_cast = false;
        let no_st = PitEmbedder::new(&mut rng, cfg);
        let pit = sample_pit(4);
        let g = Graph::new();
        for e in [&no_ce, &no_st] {
            let out = e.embed(&g, &pit, &[0, 5]);
            assert_eq!(g.shape(out), vec![2, 8]);
        }
        // No-CE has fewer parameters than the full embedder.
        assert!(no_ce.num_params() < no_st.num_params() + 16 * 8);
    }

    #[test]
    fn different_cells_embed_differently() {
        let mut rng = StdRng::seed_from_u64(2);
        let e = PitEmbedder::new(&mut rng, EmbedderConfig::new(4, 8));
        let pit = sample_pit(4);
        let g = Graph::new();
        let out = g.value(e.embed(&g, &pit, &[0, 1]));
        let row0 = &out.data()[..8];
        let row1 = &out.data()[8..];
        assert_ne!(row0, row1);
    }

    #[test]
    #[should_panic(expected = "empty cell selection")]
    fn empty_selection_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = PitEmbedder::new(&mut rng, EmbedderConfig::new(4, 8));
        let pit = sample_pit(4);
        let g = Graph::new();
        let _ = e.embed(&g, &pit, &[]);
    }
}
