//! The vanilla Vision Transformer ablation (*Est-ViT*).
//!
//! Identical to the MViT except that attention runs over **all** `L_G²`
//! items; invalid items are excluded from attention via an additive key
//! mask (Figure 7(a)) but their weights are still computed — the exact
//! inefficiency MViT removes. Kept for Table 7 and Figure 8.

use crate::embed::{EmbedderConfig, PitEmbedder};
use crate::mvit::MVitConfig;
use crate::PitEstimator;
use odt_nn::{EncoderLayer, HasParams, Linear};
use odt_tensor::{Graph, Param, Tensor, Var};
use odt_traj::Pit;
use rand::Rng;

/// The vanilla-ViT estimator.
pub struct VanillaVit {
    embedder: PitEmbedder,
    layers: Vec<EncoderLayer>,
    fc_pre: Linear,
    lg: usize,
}

impl VanillaVit {
    /// Build for grid size `lg` using the same hyper-parameters as MViT.
    pub fn new(rng: &mut impl Rng, cfg: &MVitConfig, lg: usize) -> Self {
        let embedder = PitEmbedder::new(rng, EmbedderConfig::new(lg, cfg.d_e));
        let layers = (0..cfg.l_e)
            .map(|i| {
                EncoderLayer::new(
                    rng,
                    cfg.d_e,
                    cfg.heads,
                    cfg.ffn_hidden,
                    &format!("vit.layer{i}"),
                )
            })
            .collect();
        let fc_pre = Linear::new(rng, cfg.d_e, 1, "vit.fc_pre");
        VanillaVit {
            embedder,
            layers,
            fc_pre,
            lg,
        }
    }
}

impl PitEstimator for VanillaVit {
    fn predict(&self, g: &Graph, pit: &Pit) -> Var {
        assert_eq!(pit.lg(), self.lg, "PiT grid size mismatch");
        let cells = self.lg * self.lg;
        let all: Vec<usize> = (0..cells).collect();
        let d = self.fc_pre.in_dim();
        let seq = self.embedder.embed(g, pit, &all); // [cells, d]
        let mut x = g.reshape(seq, vec![1, cells, d]);
        // Additive key mask: 0 for valid, -1e9 for invalid items.
        let mask_vals: Vec<f32> = pit
            .mask_bool()
            .iter()
            .map(|&v| if v { 0.0 } else { -1e9 })
            .collect();
        let any_valid = mask_vals.iter().any(|&v| v == 0.0);
        let key_mask = Tensor::from_vec(
            if any_valid {
                mask_vals
            } else {
                vec![0.0; cells]
            },
            vec![1, cells],
        );
        for layer in &self.layers {
            x = layer.forward(g, x, Some(&key_mask));
        }
        // Mean pool over valid items only (invalid rows carry no signal but
        // would dilute the pool).
        let indices = {
            let v = pit.visited_indices();
            if v.is_empty() {
                all
            } else {
                v
            }
        };
        let flat = g.reshape(x, vec![cells, d]);
        let valid = g.index_select0(flat, &indices);
        let pooled = g.mean_axis(g.reshape(valid, vec![1, indices.len(), d]), 1, false);
        let out = self.fc_pre.forward(g, pooled);
        g.reshape(out, vec![1])
    }

    fn estimator_params(&self) -> Vec<Param> {
        let mut p = self.embedder.params();
        for l in &self.layers {
            p.extend(l.params());
        }
        p.extend(self.fc_pre.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvit::tests::pit_with_visits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn predicts_scalar() {
        let mut rng = StdRng::seed_from_u64(0);
        let v = VanillaVit::new(&mut rng, &MVitConfig::fast(), 6);
        let pit = pit_with_visits(6, &[(0, 0), (1, 1)], &[0.0, 90.0]);
        let g = Graph::new();
        let y = v.predict(&g, &pit);
        assert_eq!(g.shape(y), vec![1]);
        assert!(g.value(y).is_finite());
    }

    #[test]
    fn masked_cells_do_not_affect_prediction() {
        // Changing the temporal features of an *unvisited* cell must not
        // change the prediction: it is masked out of attention and pooling.
        let mut rng = StdRng::seed_from_u64(1);
        let v = VanillaVit::new(&mut rng, &MVitConfig::fast(), 4);
        let pit = pit_with_visits(4, &[(0, 0), (1, 1)], &[0.0, 60.0]);
        let mut altered_tensor = pit.tensor().clone();
        // Perturb ToD of unvisited cell (3, 3); mask stays -1.
        altered_tensor.set(&[1, 3, 3], 0.9);
        let altered = Pit::from_tensor(altered_tensor);
        let g = Graph::new();
        let a = g.value(v.predict(&g, &pit)).data()[0];
        let b = g.value(v.predict(&g, &altered)).data()[0];
        // The FC_ST embedding of the altered cell changes, but it is masked
        // from attention and excluded from pooling, so outputs match.
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn vit_and_mvit_have_comparable_param_counts() {
        use crate::MVit;
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MVitConfig::fast();
        let v = VanillaVit::new(&mut rng, &cfg, 8);
        let m = MVit::with_defaults(&mut rng, &cfg, 8);
        let (vp, mp) = (
            v.estimator_params()
                .iter()
                .map(|p| p.numel())
                .sum::<usize>(),
            m.estimator_params()
                .iter()
                .map(|p| p.numel())
                .sum::<usize>(),
        );
        assert_eq!(vp, mp, "same architecture, different masking only");
    }
}
