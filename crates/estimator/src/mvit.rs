//! The Masked Vision Transformer (paper §5.2).
//!
//! The MViT gathers only the items with valid information (the visited
//! cells, Eq. 19) into a short sequence, runs `L_E` Transformer encoder
//! layers over it (Eq. 20–21), mean-pools and regresses the travel time
//! (Eq. 22). Because attention runs on the gathered sequence, the cost
//! depends on the number of visited cells rather than on `L_G²` — the
//! efficiency claim of Figure 8(c,d).

use crate::embed::{EmbedderConfig, PitEmbedder};
use crate::PitEstimator;
use odt_nn::{EncoderLayer, HasParams, Linear};
use odt_tensor::{Graph, Param, Tensor, Var};
use odt_traj::Pit;
use rand::Rng;

/// MViT hyper-parameters.
#[derive(Clone, Debug)]
pub struct MVitConfig {
    /// Embedding dimension `d_E`.
    pub d_e: usize,
    /// Number of encoder layers `L_E`.
    pub l_e: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// FFN hidden width.
    pub ffn_hidden: usize,
}

impl MVitConfig {
    /// Paper optimum: `d_E = 128`, `L_E = 2`.
    pub fn paper() -> Self {
        MVitConfig {
            d_e: 128,
            l_e: 2,
            heads: 4,
            ffn_hidden: 256,
        }
    }

    /// Reduced CPU-scale config.
    pub fn fast() -> Self {
        MVitConfig {
            d_e: 32,
            l_e: 2,
            heads: 2,
            ffn_hidden: 64,
        }
    }
}

/// The Masked Vision Transformer estimator.
pub struct MVit {
    embedder: PitEmbedder,
    layers: Vec<EncoderLayer>,
    fc_pre: Linear,
}

impl MVit {
    /// Build for grid size `lg`. `embed_cfg` allows the No-CE / No-ST
    /// ablations; pass `EmbedderConfig::new(lg, cfg.d_e)` for the full model.
    pub fn new(rng: &mut impl Rng, cfg: &MVitConfig, embed_cfg: EmbedderConfig) -> Self {
        assert_eq!(
            embed_cfg.d_e, cfg.d_e,
            "embedder width must match model width"
        );
        let embedder = PitEmbedder::new(rng, embed_cfg);
        let layers = (0..cfg.l_e)
            .map(|i| {
                EncoderLayer::new(
                    rng,
                    cfg.d_e,
                    cfg.heads,
                    cfg.ffn_hidden,
                    &format!("mvit.layer{i}"),
                )
            })
            .collect();
        let fc_pre = Linear::new(rng, cfg.d_e, 1, "mvit.fc_pre");
        MVit {
            embedder,
            layers,
            fc_pre,
        }
    }

    /// Convenience constructor with the full embedder.
    pub fn with_defaults(rng: &mut impl Rng, cfg: &MVitConfig, lg: usize) -> Self {
        Self::new(rng, cfg, EmbedderConfig::new(lg, cfg.d_e))
    }
}

impl PitEstimator for MVit {
    fn predict(&self, g: &Graph, pit: &Pit) -> Var {
        let _span = odt_obs::span("stage2.mvit.predict");
        // Masked sequence: only valid items (Eq. 20). A PiT from the
        // diffusion stage can in principle be all-unvisited; fall back to
        // the full sequence so prediction is still defined.
        let mut indices = pit.visited_indices();
        if indices.is_empty() {
            indices = (0..pit.lg() * pit.lg()).collect();
        }
        let t = indices.len();
        let d = self.fc_pre.in_dim();
        let seq = self.embedder.embed(g, pit, &indices); // [t, d]
        let mut x = g.reshape(seq, vec![1, t, d]);
        for layer in &self.layers {
            x = layer.forward(g, x, None);
        }
        // Mean pool over the sequence, then FC (Eq. 22).
        let pooled = g.mean_axis(x, 1, false); // [1, d]
        let out = self.fc_pre.forward(g, pooled); // [1, 1]
        g.reshape(out, vec![1])
    }

    /// One fused forward pass for the whole batch: sequences are padded to
    /// the longest visited set with zero rows and an additive `-1e9` key
    /// mask (softmax weight `exp(-1e9 − m)` underflows to exactly 0 in
    /// `f32`, so padding contributes nothing to attention), then pooled
    /// with per-row `1/t_i` weights — the batched equivalent of the
    /// per-PiT mean pool, up to float rounding.
    fn predict_batch(&self, g: &Graph, pits: &[Pit]) -> Var {
        let _span = odt_obs::span("stage2.mvit.predict_batch");
        assert!(!pits.is_empty(), "predict_batch needs at least one PiT");
        let b = pits.len();
        let d = self.fc_pre.in_dim();
        let index_sets: Vec<Vec<usize>> = pits
            .iter()
            .map(|p| {
                let mut idx = p.visited_indices();
                if idx.is_empty() {
                    idx = (0..p.lg() * p.lg()).collect();
                }
                idx
            })
            .collect();
        let tmax = index_sets.iter().map(|s| s.len()).max().expect("non-empty");
        let mut rows = Vec::with_capacity(b);
        let mut any_pad = false;
        let mut mask = Tensor::zeros(vec![b, tmax]);
        let mut weights = Tensor::zeros(vec![b, tmax, 1]);
        for (i, (pit, idx)) in pits.iter().zip(&index_sets).enumerate() {
            let t = idx.len();
            let seq = self.embedder.embed(g, pit, idx); // [t, d]
            let mut sample = g.reshape(seq, vec![1, t, d]);
            if t < tmax {
                any_pad = true;
                let pad = g.input(Tensor::zeros(vec![1, tmax - t, d]));
                sample = g.concat(&[sample, pad], 1);
                for j in t..tmax {
                    mask.data_mut()[i * tmax + j] = -1e9;
                }
            }
            for j in 0..t {
                weights.data_mut()[i * tmax + j] = 1.0 / t as f32;
            }
            rows.push(sample);
        }
        let mut x = g.concat(&rows, 0); // [b, tmax, d]
        let key_mask = if any_pad { Some(mask) } else { None };
        for layer in &self.layers {
            x = layer.forward(g, x, key_mask.as_ref());
        }
        // Masked mean pool: [b, tmax, 1] weights broadcast over d, then
        // sum over the sequence axis.
        let w = g.input(weights);
        let pooled = g.sum_axis(g.mul(x, w), 1, false); // [b, d]
        let out = self.fc_pre.forward(g, pooled); // [b, 1]
        g.reshape(out, vec![b])
    }

    fn estimator_params(&self) -> Vec<Param> {
        let mut p = self.embedder.params();
        for l in &self.layers {
            p.extend(l.params());
        }
        p.extend(self.fc_pre.params());
        p
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use odt_roadnet::LngLat;
    use odt_tensor::Tensor;
    use odt_traj::{GpsPoint, GridSpec, Trajectory};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub(crate) fn pit_with_visits(lg: usize, cells: &[(usize, usize)], times: &[f64]) -> Pit {
        let grid = GridSpec::new(
            LngLat { lng: 0.0, lat: 0.0 },
            LngLat { lng: 1.0, lat: 1.0 },
            lg,
        );
        let step = 1.0 / lg as f64;
        let points: Vec<GpsPoint> = cells
            .iter()
            .zip(times)
            .map(|(&(row, col), &t)| GpsPoint {
                loc: LngLat {
                    lng: (col as f64 + 0.5) * step,
                    lat: (row as f64 + 0.5) * step,
                },
                t,
            })
            .collect();
        Pit::from_trajectory(&Trajectory::new(points), &grid)
    }

    #[test]
    fn predicts_scalar() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = MVit::with_defaults(&mut rng, &MVitConfig::fast(), 6);
        let pit = pit_with_visits(6, &[(0, 0), (1, 1), (2, 2)], &[0.0, 100.0, 200.0]);
        let g = Graph::new();
        let y = m.predict(&g, &pit);
        assert_eq!(g.shape(y), vec![1]);
        assert!(g.value(y).is_finite());
    }

    #[test]
    fn empty_pit_does_not_crash() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = MVit::with_defaults(&mut rng, &MVitConfig::fast(), 4);
        let pit = Pit::from_tensor(Tensor::full(vec![3, 4, 4], -1.0));
        let g = Graph::new();
        let y = m.predict(&g, &pit);
        assert!(g.value(y).is_finite());
    }

    #[test]
    fn longer_pits_see_more_items_but_shape_is_stable() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = MVit::with_defaults(&mut rng, &MVitConfig::fast(), 8);
        let short = pit_with_visits(8, &[(0, 0), (0, 1)], &[0.0, 60.0]);
        let long = pit_with_visits(
            8,
            &[(0, 0), (1, 1), (2, 2), (3, 3), (4, 4), (5, 5)],
            &[0.0, 60.0, 120.0, 180.0, 240.0, 300.0],
        );
        let g = Graph::new();
        assert_eq!(g.shape(m.predict(&g, &short)), vec![1]);
        assert_eq!(g.shape(m.predict(&g, &long)), vec![1]);
    }

    #[test]
    fn predict_batch_matches_per_pit_predict() {
        // The fused batched pass (padding + key mask + weighted pool) must
        // agree with per-PiT prediction up to float rounding.
        let mut rng = StdRng::seed_from_u64(9);
        let m = MVit::with_defaults(&mut rng, &MVitConfig::fast(), 8);
        let pits = vec![
            pit_with_visits(8, &[(0, 0), (0, 1)], &[0.0, 60.0]),
            pit_with_visits(
                8,
                &[(0, 0), (1, 1), (2, 2), (3, 3), (4, 4), (5, 5)],
                &[0.0, 60.0, 120.0, 180.0, 240.0, 300.0],
            ),
            pit_with_visits(8, &[(7, 7), (6, 7), (5, 7)], &[0.0, 30.0, 90.0]),
        ];
        let g = Graph::new();
        let batched = g.value(m.predict_batch(&g, &pits));
        assert_eq!(batched.shape(), &[3]);
        for (i, pit) in pits.iter().enumerate() {
            let single = g.value(m.predict(&g, pit)).data()[0];
            let bv = batched.data()[i];
            assert!(
                (single - bv).abs() < 1e-4,
                "pit {i}: single {single} vs batched {bv}"
            );
        }
    }

    #[test]
    fn predict_batch_uniform_lengths_skips_mask() {
        // Same-length PiTs take the unmasked path and must still agree.
        let mut rng = StdRng::seed_from_u64(10);
        let m = MVit::with_defaults(&mut rng, &MVitConfig::fast(), 6);
        let pits = vec![
            pit_with_visits(6, &[(0, 0), (1, 1)], &[0.0, 60.0]),
            pit_with_visits(6, &[(5, 5), (4, 4)], &[0.0, 90.0]),
        ];
        let g = Graph::new();
        let batched = g.value(m.predict_batch(&g, &pits));
        for (i, pit) in pits.iter().enumerate() {
            let single = g.value(m.predict(&g, pit)).data()[0];
            assert!((single - batched.data()[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn trains_to_separate_two_pits() {
        use odt_nn::Adam;
        // Two PiTs with different visited sets must learn different outputs.
        let mut rng = StdRng::seed_from_u64(3);
        let m = MVit::with_defaults(&mut rng, &MVitConfig::fast(), 6);
        let a = pit_with_visits(6, &[(0, 0), (0, 1)], &[0.0, 120.0]);
        let b = pit_with_visits(
            6,
            &[(5, 5), (4, 5), (3, 5), (2, 5)],
            &[0.0, 120.0, 240.0, 360.0],
        );
        let mut opt = Adam::new(m.estimator_params(), 5e-3);
        for _ in 0..60 {
            opt.zero_grad();
            let g = Graph::new();
            let pa = m.predict(&g, &a);
            let pb = m.predict(&g, &b);
            let ta = g.input(Tensor::scalar(1.0));
            let tb = g.input(Tensor::scalar(3.0));
            let loss = g.add(g.mse(pa, ta), g.mse(pb, tb));
            g.backward(loss);
            opt.step();
        }
        let g = Graph::new();
        let pa = g.value(m.predict(&g, &a)).data()[0];
        let pb = g.value(m.predict(&g, &b)).data()[0];
        assert!((pa - 1.0).abs() < 0.3, "pa = {pa}");
        assert!((pb - 3.0).abs() < 0.3, "pb = {pb}");
    }
}
