//! The CNN estimator ablation (*Est-CNN*).
//!
//! "Since the inferred PiT is in the pixelated format, it is intuitive to
//! come up with an estimator based on convolutional networks. Yet, CNNs
//! focus on modeling local properties" (paper §5). This model exists to
//! reproduce that comparison row in Table 7.

use crate::PitEstimator;
use odt_nn::{Conv2d, HasParams, Linear};
use odt_tensor::{Graph, Param, Var};
use odt_traj::Pit;
use rand::Rng;

/// A small convolutional regressor: conv-GELU ×3 with stride-2
/// downsampling, global average pool, linear head.
pub struct CnnEstimator {
    convs: Vec<Conv2d>,
    head: Linear,
    channels: Vec<usize>,
    lg: usize,
}

impl CnnEstimator {
    /// Build for grid size `lg` with a base width comparable to the MViT.
    pub fn new(rng: &mut impl Rng, lg: usize, base: usize) -> Self {
        let channels = vec![3, base, base * 2, base * 4];
        let convs = (0..3)
            .map(|i| {
                Conv2d::new(
                    rng,
                    channels[i],
                    channels[i + 1],
                    3,
                    2,
                    1,
                    &format!("cnn.conv{i}"),
                )
            })
            .collect();
        let head = Linear::new(rng, base * 4, 1, "cnn.head");
        CnnEstimator {
            convs,
            head,
            channels,
            lg,
        }
    }
}

impl PitEstimator for CnnEstimator {
    fn predict(&self, g: &Graph, pit: &Pit) -> Var {
        assert_eq!(pit.lg(), self.lg, "PiT grid size mismatch");
        let lg = self.lg;
        let mut x = g.reshape(g.input(pit.tensor().clone()), vec![1, 3, lg, lg]);
        for conv in &self.convs {
            x = g.gelu(conv.forward(g, x));
        }
        // Global average pool over the remaining spatial dims.
        let shape = g.shape(x);
        let c = shape[1];
        let hw = shape[2] * shape[3];
        let flat = g.reshape(x, vec![c, hw]);
        let pooled = g.mean_axis(flat, 1, false); // [c]
        let out = self.head.forward(g, g.reshape(pooled, vec![1, c]));
        g.reshape(out, vec![1])
    }

    fn estimator_params(&self) -> Vec<Param> {
        let mut p: Vec<Param> = self.convs.iter().flat_map(|c| c.params()).collect();
        p.extend(self.head.params());
        p
    }
}

impl std::fmt::Debug for CnnEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CnnEstimator(lg={}, channels={:?})",
            self.lg, self.channels
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvit::tests::pit_with_visits;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn predicts_scalar_for_various_grids() {
        let mut rng = StdRng::seed_from_u64(0);
        for lg in [8, 10, 16, 20] {
            let cnn = CnnEstimator::new(&mut rng, lg, 4);
            let pit = pit_with_visits(lg, &[(0, 0), (1, 1)], &[0.0, 60.0]);
            let g = Graph::new();
            let y = cnn.predict(&g, &pit);
            assert_eq!(g.shape(y), vec![1], "lg = {lg}");
            assert!(g.value(y).is_finite());
        }
    }

    #[test]
    fn gradients_flow() {
        let mut rng = StdRng::seed_from_u64(1);
        let cnn = CnnEstimator::new(&mut rng, 8, 4);
        let pit = pit_with_visits(8, &[(2, 2), (3, 3)], &[0.0, 60.0]);
        let g = Graph::new();
        let y = cnn.predict(&g, &pit);
        g.backward(g.sum_all(g.square(y)));
        for p in cnn.estimator_params() {
            assert!(
                p.grad().data().iter().any(|&v| v != 0.0),
                "no grad for {}",
                p.name()
            );
        }
    }
}
