//! # odt-estimator
//!
//! Stage 2 of the DOT framework (paper §5): estimating a travel time from
//! an (inferred) Pixelated Trajectory.
//!
//! * [`PitEmbedder`] — flattening and feature extraction (Eqs. 17–18): cell
//!   embedding `E`, positional encoding `PE` and latent casting `FC_ST`,
//!   summed per item. The ablation flags `use_cell_embedding` /
//!   `use_latent_cast` implement the paper's *No-CE* / *No-ST* variants.
//! * [`MVit`] — the Masked Vision Transformer (§5.2): self-attention applied
//!   only to the gathered valid items, so cost scales with visited-cell
//!   count rather than `L_G²` (Figure 7(b)).
//! * [`VanillaVit`] — the *Est-ViT* ablation: attention over all `L_G²`
//!   items with an additive key mask (Figure 7(a)).
//! * [`CnnEstimator`] — the *Est-CNN* ablation: a convolutional regressor.
//!
//! All estimators implement [`PitEstimator`] and regress a scalar travel
//! time (trained against MSE, Eq. 23).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnn;
mod embed;
mod mvit;
mod vit;

pub use cnn::CnnEstimator;
pub use embed::{EmbedderConfig, PitEmbedder};
pub use mvit::{MVit, MVitConfig};
pub use vit::VanillaVit;

use odt_tensor::{Graph, Param, Var};
use odt_traj::Pit;

/// A model that regresses a scalar from a PiT.
pub trait PitEstimator {
    /// Predict the (normalized) travel time of one PiT as a `[1]` node.
    fn predict(&self, g: &Graph, pit: &Pit) -> Var;

    /// Predict the (normalized) travel times of a batch of PiTs as a `[b]`
    /// node. The default runs [`PitEstimator::predict`] per PiT and
    /// concatenates; estimators that can fuse the batch into one forward
    /// pass (e.g. [`MVit`]) override this.
    fn predict_batch(&self, g: &Graph, pits: &[Pit]) -> Var {
        assert!(!pits.is_empty(), "predict_batch needs at least one PiT");
        let outs: Vec<Var> = pits.iter().map(|p| self.predict(g, p)).collect();
        g.concat(&outs, 0)
    }

    /// All trainable parameters.
    fn estimator_params(&self) -> Vec<Param>;
}
