//! A small multi-layer perceptron and a shared training-loop helper used by
//! the neural baselines.

use odt_nn::{Adam, HasParams, Linear};
use odt_tensor::{Graph, Param, Var};
use rand::Rng;

/// A ReLU MLP with the given layer widths.
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// `dims = [in, h1, …, out]`.
    pub fn new(rng: &mut impl Rng, dims: &[usize], name: &str) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(rng, w[0], w[1], &format!("{name}.fc{i}")))
            .collect();
        Mlp { layers }
    }

    /// Forward with ReLU between layers (linear final layer).
    pub fn forward(&self, g: &Graph, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, h);
            if i + 1 < self.layers.len() {
                h = g.relu(h);
            }
        }
        h
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim()
    }
}

impl HasParams for Mlp {
    fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

/// Generic Adam training loop: call `make_loss(graph, iteration)` for
/// `iters` iterations; it should assemble one mini-batch loss. Returns the
/// final loss value.
pub fn train_adam(
    params: Vec<Param>,
    lr: f32,
    iters: usize,
    mut make_loss: impl FnMut(&Graph, usize) -> Var,
) -> f32 {
    let mut opt = Adam::new(params, lr).with_clip(5.0);
    let mut last = f32::NAN;
    for it in 0..iters {
        opt.zero_grad();
        let g = Graph::new();
        let loss = make_loss(&g, it);
        last = g.value(loss).data()[0];
        g.backward(loss);
        opt.step();
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_tensor::{init, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&mut rng, &[4, 8, 2], "m");
        assert_eq!(mlp.in_dim(), 4);
        assert_eq!(mlp.out_dim(), 2);
        assert_eq!(mlp.num_params(), 4 * 8 + 8 + 8 * 2 + 2);
        let g = Graph::new();
        let x = g.input(Tensor::zeros(vec![3, 4]));
        assert_eq!(g.shape(mlp.forward(&g, x)), vec![3, 2]);
    }

    #[test]
    fn train_adam_fits_xor_like_function() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&mut rng, &[2, 16, 1], "m");
        let xs = init::uniform(&mut rng, vec![128, 2], -1.0, 1.0);
        let mut ys = Tensor::zeros(vec![128, 1]);
        for i in 0..128 {
            let v = xs.at(&[i, 0]) * xs.at(&[i, 1]); // non-linear target
            ys.set(&[i, 0], v);
        }
        let last = train_adam(mlp.params(), 0.01, 400, |g, _| {
            let x = g.input(xs.clone());
            let y = g.input(ys.clone());
            g.mse(mlp.forward(g, x), y)
        });
        assert!(last < 0.01, "final loss {last}");
    }
}
