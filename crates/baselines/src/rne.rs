//! RNE (Huang et al., ICDE 2021): "calculates the shortest path distances
//! between vertices in the embedding space" via hierarchical vertex
//! embeddings. Our variant embeds grid cells and learns a scaled L1
//! embedding distance plus a time-of-day-slot bias — the same mechanism
//! (location embeddings whose metric approximates travel cost) at the grid
//! granularity the rest of the pipeline uses.

use crate::common::{target_stats, OdtOracle, OracleContext};
use crate::mlp::train_adam;
use crate::stnn::NeuralConfig;
use odt_nn::{Embedding, HasParams};
use odt_tensor::{Graph, Param, Tensor};
use odt_traj::{OdtInput, Trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EMB_DIM: usize = 16;
const SLOTS: usize = 12;

/// The RNE-style embedding-distance oracle.
pub struct Rne {
    ctx: OracleContext,
    emb: Embedding,
    scale: Param,
    slot_bias: Param,
    tt_mean: f64,
    tt_std: f64,
}

impl Rne {
    fn slot(odt: &OdtInput) -> usize {
        ((odt.second_of_day() / 86_400.0 * SLOTS as f64) as usize).min(SLOTS - 1)
    }

    /// Fit embeddings so that `scale · ‖e_o − e_d‖₁ + bias[slot]` matches
    /// normalized travel times.
    pub fn fit(ctx: OracleContext, trips: &[Trajectory], cfg: &NeuralConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let emb = Embedding::new(&mut rng, ctx.grid.num_cells(), EMB_DIM, "rne.emb");
        let scale = Param::new(Tensor::scalar(1.0), "rne.scale");
        let slot_bias = Param::new(Tensor::zeros(vec![SLOTS]), "rne.slot_bias");
        let (tt_mean, tt_std) = target_stats(trips);
        let model = Rne {
            ctx,
            emb,
            scale,
            slot_bias,
            tt_mean,
            tt_std,
        };

        let n = trips.len();
        let odts: Vec<OdtInput> = trips.iter().map(OdtInput::from_trajectory).collect();
        let targets: Vec<f32> = trips
            .iter()
            .map(|t| ((t.travel_time() - tt_mean) / tt_std) as f32)
            .collect();

        let mut params = model.emb.params();
        params.push(model.scale.clone());
        params.push(model.slot_bias.clone());
        train_adam(params, cfg.lr * 3.0, cfg.iters, |g, it| {
            let start = (it * cfg.batch) % n;
            let idx: Vec<usize> = (0..cfg.batch.min(n)).map(|k| (start + k * 7) % n).collect();
            let pred = model.forward_batch(g, &idx.iter().map(|&i| odts[i]).collect::<Vec<_>>());
            let y = g.input(Tensor::from_vec(
                idx.iter().map(|&i| targets[i]).collect(),
                vec![idx.len(), 1],
            ));
            g.mse(pred, y)
        });
        model
    }

    fn forward_batch(&self, g: &Graph, odts: &[OdtInput]) -> odt_tensor::Var {
        let n = odts.len();
        let ocells: Vec<usize> = odts.iter().map(|o| self.ctx.origin_cell(o)).collect();
        let dcells: Vec<usize> = odts.iter().map(|o| self.ctx.dest_cell(o)).collect();
        let slots: Vec<usize> = odts.iter().map(Self::slot).collect();
        let eo = self.emb.forward(g, &ocells);
        let ed = self.emb.forward(g, &dcells);
        // Smooth L1: sqrt((eo-ed)^2 + eps) keeps gradients defined at 0.
        let diff = g.sub(eo, ed);
        let l1 = g.sum_axis(g.sqrt(g.add_scalar(g.square(diff), 1e-6)), 1, true); // [n,1]
        let s = g.param(&self.scale);
        let scaled = g.mul(l1, s);
        let bias_rows = g.index_select0(g.param(&self.slot_bias), &slots);
        g.add(scaled, g.reshape(bias_rows, vec![n, 1]))
    }
}

impl OdtOracle for Rne {
    fn name(&self) -> &'static str {
        "RNE"
    }

    fn predict_seconds(&self, odt: &OdtInput) -> f64 {
        let g = Graph::new();
        let out = g.value(self.forward_batch(&g, std::slice::from_ref(odt)));
        (out.data()[0] as f64 * self.tt_std + self.tt_mean).max(0.0)
    }

    fn model_size_bytes(&self) -> usize {
        (self.emb.num_params() + 1 + SLOTS) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stnn::tests::{ctx, distance_world};
    use odt_roadnet::Point;

    #[test]
    fn embedding_distance_tracks_travel_time() {
        let c = ctx();
        let trips = distance_world(&c, 400);
        let cfg = NeuralConfig {
            iters: 800,
            ..Default::default()
        };
        let m = Rne::fit(c, &trips, &cfg);
        // Longer trips must get longer predictions.
        let mk = |d: f64| OdtInput {
            origin: c.proj.to_lnglat(Point::new(0.0, 0.0)),
            dest: c.proj.to_lnglat(Point::new(d, 0.0)),
            t_dep: 9.0 * 3_600.0,
        };
        let short = m.predict_seconds(&mk(1_200.0));
        let long = m.predict_seconds(&mk(3_400.0));
        assert!(
            long > short,
            "long {long:.0} should exceed short {short:.0}"
        );
    }

    #[test]
    fn compact_model() {
        let c = ctx();
        let trips = distance_world(&c, 50);
        let cfg = NeuralConfig {
            iters: 5,
            ..Default::default()
        };
        let m = Rne::fit(c, &trips, &cfg);
        // 100 cells * 16 dims * 4 bytes + biases: well under 10 KB.
        assert!(m.model_size_bytes() < 10_000);
    }
}
