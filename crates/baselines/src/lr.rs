//! Linear regression via the normal equations — the paper's LR baseline
//! ("learns a linear map from ODT-Inputs to travel times").

use crate::common::{training_pairs, OdtOracle, OracleContext};
use odt_traj::{OdtInput, Trajectory};

/// Closed-form least-squares linear model over the standard feature vector
/// (plus an intercept).
pub struct LinearRegression {
    ctx: OracleContext,
    /// `[intercept, w_1, …, w_F]`.
    weights: Vec<f64>,
}

impl LinearRegression {
    /// Solve the normal equations with ridge damping for stability.
    pub fn fit(ctx: OracleContext, trips: &[Trajectory]) -> Self {
        let pairs = training_pairs(trips);
        assert!(!pairs.is_empty(), "LR needs training data");
        let f = ctx.features(&pairs[0].0).len() + 1;
        // Accumulate X^T X and X^T y.
        let mut xtx = vec![0.0f64; f * f];
        let mut xty = vec![0.0f64; f];
        for (odt, y) in &pairs {
            let mut row = vec![1.0f64];
            row.extend(ctx.features(odt).iter().map(|&v| v as f64));
            for i in 0..f {
                xty[i] += row[i] * y;
                for j in 0..f {
                    xtx[i * f + j] += row[i] * row[j];
                }
            }
        }
        // Ridge damping keeps the system well-posed for degenerate features.
        for i in 0..f {
            xtx[i * f + i] += 1e-6 * pairs.len() as f64;
        }
        let weights = solve(&mut xtx, &mut xty, f);
        LinearRegression { ctx, weights }
    }

    /// The fitted weights (intercept first).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

/// Gaussian elimination with partial pivoting; consumes its inputs.
fn solve(a: &mut [f64], b: &mut [f64], n: usize) -> Vec<f64> {
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row * n + col].abs() > a[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        assert!(diag.abs() > 1e-12, "singular system despite ridge damping");
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col * n + k] * x[k];
        }
        x[col] = acc / a[col * n + col];
    }
    x
}

impl OdtOracle for LinearRegression {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn predict_seconds(&self, odt: &OdtInput) -> f64 {
        let feats = self.ctx.features(odt);
        let mut y = self.weights[0];
        for (w, &x) in self.weights[1..].iter().zip(&feats) {
            y += w * x as f64;
        }
        y.max(0.0)
    }

    fn model_size_bytes(&self) -> usize {
        self.weights.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_roadnet::{LngLat, Point, Projection};
    use odt_traj::{GpsPoint, GridSpec};

    fn ctx() -> OracleContext {
        OracleContext {
            grid: GridSpec::new(
                LngLat { lng: 0.0, lat: 0.0 },
                LngLat { lng: 0.3, lat: 0.3 },
                10,
            ),
            proj: Projection::new(LngLat {
                lng: 0.15,
                lat: 0.15,
            }),
        }
    }

    /// Trips whose travel time is exactly 200 s per km of crow-fly distance.
    fn linear_world(ctx: &OracleContext, n: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|i| {
                let d = 1_000.0 + 150.0 * i as f64;
                let tt = d / 1_000.0 * 200.0;
                Trajectory::new(vec![
                    GpsPoint {
                        loc: ctx.proj.to_lnglat(Point::new(0.0, 0.0)),
                        t: 1_000.0,
                    },
                    GpsPoint {
                        loc: ctx.proj.to_lnglat(Point::new(d, 0.0)),
                        t: 1_000.0 + tt,
                    },
                ])
            })
            .collect()
    }

    #[test]
    fn recovers_linear_relationship() {
        let c = ctx();
        let lr = LinearRegression::fit(c, &linear_world(&c, 40));
        let q = OdtInput {
            origin: c.proj.to_lnglat(Point::new(0.0, 0.0)),
            dest: c.proj.to_lnglat(Point::new(2_500.0, 0.0)),
            t_dep: 1_000.0,
        };
        let pred = lr.predict_seconds(&q);
        assert!((pred - 500.0).abs() < 20.0, "pred {pred}, expected 500");
    }

    #[test]
    fn predictions_are_non_negative() {
        let c = ctx();
        let lr = LinearRegression::fit(c, &linear_world(&c, 10));
        let q = OdtInput {
            origin: c.proj.to_lnglat(Point::new(0.0, 0.0)),
            dest: c.proj.to_lnglat(Point::new(1.0, 0.0)), // ~zero distance
            t_dep: 0.0,
        };
        assert!(lr.predict_seconds(&q) >= 0.0);
    }

    #[test]
    fn solver_matches_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let mut b = vec![5.0, 10.0];
        let x = solve(&mut a, &mut b, 2);
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_model_size() {
        let c = ctx();
        let lr = LinearRegression::fit(c, &linear_world(&c, 10));
        assert!(lr.model_size_bytes() < 100, "LR must be sub-100-byte scale");
    }
}
