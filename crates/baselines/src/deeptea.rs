//! DeepTEA-style time-dependent trajectory outlier detection (Han et al.,
//! VLDB 2022), used by the paper's Table 6 to pre-filter baselines'
//! training sets.
//!
//! DeepTEA scores how anomalous a trajectory is *given the traffic
//! conditions at its time of travel*. Our stand-in keeps that mechanism
//! with a transparent probabilistic model instead of a neural one (see
//! DESIGN.md): a per-time-slot cell-visit distribution (route anomaly) and
//! a distance-conditioned travel-time model (duration anomaly).

use crate::common::OracleContext;
use odt_traj::Trajectory;

const SLOTS: usize = 6;

/// The fitted outlier detector.
pub struct DeepTea {
    ctx: OracleContext,
    /// `log P(cell | slot)`, Laplace-smoothed; `[slot][cell]`.
    log_p: Vec<Vec<f64>>,
    /// Median speed (m/s) of training trips, for the duration model.
    median_speed: f64,
    /// Median circuity (along-track / crow-fly distance) of training trips.
    median_circuity: f64,
}

impl DeepTea {
    fn slot_of(t: &Trajectory) -> usize {
        ((t.departure_second_of_day() / 86_400.0 * SLOTS as f64) as usize).min(SLOTS - 1)
    }

    /// Fit the visit distribution and duration model on a training set.
    pub fn fit(ctx: OracleContext, trips: &[Trajectory]) -> Self {
        let cells = ctx.grid.num_cells();
        let mut counts = vec![vec![1.0f64; cells]; SLOTS]; // Laplace prior
        for t in trips {
            let slot = Self::slot_of(t);
            for p in &t.points {
                let (r, c) = ctx.grid.cell_of(p.loc);
                counts[slot][ctx.grid.flat_index(r, c)] += 1.0;
            }
        }
        let log_p = counts
            .into_iter()
            .map(|row| {
                let total: f64 = row.iter().sum();
                row.into_iter().map(|c| (c / total).ln()).collect()
            })
            .collect();
        let mut speeds: Vec<f64> = trips
            .iter()
            .filter(|t| t.travel_time() > 0.0)
            .map(|t| t.travel_distance(&ctx.proj) / t.travel_time())
            .collect();
        speeds.sort_by(f64::total_cmp);
        let median_speed = if speeds.is_empty() {
            5.0
        } else {
            speeds[speeds.len() / 2]
        };
        let mut circuities: Vec<f64> = trips.iter().map(|t| circuity(&ctx, t)).collect();
        circuities.sort_by(f64::total_cmp);
        let median_circuity = if circuities.is_empty() {
            1.3
        } else {
            circuities[circuities.len() / 2].max(1.0)
        };
        DeepTea {
            ctx,
            log_p,
            median_speed,
            median_circuity,
        }
    }

    /// Outlier score: higher = more anomalous. Combines route rarity (mean
    /// negative log-likelihood of visited cells in the trip's time slot),
    /// route circuity (detours like Figure 1's `T_4` travel far beyond the
    /// crow-fly distance) and duration anomaly (deviation from the speed
    /// model, damped so short trips' natural variance doesn't dominate).
    pub fn score(&self, t: &Trajectory) -> f64 {
        let slot = Self::slot_of(t);
        let nll: f64 = t
            .points
            .iter()
            .map(|p| {
                let (r, c) = self.ctx.grid.cell_of(p.loc);
                -self.log_p[slot][self.ctx.grid.flat_index(r, c)]
            })
            .sum::<f64>()
            / t.points.len() as f64;
        let circuity_anomaly = (circuity(&self.ctx, t) / self.median_circuity - 1.0).max(0.0);
        let expected_tt = t.travel_distance(&self.ctx.proj) / self.median_speed;
        let duration_anomaly = (t.travel_time() - expected_tt).abs() / (expected_tt + 120.0);
        0.3 * nll + circuity_anomaly + 0.5 * duration_anomaly
    }

    /// Remove the `drop_fraction` most anomalous trajectories.
    pub fn filter(&self, trips: &[Trajectory], drop_fraction: f64) -> Vec<Trajectory> {
        assert!((0.0..1.0).contains(&drop_fraction), "fraction in [0, 1)");
        let mut scored: Vec<(f64, usize)> = trips
            .iter()
            .enumerate()
            .map(|(i, t)| (self.score(t), i))
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let keep = trips.len() - (trips.len() as f64 * drop_fraction) as usize;
        let mut kept_idx: Vec<usize> = scored[..keep].iter().map(|&(_, i)| i).collect();
        kept_idx.sort_unstable(); // preserve temporal order
        kept_idx.into_iter().map(|i| trips[i].clone()).collect()
    }
}

/// Along-track distance over crow-fly distance (≥ 1 for sane trips).
fn circuity(ctx: &OracleContext, t: &Trajectory) -> f64 {
    let crow = ctx
        .proj
        .to_point(t.points[0].loc)
        .distance(&ctx.proj.to_point(t.points[t.points.len() - 1].loc))
        .max(50.0);
    (t.travel_distance(&ctx.proj) / crow).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stnn::tests::ctx;
    use odt_roadnet::Point;
    use odt_traj::GpsPoint;

    /// Straight trip along y=0 (the "popular corridor").
    fn normal_trip(c: &OracleContext, i: usize) -> Trajectory {
        let t0 = 9.0 * 3_600.0 + i as f64 * 60.0;
        let pts = (0..6)
            .map(|k| GpsPoint {
                loc: c.proj.to_lnglat(Point::new(k as f64 * 500.0, 0.0)),
                t: t0 + k as f64 * 60.0,
            })
            .collect();
        Trajectory::new(pts)
    }

    /// Detour trip through rarely visited cells taking twice as long.
    fn outlier_trip(c: &OracleContext) -> Trajectory {
        let t0 = 9.0 * 3_600.0;
        let pts = (0..6)
            .map(|k| GpsPoint {
                loc: c.proj.to_lnglat(Point::new(k as f64 * 500.0, 9_000.0)),
                t: t0 + k as f64 * 120.0,
            })
            .collect();
        Trajectory::new(pts)
    }

    #[test]
    fn outlier_scores_higher() {
        let c = ctx();
        let mut trips: Vec<Trajectory> = (0..50).map(|i| normal_trip(&c, i)).collect();
        trips.push(outlier_trip(&c));
        let tea = DeepTea::fit(c, &trips);
        let normal_score = tea.score(&trips[0]);
        let outlier_score = tea.score(trips.last().unwrap());
        assert!(
            outlier_score > normal_score * 1.5,
            "outlier {outlier_score:.3} vs normal {normal_score:.3}"
        );
    }

    #[test]
    fn filter_removes_the_outlier_first() {
        let c = ctx();
        let mut trips: Vec<Trajectory> = (0..50).map(|i| normal_trip(&c, i)).collect();
        let bad = outlier_trip(&c);
        trips.insert(25, bad.clone());
        let tea = DeepTea::fit(c, &trips);
        let kept = tea.filter(&trips, 0.05);
        assert_eq!(kept.len(), 49);
        assert!(!kept.contains(&bad), "the detour trip must be dropped");
    }

    #[test]
    fn zero_drop_keeps_everything_in_order() {
        let c = ctx();
        let trips: Vec<Trajectory> = (0..10).map(|i| normal_trip(&c, i)).collect();
        let tea = DeepTea::fit(c, &trips);
        let kept = tea.filter(&trips, 0.0);
        assert_eq!(kept, trips);
    }
}
