//! Path-based travel-time estimators (paper §6.2.2): WDDRA and STDGCN.
//!
//! These models predict travel time **given a travel path**. In the
//! ODT-Oracle setting the true path is unknown, so — exactly as in the
//! paper — the evaluation feeds them paths produced by a routing method
//! (DeepST). Both use recurrent sequence encoders, which is why their
//! estimation speed trails the attention-based DOT (Table 5 discussion).
//!
//! Paths are resampled to a fixed number of arc-length-uniform steps so
//! sequences batch cleanly; DESIGN.md documents this simplification.

use crate::common::{target_stats, OracleContext};
use crate::mlp::{train_adam, Mlp};
use crate::stnn::NeuralConfig;
use odt_nn::{Gru, HasParams, Linear};
use odt_roadnet::Point;
use odt_tensor::{Graph, Tensor, Var};
use odt_traj::{OdtInput, Trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of resampled steps per path.
pub const PATH_STEPS: usize = 12;

/// Which of the two path-based architectures to build.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PathBasedKind {
    /// Wide-Deep-Double-Recurrent with Auxiliary loss.
    Wddra,
    /// The (NAS-discovered) dual-graph model; our stand-in widens the GRU
    /// and smooths step features over neighbors (a light graph convolution).
    Stdgcn,
}

/// Resample a polyline to `k` arc-length-uniform points; returns each point
/// with its arc-length fraction in `[0, 1]`.
pub fn resample_by_arclength(points: &[Point], k: usize) -> Vec<(Point, f64)> {
    assert!(k >= 2, "need at least two resampled points");
    if points.is_empty() {
        return Vec::new();
    }
    if points.len() == 1 {
        return (0..k)
            .map(|i| (points[0], i as f64 / (k - 1) as f64))
            .collect();
    }
    let mut cum = vec![0.0];
    for w in points.windows(2) {
        cum.push(cum.last().unwrap() + w[0].distance(&w[1]));
    }
    let total = *cum.last().unwrap();
    (0..k)
        .map(|i| {
            let frac = i as f64 / (k - 1) as f64;
            let target = frac * total;
            // Locate the segment containing the target arc length.
            let mut seg = 0;
            while seg + 1 < cum.len() - 1 && cum[seg + 1] < target {
                seg += 1;
            }
            let seg_len = (cum[seg + 1] - cum[seg]).max(1e-9);
            let t = ((target - cum[seg]) / seg_len).clamp(0.0, 1.0);
            let a = points[seg];
            let b = points[seg + 1];
            (
                Point::new(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t),
                frac,
            )
        })
        .collect()
}

/// A trained path-based estimator.
pub struct PathBased {
    kind: PathBasedKind,
    ctx: OracleContext,
    gru: Gru,
    wide: Mlp,
    head: Mlp,
    aux: Option<Linear>,
    tt_mean: f64,
    tt_std: f64,
}

impl PathBased {
    /// Step features for one resampled path: `[PATH_STEPS, 3]` of
    /// normalized x, normalized y, arc-length fraction.
    fn step_features(&self, resampled: &[(Point, f64)]) -> Tensor {
        let mut t = Tensor::zeros(vec![PATH_STEPS, 3]);
        let min = self.ctx.proj.to_point(self.ctx.grid.min);
        let max = self.ctx.proj.to_point(self.ctx.grid.max);
        for (i, (p, frac)) in resampled.iter().enumerate() {
            let nx = 2.0 * (p.x - min.x) / (max.x - min.x) - 1.0;
            let ny = 2.0 * (p.y - min.y) / (max.y - min.y) - 1.0;
            t.set(&[i, 0], nx as f32);
            t.set(&[i, 1], ny as f32);
            t.set(&[i, 2], (*frac * 2.0 - 1.0) as f32);
        }
        if self.kind == PathBasedKind::Stdgcn {
            // Neighbor smoothing of the spatial channels: a light 1-D graph
            // convolution along the path.
            let orig = t.clone();
            for i in 0..PATH_STEPS {
                for ch in 0..2 {
                    let prev = orig.at(&[i.saturating_sub(1), ch]);
                    let next = orig.at(&[(i + 1).min(PATH_STEPS - 1), ch]);
                    let me = orig.at(&[i, ch]);
                    t.set(&[i, ch], 0.5 * me + 0.25 * prev + 0.25 * next);
                }
            }
        }
        t
    }

    fn wide_features(&self, odt: &OdtInput, path_len_m: f64) -> Tensor {
        let sod = odt.second_of_day() / 86_400.0 * std::f64::consts::TAU;
        Tensor::from_vec(
            vec![
                (path_len_m / 5_000.0) as f32,
                sod.sin() as f32,
                sod.cos() as f32,
            ],
            vec![1, 3],
        )
    }

    /// Forward one path; returns `(prediction [1,1], per-step aux [1, steps])`.
    fn forward(&self, g: &Graph, steps: &Tensor, wide: &Tensor) -> (Var, Option<Var>) {
        let x = g.reshape(g.input(steps.clone()), vec![1, PATH_STEPS, 3]);
        let states = self.gru.forward_all(g, x); // [1, steps, h]
        let last = g.reshape(
            g.slice(states, 1, PATH_STEPS - 1, PATH_STEPS),
            vec![1, self.gru_hidden()],
        );
        let w = self.wide.forward(g, g.input(wide.clone())); // [1, hw]
        let joint = g.concat(&[last, w], 1);
        let pred = self.head.forward(g, joint);
        let aux = self.aux.as_ref().map(|a| {
            let flat = g.reshape(states, vec![PATH_STEPS, self.gru_hidden()]);
            g.reshape(a.forward(g, flat), vec![1, PATH_STEPS])
        });
        (pred, aux)
    }

    fn gru_hidden(&self) -> usize {
        self.head.in_dim() - self.wide.out_dim()
    }

    /// Fit on training trajectories: each trajectory supplies its own GPS
    /// path, its per-step cumulative time fractions (the auxiliary target),
    /// and its travel time.
    pub fn fit(
        kind: PathBasedKind,
        ctx: OracleContext,
        trips: &[Trajectory],
        cfg: &NeuralConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let hidden = match kind {
            PathBasedKind::Wddra => cfg.hidden / 2,
            PathBasedKind::Stdgcn => cfg.hidden * 3 / 4,
        };
        let wide_out = 8;
        let gru = Gru::new(&mut rng, 3, hidden, "path.gru");
        let wide = Mlp::new(&mut rng, &[3, wide_out], "path.wide");
        let head = Mlp::new(&mut rng, &[hidden + wide_out, cfg.hidden, 1], "path.head");
        let aux =
            (kind == PathBasedKind::Wddra).then(|| Linear::new(&mut rng, hidden, 1, "path.aux"));
        let (tt_mean, tt_std) = target_stats(trips);
        let model = PathBased {
            kind,
            ctx,
            gru,
            wide,
            head,
            aux,
            tt_mean,
            tt_std,
        };

        // Precompute per-trip tensors.
        let mut data = Vec::with_capacity(trips.len());
        for t in trips {
            let pts: Vec<Point> = t.points.iter().map(|p| ctx.proj.to_point(p.loc)).collect();
            let resampled = resample_by_arclength(&pts, PATH_STEPS);
            let steps = model.step_features(&resampled);
            let total_len: f64 = pts.windows(2).map(|w| w[0].distance(&w[1])).sum();
            let odt = OdtInput::from_trajectory(t);
            let wide_f = model.wide_features(&odt, total_len);
            // Aux target: cumulative time fraction at each resampled step.
            let span = t.travel_time().max(1e-9);
            let aux_target: Vec<f32> = resampled
                .iter()
                .map(|(_, frac)| {
                    // Time at the matching arc fraction, linearly interpolated
                    // over the fix timestamps.
                    let idx = (frac * (t.points.len() - 1) as f64).round() as usize;
                    ((t.points[idx.min(t.points.len() - 1)].t - t.departure()) / span) as f32
                })
                .collect();
            let target = ((t.travel_time() - tt_mean) / tt_std) as f32;
            data.push((steps, wide_f, aux_target, target));
        }

        let mut params = model.gru.params();
        params.extend(model.wide.params());
        params.extend(model.head.params());
        if let Some(a) = &model.aux {
            params.extend(a.params());
        }
        let n = data.len();
        let batch = cfg.batch.min(16); // sequence models: small batches
        train_adam(params, cfg.lr, cfg.iters, |g, it| {
            let mut losses = Vec::with_capacity(batch);
            for k in 0..batch {
                let (steps, wide_f, aux_target, target) = &data[(it * batch + k * 5) % n];
                let (pred, aux) = model.forward(g, steps, wide_f);
                let y = g.input(Tensor::from_vec(vec![*target], vec![1, 1]));
                let mut loss = g.mse(pred, y);
                if let Some(aux_pred) = aux {
                    let ay = g.input(Tensor::from_vec(aux_target.clone(), vec![1, PATH_STEPS]));
                    loss = g.add(loss, g.scale(g.mse(aux_pred, ay), 0.3));
                }
                losses.push(loss);
            }
            let mut total = losses[0];
            for l in &losses[1..] {
                total = g.add(total, *l);
            }
            g.scale(total, 1.0 / batch as f32)
        });
        model
    }

    /// Predict travel time (seconds) for a query given a routed path.
    pub fn predict_with_path(&self, odt: &OdtInput, path_points: &[Point]) -> f64 {
        let resampled = resample_by_arclength(path_points, PATH_STEPS);
        if resampled.is_empty() {
            return self.tt_mean;
        }
        let steps = self.step_features(&resampled);
        let total_len: f64 = path_points.windows(2).map(|w| w[0].distance(&w[1])).sum();
        let wide_f = self.wide_features(odt, total_len);
        let g = Graph::new();
        let (pred, _) = self.forward(&g, &steps, &wide_f);
        (g.value(pred).data()[0] as f64 * self.tt_std + self.tt_mean).max(0.0)
    }

    /// Method name for reports.
    pub fn name(&self) -> &'static str {
        match self.kind {
            PathBasedKind::Wddra => "WDDRA",
            PathBasedKind::Stdgcn => "STDGCN",
        }
    }

    /// Model size in bytes (Table 5).
    pub fn model_size_bytes(&self) -> usize {
        let mut n = self.gru.num_params() + self.wide.num_params() + self.head.num_params();
        if let Some(a) = &self.aux {
            n += a.num_params();
        }
        n * 4
    }
}

/// WDDRA convenience alias.
pub struct Wddra;
impl Wddra {
    /// Fit a WDDRA model.
    pub fn fit(ctx: OracleContext, trips: &[Trajectory], cfg: &NeuralConfig) -> PathBased {
        PathBased::fit(PathBasedKind::Wddra, ctx, trips, cfg)
    }
}

/// STDGCN convenience alias.
pub struct Stdgcn;
impl Stdgcn {
    /// Fit an STDGCN model.
    pub fn fit(ctx: OracleContext, trips: &[Trajectory], cfg: &NeuralConfig) -> PathBased {
        PathBased::fit(PathBasedKind::Stdgcn, ctx, trips, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stnn::tests::{ctx, distance_world};

    #[test]
    fn resample_endpoints_and_spacing() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 100.0),
        ];
        let r = resample_by_arclength(&pts, 5);
        assert_eq!(r.len(), 5);
        assert_eq!(r[0].0.x, 0.0);
        assert!((r[4].0.y - 100.0).abs() < 1e-9);
        // Arc fractions are uniform.
        for (i, (_, f)) in r.iter().enumerate() {
            assert!((f - i as f64 / 4.0).abs() < 1e-9);
        }
        // Midpoint (arc length 100 of 200) sits at the corner.
        assert!((r[2].0.x - 100.0).abs() < 1e-6);
        assert!(r[2].0.y.abs() < 1e-6);
    }

    #[test]
    fn wddra_learns_path_length() {
        let c = ctx();
        let trips = distance_world(&c, 200);
        let cfg = NeuralConfig {
            iters: 250,
            ..Default::default()
        };
        let m = Wddra::fit(c, &trips, &cfg);
        assert_eq!(m.name(), "WDDRA");
        let short: Vec<Point> = vec![Point::new(0.0, 0.0), Point::new(1_200.0, 0.0)];
        let long: Vec<Point> = vec![Point::new(0.0, 0.0), Point::new(3_400.0, 0.0)];
        let odt = OdtInput {
            origin: c.proj.to_lnglat(Point::new(0.0, 0.0)),
            dest: c.proj.to_lnglat(Point::new(1_200.0, 0.0)),
            t_dep: 9.0 * 3_600.0,
        };
        let ps = m.predict_with_path(&odt, &short);
        let pl = m.predict_with_path(&odt, &long);
        assert!(
            pl > ps,
            "longer path must predict longer: {pl:.0} vs {ps:.0}"
        );
    }

    #[test]
    fn stdgcn_has_no_aux_and_more_capacity() {
        let c = ctx();
        let trips = distance_world(&c, 60);
        let cfg = NeuralConfig {
            iters: 10,
            ..Default::default()
        };
        let w = Wddra::fit(c, &trips, &cfg);
        let s = Stdgcn::fit(c, &trips, &cfg);
        assert!(s.model_size_bytes() > w.model_size_bytes());
    }

    #[test]
    fn degenerate_paths_do_not_crash() {
        let c = ctx();
        let trips = distance_world(&c, 60);
        let cfg = NeuralConfig {
            iters: 5,
            ..Default::default()
        };
        let m = Wddra::fit(c, &trips, &cfg);
        let odt = OdtInput {
            origin: c.proj.to_lnglat(Point::new(0.0, 0.0)),
            dest: c.proj.to_lnglat(Point::new(0.0, 0.0)),
            t_dep: 0.0,
        };
        let single = m.predict_with_path(&odt, &[Point::new(0.0, 0.0)]);
        assert!(single.is_finite());
        let empty = m.predict_with_path(&odt, &[]);
        assert!(empty.is_finite());
    }
}
