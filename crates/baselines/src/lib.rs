//! # odt-baselines
//!
//! The comparison methods of the paper's evaluation (§6.2), implemented
//! from scratch:
//!
//! **Routing methods** (§6.2.1) — given a weighted road network, identify a
//! path and sum its historical average segment times:
//! * [`DijkstraRouter`] — shortest path on historical-average weights.
//! * [`DeepStRouter`] — most-probable path from learned historical travel
//!   behavior (destination-conditioned Markov transitions; DeepST
//!   substitute, see DESIGN.md).
//!
//! **Path-based methods** (§6.2.2) — estimate travel time from a given path
//! (fed by a router at inference, as in the paper):
//! * [`Wddra`] — GRU sequence model with a multi-task auxiliary loss.
//! * [`Stdgcn`] — a wider GRU with neighbor-averaged (graph-convolutional)
//!   cell features, standing in for the NAS-discovered architecture.
//!
//! **ODT-Oracle methods** (§6.2.3):
//! * [`Temp`] — temporally weighted neighbor averaging.
//! * [`LinearRegression`] — closed-form least squares.
//! * [`Gbm`] — from-scratch gradient-boosted regression trees.
//! * [`Rne`] — cell-embedding distance model.
//! * [`StNn`] — origin/destination MLP, joint distance+time.
//! * [`Murat`] — multi-task model with cell and time-slot embeddings.
//! * [`DeepOd`] — OD representation matched to a trajectory encoder through
//!   an auxiliary loss.
//!
//! Plus [`DeepTea`], the trajectory outlier detector used by Table 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod deepod;
mod deeptea;
mod gbm;
mod lr;
mod mlp;
mod murat;
mod pathbased;
mod rne;
mod routers;
mod stnn;
mod temp;

pub use common::{OdtOracle, OracleContext};
pub use deepod::DeepOd;
pub use deeptea::DeepTea;
pub use gbm::Gbm;
pub use lr::LinearRegression;
pub use mlp::Mlp;
pub use murat::Murat;
pub use pathbased::{PathBased, PathBasedKind, Stdgcn, Wddra};
pub use rne::Rne;
pub use routers::{DeepStRouter, DijkstraRouter, Router};
pub use stnn::{NeuralConfig, StNn};
pub use temp::Temp;
