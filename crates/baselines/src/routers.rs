//! Routing baselines (paper §6.2.1): Dijkstra and the DeepST stand-in.
//!
//! Both are given "a weighted road network, where the weights represent the
//! average travel time of road segments that is calculated from historical
//! trajectories", identify a path for the query OD pair, and report the sum
//! of the historical average travel times along it.

use crate::common::{OdtOracle, OracleContext};
use odt_roadnet::{
    dijkstra, matching, EdgeWeights, MarkovRouter, NodeId, RoadNetwork, TimeDependentWeights,
};
use odt_traj::{OdtInput, Trajectory};
use std::sync::Arc;

/// A method that produces an explicit route for an ODT-Input.
pub trait Router: OdtOracle {
    /// The routed node path from (map-matched) origin to destination.
    fn route_nodes(&self, odt: &OdtInput) -> Vec<NodeId>;

    /// The network the routes live on.
    fn network(&self) -> &RoadNetwork;

    /// Planar positions along the route, densified so rasterizing onto a
    /// PiT grid marks every traversed cell.
    fn route_points(&self, odt: &OdtInput) -> Vec<odt_roadnet::Point> {
        let nodes = self.route_nodes(odt);
        densify(self.network(), &nodes, 150.0)
    }
}

/// Interpolate along a node path every `step_m` meters.
pub fn densify(net: &RoadNetwork, nodes: &[NodeId], step_m: f64) -> Vec<odt_roadnet::Point> {
    let mut out = Vec::new();
    if nodes.is_empty() {
        return out;
    }
    out.push(net.position(nodes[0]));
    for w in nodes.windows(2) {
        let a = net.position(w[0]);
        let b = net.position(w[1]);
        let d = a.distance(&b);
        let steps = (d / step_m).ceil() as usize;
        for s in 1..=steps.max(1) {
            let f = s as f64 / steps.max(1) as f64;
            out.push(odt_roadnet::Point::new(
                a.x + (b.x - a.x) * f,
                a.y + (b.y - a.y) * f,
            ));
        }
    }
    out
}

/// Map-match training trajectories into node paths with their departure
/// slots; shared by both routers and the path-based baselines.
pub fn matched_paths(
    net: &RoadNetwork,
    ctx: &OracleContext,
    trips: &[Trajectory],
    slots: usize,
) -> Vec<(Vec<NodeId>, usize, f64)> {
    trips
        .iter()
        .map(|t| {
            let pts: Vec<odt_roadnet::Point> =
                t.points.iter().map(|p| ctx.proj.to_point(p.loc)).collect();
            let path = matching::match_trajectory(net, &pts);
            let slot =
                ((t.departure_second_of_day() / 86_400.0 * slots as f64) as usize).min(slots - 1);
            (path, slot, t.travel_time())
        })
        .collect()
}

/// Historical-average edge weights from map-matched trajectories.
pub fn learn_weights(net: &RoadNetwork, ctx: &OracleContext, trips: &[Trajectory]) -> EdgeWeights {
    let mut obs = Vec::new();
    for t in trips {
        let pts: Vec<odt_roadnet::Point> =
            t.points.iter().map(|p| ctx.proj.to_point(p.loc)).collect();
        let ts: Vec<f64> = t.points.iter().map(|p| p.t).collect();
        obs.extend(matching::edge_observations(net, &pts, &ts));
    }
    EdgeWeights::from_observations(net, obs)
}

/// Time-dependent edge weights (used to fill temporal PiT channels for the
/// routing ablations of Table 7).
pub fn learn_time_weights(
    net: &RoadNetwork,
    ctx: &OracleContext,
    trips: &[Trajectory],
    slots: usize,
) -> TimeDependentWeights {
    let mut obs = Vec::new();
    for t in trips {
        let pts: Vec<odt_roadnet::Point> =
            t.points.iter().map(|p| ctx.proj.to_point(p.loc)).collect();
        let ts: Vec<f64> = t.points.iter().map(|p| p.t).collect();
        let slot =
            ((t.departure_second_of_day() / 86_400.0 * slots as f64) as usize).min(slots - 1);
        for (e, secs) in matching::edge_observations(net, &pts, &ts) {
            obs.push((e, slot, secs));
        }
    }
    TimeDependentWeights::from_observations(net, slots, obs)
}

/// The Dijkstra routing baseline.
pub struct DijkstraRouter {
    ctx: OracleContext,
    net: Arc<RoadNetwork>,
    weights: EdgeWeights,
}

impl DijkstraRouter {
    /// Learn edge weights from the training split.
    pub fn fit(ctx: OracleContext, net: Arc<RoadNetwork>, trips: &[Trajectory]) -> Self {
        let weights = learn_weights(&net, &ctx, trips);
        DijkstraRouter { ctx, net, weights }
    }
}

impl OdtOracle for DijkstraRouter {
    fn name(&self) -> &'static str {
        "Dijkstra"
    }

    fn predict_seconds(&self, odt: &OdtInput) -> f64 {
        let o = self.net.nearest_node(self.ctx.proj.to_point(odt.origin));
        let d = self.net.nearest_node(self.ctx.proj.to_point(odt.dest));
        dijkstra(&self.net, o, d, &self.weights.as_fn()).map_or(0.0, |r| r.cost)
    }

    fn model_size_bytes(&self) -> usize {
        // The weighted road network itself.
        self.net.num_edges() * 8 + self.net.num_nodes() * 16
    }
}

impl Router for DijkstraRouter {
    fn route_nodes(&self, odt: &OdtInput) -> Vec<NodeId> {
        let o = self.net.nearest_node(self.ctx.proj.to_point(odt.origin));
        let d = self.net.nearest_node(self.ctx.proj.to_point(odt.dest));
        dijkstra(&self.net, o, d, &self.weights.as_fn()).map_or_else(|| vec![o], |r| r.nodes)
    }

    fn network(&self) -> &RoadNetwork {
        &self.net
    }
}

const DEEPST_SLOTS: usize = 8;

/// The DeepST stand-in: destination-conditioned Markov transition routing
/// learned from historical matched paths (see DESIGN.md §1 for the
/// substitution rationale), with time-dependent weights for the estimate.
pub struct DeepStRouter {
    ctx: OracleContext,
    net: Arc<RoadNetwork>,
    markov: MarkovRouter,
    weights: TimeDependentWeights,
}

impl DeepStRouter {
    /// Learn transitions and weights from the training split.
    pub fn fit(ctx: OracleContext, net: Arc<RoadNetwork>, trips: &[Trajectory]) -> Self {
        let mut markov = MarkovRouter::new(DEEPST_SLOTS);
        for (path, slot, _) in matched_paths(&net, &ctx, trips, DEEPST_SLOTS) {
            markov.observe_path(&net, &path, slot);
        }
        let weights = learn_time_weights(&net, &ctx, trips, DEEPST_SLOTS);
        DeepStRouter {
            ctx,
            net,
            markov,
            weights,
        }
    }

    fn slot(&self, odt: &OdtInput) -> usize {
        ((odt.second_of_day() / 86_400.0 * DEEPST_SLOTS as f64) as usize).min(DEEPST_SLOTS - 1)
    }
}

impl OdtOracle for DeepStRouter {
    fn name(&self) -> &'static str {
        "DeepST"
    }

    fn predict_seconds(&self, odt: &OdtInput) -> f64 {
        let path = self.route_nodes(odt);
        let slot = self.slot(odt);
        path.windows(2)
            .filter_map(|w| self.net.edge_between(w[0], w[1]))
            .map(|e| self.weights.get(e, slot))
            .sum()
    }

    fn model_size_bytes(&self) -> usize {
        self.markov.num_states() * 12 + self.net.num_edges() * DEEPST_SLOTS * 8
    }
}

impl Router for DeepStRouter {
    fn route_nodes(&self, odt: &OdtInput) -> Vec<NodeId> {
        let o = self.net.nearest_node(self.ctx.proj.to_point(odt.origin));
        let d = self.net.nearest_node(self.ctx.proj.to_point(odt.dest));
        self.markov.route(&self.net, o, d, self.slot(odt))
    }

    fn network(&self) -> &RoadNetwork {
        &self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_roadnet::{LngLat, Point, Projection};
    use odt_traj::{GpsPoint, GridSpec};

    fn setup() -> (OracleContext, Arc<RoadNetwork>, Vec<Trajectory>) {
        let net = Arc::new(RoadNetwork::grid_city(6, 6, 500.0, 3));
        let proj = Projection::new(LngLat {
            lng: 104.0,
            lat: 30.0,
        });
        let ctx = OracleContext {
            grid: GridSpec::new(
                proj.to_lnglat(Point::new(-100.0, -100.0)),
                proj.to_lnglat(Point::new(2_600.0, 2_600.0)),
                10,
            ),
            proj,
        };
        // Synthetic trips along row 0 at ~10 m/s.
        let trips: Vec<Trajectory> = (0..20)
            .map(|i| {
                let t0 = 8.0 * 3_600.0 + i as f64 * 120.0;
                let pts: Vec<GpsPoint> = (0..=5)
                    .map(|k| GpsPoint {
                        loc: proj.to_lnglat(Point::new(k as f64 * 500.0, 0.0)),
                        t: t0 + k as f64 * 50.0,
                    })
                    .collect();
                Trajectory::new(pts)
            })
            .collect();
        (ctx, net, trips)
    }

    #[test]
    fn dijkstra_router_predicts_observed_speed() {
        let (ctx, net, trips) = setup();
        let r = DijkstraRouter::fit(ctx, net, &trips);
        let q = OdtInput {
            origin: ctx.proj.to_lnglat(Point::new(0.0, 0.0)),
            dest: ctx.proj.to_lnglat(Point::new(2_500.0, 0.0)),
            t_dep: 8.0 * 3_600.0,
        };
        let pred = r.predict_seconds(&q);
        // Observed: 50 s per 500 m edge, 5 edges -> 250 s.
        assert!((pred - 250.0).abs() < 10.0, "pred {pred}");
        assert_eq!(r.route_nodes(&q), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn deepst_router_follows_history() {
        let (ctx, net, trips) = setup();
        let r = DeepStRouter::fit(ctx, net, &trips);
        let q = OdtInput {
            origin: ctx.proj.to_lnglat(Point::new(0.0, 0.0)),
            dest: ctx.proj.to_lnglat(Point::new(2_500.0, 0.0)),
            t_dep: 8.05 * 3_600.0,
        };
        let path = r.route_nodes(&q);
        assert_eq!(*path.first().unwrap(), 0);
        assert_eq!(*path.last().unwrap(), 5);
        let pred = r.predict_seconds(&q);
        assert!(pred > 100.0 && pred < 600.0, "pred {pred}");
    }

    #[test]
    fn densify_covers_path() {
        let net = RoadNetwork::grid_city(3, 3, 500.0, 2);
        let pts = densify(&net, &[0, 1, 2], 100.0);
        // 2 edges of 500 m at 100 m steps -> 11 points.
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].x, 0.0);
        assert_eq!(pts.last().unwrap().x, 1_000.0);
    }
}
