//! TEMP (Wang et al., TIST 2019): "averages the travel times of historical
//! trajectories that have a similar origin, destination and departure time."
//! No learnable parameters; the whole training set is the model, which is
//! exactly why its Table 5 row shows a large model size and slow queries.

use crate::common::{OdtOracle, OracleContext};
use odt_roadnet::Point;
use odt_traj::{OdtInput, Trajectory};

struct Record {
    origin: Point,
    dest: Point,
    second_of_day: f64,
    seconds: f64,
}

/// The TEMP neighbor-averaging oracle.
pub struct Temp {
    ctx: OracleContext,
    records: Vec<Record>,
    /// Spatial neighborhood radius, meters.
    radius_m: f64,
    /// Temporal neighborhood half-window, seconds.
    window_s: f64,
    global_mean: f64,
}

impl Temp {
    /// Memorize the training set.
    pub fn fit(ctx: OracleContext, trips: &[Trajectory]) -> Self {
        let records: Vec<Record> = trips
            .iter()
            .map(|t| {
                let odt = OdtInput::from_trajectory(t);
                Record {
                    origin: ctx.proj.to_point(odt.origin),
                    dest: ctx.proj.to_point(odt.dest),
                    second_of_day: odt.second_of_day(),
                    seconds: t.travel_time(),
                }
            })
            .collect();
        let global_mean = if records.is_empty() {
            600.0
        } else {
            records.iter().map(|r| r.seconds).sum::<f64>() / records.len() as f64
        };
        Temp {
            ctx,
            records,
            radius_m: 800.0,
            window_s: 3_600.0,
            global_mean,
        }
    }

    fn neighbors_mean(&self, odt: &OdtInput, radius: f64, window: f64) -> Option<f64> {
        let o = self.ctx.proj.to_point(odt.origin);
        let d = self.ctx.proj.to_point(odt.dest);
        let sod = odt.second_of_day();
        let mut sum = 0.0;
        let mut count = 0usize;
        for r in &self.records {
            if r.origin.distance(&o) > radius || r.dest.distance(&d) > radius {
                continue;
            }
            let dt = (r.second_of_day - sod).abs();
            let circ = dt.min(86_400.0 - dt);
            if circ > window {
                continue;
            }
            sum += r.seconds;
            count += 1;
        }
        (count > 0).then(|| sum / count as f64)
    }
}

impl OdtOracle for Temp {
    fn name(&self) -> &'static str {
        "TEMP"
    }

    fn predict_seconds(&self, odt: &OdtInput) -> f64 {
        // Progressively widen the neighborhood until neighbors exist, as the
        // original method does for sparse regions.
        for mult in [1.0, 2.0, 4.0, 8.0] {
            if let Some(m) = self.neighbors_mean(odt, self.radius_m * mult, self.window_s * mult) {
                return m;
            }
        }
        self.global_mean
    }

    fn model_size_bytes(&self) -> usize {
        // Each record stores 6 f64 values.
        self.records.len() * 6 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_roadnet::{LngLat, Projection};
    use odt_traj::{GpsPoint, GridSpec};

    fn ctx() -> OracleContext {
        OracleContext {
            grid: GridSpec::new(
                LngLat { lng: 0.0, lat: 0.0 },
                LngLat { lng: 0.2, lat: 0.2 },
                10,
            ),
            proj: Projection::new(LngLat { lng: 0.1, lat: 0.1 }),
        }
    }

    fn trip(
        ctx: &OracleContext,
        ox: f64,
        oy: f64,
        dx: f64,
        dy: f64,
        t0: f64,
        tt: f64,
    ) -> Trajectory {
        Trajectory::new(vec![
            GpsPoint {
                loc: ctx.proj.to_lnglat(Point::new(ox, oy)),
                t: t0,
            },
            GpsPoint {
                loc: ctx.proj.to_lnglat(Point::new(dx, dy)),
                t: t0 + tt,
            },
        ])
    }

    #[test]
    fn averages_similar_trips_and_is_fooled_by_outliers() {
        // The paper's Figure 1 scenario: three 15-min trips and one 35-min
        // outlier between the same OD at the same hour -> TEMP answers
        // (15*3 + 35)/4 = 20 min.
        let c = ctx();
        let trips: Vec<Trajectory> = vec![
            trip(&c, 0.0, 0.0, 3_000.0, 0.0, 8.0 * 3_600.0, 900.0),
            trip(&c, 50.0, 0.0, 3_050.0, 0.0, 8.03 * 3_600.0, 900.0),
            trip(&c, -50.0, 0.0, 2_950.0, 0.0, 8.08 * 3_600.0, 900.0),
            trip(&c, 0.0, 50.0, 3_000.0, 50.0, 8.06 * 3_600.0, 2_100.0), // outlier
        ];
        let temp = Temp::fit(c, &trips);
        let q = OdtInput {
            origin: c.proj.to_lnglat(Point::new(0.0, 0.0)),
            dest: c.proj.to_lnglat(Point::new(3_000.0, 0.0)),
            t_dep: 8.16 * 3_600.0,
        };
        let pred = temp.predict_seconds(&q);
        assert!((pred - 1_200.0).abs() < 1.0, "pred {pred} should be 20 min");
    }

    #[test]
    fn falls_back_to_global_mean_far_away() {
        let c = ctx();
        let trips = vec![trip(&c, 0.0, 0.0, 2_000.0, 0.0, 3_600.0, 600.0)];
        let temp = Temp::fit(c, &trips);
        let q = OdtInput {
            origin: c.proj.to_lnglat(Point::new(50_000.0, 50_000.0)),
            dest: c.proj.to_lnglat(Point::new(80_000.0, 50_000.0)),
            t_dep: 0.0,
        };
        assert_eq!(temp.predict_seconds(&q), 600.0);
    }

    #[test]
    fn model_size_scales_with_data() {
        let c = ctx();
        let one = Temp::fit(c, &[trip(&c, 0.0, 0.0, 2_000.0, 0.0, 0.0, 600.0)]);
        let two = Temp::fit(
            c,
            &[
                trip(&c, 0.0, 0.0, 2_000.0, 0.0, 0.0, 600.0),
                trip(&c, 0.0, 0.0, 2_000.0, 0.0, 0.0, 700.0),
            ],
        );
        assert_eq!(two.model_size_bytes(), 2 * one.model_size_bytes());
    }

    #[test]
    fn time_window_is_circular() {
        // 23:30 and 00:30 are one hour apart across midnight.
        let c = ctx();
        let trips = vec![trip(&c, 0.0, 0.0, 2_000.0, 0.0, 23.5 * 3_600.0, 600.0)];
        let temp = Temp::fit(c, &trips);
        let q = OdtInput {
            origin: c.proj.to_lnglat(Point::new(0.0, 0.0)),
            dest: c.proj.to_lnglat(Point::new(2_000.0, 0.0)),
            t_dep: 0.5 * 3_600.0 + 86_400.0, // next day 00:30
        };
        assert_eq!(temp.predict_seconds(&q), 600.0);
    }
}
