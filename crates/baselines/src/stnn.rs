//! ST-NN (Jindal et al., 2017): "jointly predicts the travel distance and
//! time given origin and destination" — a plain MLP whose only inputs are
//! the origin and destination coordinates.

use crate::common::{target_stats, OdtOracle, OracleContext};
use crate::mlp::{train_adam, Mlp};
use odt_nn::HasParams;
use odt_tensor::Tensor;
use odt_traj::{OdtInput, Trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Training hyper-parameters shared by the neural baselines.
#[derive(Clone, Debug)]
pub struct NeuralConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Adam iterations (mini-batches).
    pub iters: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Init/shuffle seed.
    pub seed: u64,
}

impl Default for NeuralConfig {
    fn default() -> Self {
        NeuralConfig {
            hidden: 64,
            iters: 500,
            batch: 128,
            lr: 1e-3,
            seed: 7,
        }
    }
}

/// The ST-NN oracle: trunk MLP with two linear heads (time, distance),
/// trained multi-task.
pub struct StNn {
    ctx: OracleContext,
    trunk: Mlp,
    head: Mlp, // outputs [time_norm, dist_norm]
    tt_mean: f64,
    tt_std: f64,
}

impl StNn {
    /// Fit on the training split.
    pub fn fit(ctx: OracleContext, trips: &[Trajectory], cfg: &NeuralConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let trunk = Mlp::new(&mut rng, &[4, cfg.hidden, cfg.hidden], "stnn.trunk");
        let head = Mlp::new(&mut rng, &[cfg.hidden, 2], "stnn.head");
        let (tt_mean, tt_std) = target_stats(trips);

        // Features: normalized origin/dest only (no departure time — the
        // paper stresses ST-NN's input is just the OD pair).
        let n = trips.len();
        let mut feats = Tensor::zeros(vec![n, 4]);
        let mut targets = Tensor::zeros(vec![n, 2]);
        let dist_scale = 5_000.0;
        for (i, t) in trips.iter().enumerate() {
            let odt = OdtInput::from_trajectory(t);
            let f = ctx.features(&odt);
            for j in 0..4 {
                feats.set(&[i, j], f[j]);
            }
            targets.set(&[i, 0], ((t.travel_time() - tt_mean) / tt_std) as f32);
            targets.set(&[i, 1], (t.travel_distance(&ctx.proj) / dist_scale) as f32);
        }

        let mut params = trunk.params();
        params.extend(head.params());
        let model = StNn {
            ctx,
            trunk,
            head,
            tt_mean,
            tt_std,
        };
        let mut order: Vec<usize> = (0..n).collect();
        train_adam(params, cfg.lr, cfg.iters, |g, it| {
            if it % (n / cfg.batch.max(1)).max(1) == 0 {
                // Cheap deterministic reshuffle per epoch.
                order.rotate_left(17 % n.max(1));
            }
            let start = (it * cfg.batch) % n;
            let idx: Vec<usize> = (0..cfg.batch.min(n))
                .map(|k| order[(start + k) % n])
                .collect();
            let x = g.input(feats.index_select0(&idx));
            let y = g.input(targets.index_select0(&idx));
            let pred = model.head.forward(g, g.relu(model.trunk.forward(g, x)));
            g.mse(pred, y)
        });
        model
    }
}

impl OdtOracle for StNn {
    fn name(&self) -> &'static str {
        "ST-NN"
    }

    fn predict_seconds(&self, odt: &OdtInput) -> f64 {
        let f = self.ctx.features(odt);
        let g = odt_tensor::Graph::new();
        let x = g.input(Tensor::from_vec(f[..4].to_vec(), vec![1, 4]));
        let out = g.value(self.head.forward(&g, g.relu(self.trunk.forward(&g, x))));
        (out.data()[0] as f64 * self.tt_std + self.tt_mean).max(0.0)
    }

    fn model_size_bytes(&self) -> usize {
        (self.trunk.num_params() + self.head.num_params()) * 4
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use odt_roadnet::{LngLat, Point, Projection};
    use odt_traj::{GpsPoint, GridSpec};

    pub(crate) fn ctx() -> OracleContext {
        OracleContext {
            grid: GridSpec::new(
                LngLat { lng: 0.0, lat: 0.0 },
                LngLat { lng: 0.3, lat: 0.3 },
                10,
            ),
            proj: Projection::new(LngLat {
                lng: 0.15,
                lat: 0.15,
            }),
        }
    }

    pub(crate) fn distance_world(ctx: &OracleContext, n: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|i| {
                let d = 1_000.0 + 173.0 * (i % 23) as f64;
                let angle = (i % 11) as f64;
                let (dx, dy) = (d * angle.cos(), d * angle.sin());
                let tt = d / 1_000.0 * 220.0;
                let t0 = 7.0 * 3_600.0 + (i % 400) as f64 * 60.0;
                Trajectory::new(vec![
                    GpsPoint {
                        loc: ctx.proj.to_lnglat(Point::new(0.0, 0.0)),
                        t: t0,
                    },
                    GpsPoint {
                        loc: ctx.proj.to_lnglat(Point::new(dx, dy)),
                        t: t0 + tt,
                    },
                ])
            })
            .collect()
    }

    #[test]
    fn learns_distance_time_relation() {
        let c = ctx();
        let trips = distance_world(&c, 300);
        let cfg = NeuralConfig {
            iters: 400,
            ..Default::default()
        };
        let m = StNn::fit(c, &trips, &cfg);
        let q = OdtInput {
            origin: c.proj.to_lnglat(Point::new(0.0, 0.0)),
            dest: c.proj.to_lnglat(Point::new(2_000.0, 0.0)),
            t_dep: 8.0 * 3_600.0,
        };
        let pred = m.predict_seconds(&q);
        assert!((pred - 440.0).abs() < 150.0, "pred {pred}, expected ~440");
    }

    #[test]
    fn prediction_ignores_departure_time() {
        let c = ctx();
        let trips = distance_world(&c, 100);
        let cfg = NeuralConfig {
            iters: 50,
            ..Default::default()
        };
        let m = StNn::fit(c, &trips, &cfg);
        let mk = |t_dep: f64| OdtInput {
            origin: c.proj.to_lnglat(Point::new(0.0, 0.0)),
            dest: c.proj.to_lnglat(Point::new(2_000.0, 0.0)),
            t_dep,
        };
        let a = m.predict_seconds(&mk(6.0 * 3_600.0));
        let b = m.predict_seconds(&mk(18.0 * 3_600.0));
        assert_eq!(a, b, "ST-NN takes no temporal input");
    }
}
