//! Gradient-boosted regression trees, from scratch — the paper's GBM
//! baseline ("a non-linear regression method, implemented using XGBoost").
//! This is a plain squared-loss gradient booster over depth-limited CART
//! trees, which captures the mechanism the paper credits GBM with: higher
//! capacity than LR without using trajectories.

use crate::common::{training_pairs, OdtOracle, OracleContext};
use odt_traj::{OdtInput, Trajectory};

/// Booster hyper-parameters.
#[derive(Clone, Debug)]
pub struct GbmConfig {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage.
    pub learning_rate: f64,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
}

impl Default for GbmConfig {
    fn default() -> Self {
        GbmConfig {
            n_trees: 60,
            max_depth: 4,
            learning_rate: 0.1,
            min_leaf: 8,
        }
    }
}

enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            Node::Leaf(v) => *v,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if x[*feature] <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }

    fn count(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Split { left, right, .. } => 1 + left.count() + right.count(),
        }
    }
}

/// Grow a CART regression tree on the residuals.
fn grow(
    xs: &[Vec<f64>],
    residuals: &[f64],
    indices: &[usize],
    depth: usize,
    cfg: &GbmConfig,
) -> Node {
    let mean = indices.iter().map(|&i| residuals[i]).sum::<f64>() / indices.len() as f64;
    if depth >= cfg.max_depth || indices.len() < 2 * cfg.min_leaf {
        return Node::Leaf(mean);
    }
    let n_features = xs[0].len();
    let base_sse: f64 = indices.iter().map(|&i| (residuals[i] - mean).powi(2)).sum();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)

    for f in 0..n_features {
        // Sort candidate indices by this feature.
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_by(|&a, &b| xs[a][f].total_cmp(&xs[b][f]));
        // Prefix sums of residuals for O(1) split evaluation.
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        let mut prefix_sq = Vec::with_capacity(sorted.len() + 1);
        prefix.push(0.0);
        prefix_sq.push(0.0);
        for &i in &sorted {
            prefix.push(prefix.last().unwrap() + residuals[i]);
            prefix_sq.push(prefix_sq.last().unwrap() + residuals[i] * residuals[i]);
        }
        let total = *prefix.last().unwrap();
        let total_sq = *prefix_sq.last().unwrap();
        for split in cfg.min_leaf..sorted.len() - cfg.min_leaf + 1 {
            if split >= sorted.len() {
                break;
            }
            // Skip ties: threshold must separate distinct values.
            if xs[sorted[split - 1]][f] == xs[sorted[split]][f] {
                continue;
            }
            let nl = split as f64;
            let nr = (sorted.len() - split) as f64;
            let sl = prefix[split];
            let sr = total - sl;
            let sse =
                (prefix_sq[split] - sl * sl / nl) + ((total_sq - prefix_sq[split]) - sr * sr / nr);
            if best.as_ref().map_or(sse < base_sse - 1e-12, |b| sse < b.2) {
                let threshold = (xs[sorted[split - 1]][f] + xs[sorted[split]][f]) / 2.0;
                best = Some((f, threshold, sse));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        return Node::Leaf(mean);
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        indices.iter().partition(|&&i| xs[i][feature] <= threshold);
    if left_idx.len() < cfg.min_leaf || right_idx.len() < cfg.min_leaf {
        return Node::Leaf(mean);
    }
    Node::Split {
        feature,
        threshold,
        left: Box::new(grow(xs, residuals, &left_idx, depth + 1, cfg)),
        right: Box::new(grow(xs, residuals, &right_idx, depth + 1, cfg)),
    }
}

/// The boosted ensemble.
pub struct Gbm {
    ctx: OracleContext,
    base: f64,
    trees: Vec<Node>,
    lr: f64,
}

impl Gbm {
    /// Fit with default hyper-parameters.
    pub fn fit(ctx: OracleContext, trips: &[Trajectory]) -> Self {
        Self::fit_with(ctx, trips, &GbmConfig::default())
    }

    /// Fit with explicit hyper-parameters.
    pub fn fit_with(ctx: OracleContext, trips: &[Trajectory], cfg: &GbmConfig) -> Self {
        let pairs = training_pairs(trips);
        assert!(!pairs.is_empty(), "GBM needs training data");
        let xs: Vec<Vec<f64>> = pairs
            .iter()
            .map(|(odt, _)| ctx.features(odt).iter().map(|&v| v as f64).collect())
            .collect();
        let ys: Vec<f64> = pairs.iter().map(|(_, y)| *y).collect();
        let base = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut preds = vec![base; ys.len()];
        let mut trees = Vec::with_capacity(cfg.n_trees);
        let all: Vec<usize> = (0..ys.len()).collect();
        for _ in 0..cfg.n_trees {
            let residuals: Vec<f64> = ys.iter().zip(&preds).map(|(y, p)| y - p).collect();
            let tree = grow(&xs, &residuals, &all, 0, cfg);
            for (i, p) in preds.iter_mut().enumerate() {
                *p += cfg.learning_rate * tree.predict(&xs[i]);
            }
            trees.push(tree);
        }
        Gbm {
            ctx,
            base,
            trees,
            lr: cfg.learning_rate,
        }
    }
}

impl OdtOracle for Gbm {
    fn name(&self) -> &'static str {
        "GBM"
    }

    fn predict_seconds(&self, odt: &OdtInput) -> f64 {
        let x: Vec<f64> = self.ctx.features(odt).iter().map(|&v| v as f64).collect();
        let mut y = self.base;
        for t in &self.trees {
            y += self.lr * t.predict(&x);
        }
        y.max(0.0)
    }

    fn model_size_bytes(&self) -> usize {
        // Each node ~ feature id + threshold + two pointers ≈ 24 bytes.
        self.trees.iter().map(|t| t.count() * 24).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_roadnet::{LngLat, Point, Projection};
    use odt_traj::{GpsPoint, GridSpec};

    fn ctx() -> OracleContext {
        OracleContext {
            grid: GridSpec::new(
                LngLat { lng: 0.0, lat: 0.0 },
                LngLat { lng: 0.3, lat: 0.3 },
                10,
            ),
            proj: Projection::new(LngLat {
                lng: 0.15,
                lat: 0.15,
            }),
        }
    }

    /// A non-linear world: rush-hour trips take twice as long.
    fn nonlinear_world(ctx: &OracleContext, n: usize) -> Vec<Trajectory> {
        (0..n)
            .map(|i| {
                let d = 1_000.0 + 97.0 * (i % 29) as f64;
                let hour = (i % 17) as f64 + 5.0;
                let rush = (7.5..9.5).contains(&hour);
                let tt = d / 1_000.0 * if rush { 400.0 } else { 200.0 };
                let t0 = hour * 3_600.0;
                Trajectory::new(vec![
                    GpsPoint {
                        loc: ctx.proj.to_lnglat(Point::new(0.0, 0.0)),
                        t: t0,
                    },
                    GpsPoint {
                        loc: ctx.proj.to_lnglat(Point::new(d, 0.0)),
                        t: t0 + tt,
                    },
                ])
            })
            .collect()
    }

    #[test]
    fn captures_nonlinear_rush_hour() {
        let c = ctx();
        let gbm = Gbm::fit(c, &nonlinear_world(&c, 400));
        let mk = |hour: f64| OdtInput {
            origin: c.proj.to_lnglat(Point::new(0.0, 0.0)),
            dest: c.proj.to_lnglat(Point::new(2_000.0, 0.0)),
            t_dep: hour * 3_600.0,
        };
        let rush = gbm.predict_seconds(&mk(8.0));
        let free = gbm.predict_seconds(&mk(13.0));
        assert!(
            rush > free * 1.5,
            "rush {rush:.0}s should be far above free-flow {free:.0}s"
        );
        assert!((free - 400.0).abs() < 120.0, "free {free}");
    }

    #[test]
    fn beats_constant_predictor_in_training_fit() {
        let c = ctx();
        let trips = nonlinear_world(&c, 300);
        let gbm = Gbm::fit(c, &trips);
        let mean = trips.iter().map(|t| t.travel_time()).sum::<f64>() / trips.len() as f64;
        let (mut sse_gbm, mut sse_mean) = (0.0, 0.0);
        for t in &trips {
            let odt = OdtInput::from_trajectory(t);
            sse_gbm += (gbm.predict_seconds(&odt) - t.travel_time()).powi(2);
            sse_mean += (mean - t.travel_time()).powi(2);
        }
        assert!(
            sse_gbm < sse_mean * 0.25,
            "gbm {sse_gbm:.0} vs mean {sse_mean:.0}"
        );
    }

    #[test]
    fn depth_zero_equivalent_yields_mean() {
        let c = ctx();
        let trips = nonlinear_world(&c, 100);
        let cfg = GbmConfig {
            n_trees: 1,
            max_depth: 0,
            learning_rate: 1.0,
            min_leaf: 1,
        };
        let gbm = Gbm::fit_with(c, &trips, &cfg);
        let mean = trips.iter().map(|t| t.travel_time()).sum::<f64>() / trips.len() as f64;
        let odt = OdtInput::from_trajectory(&trips[0]);
        // Base + single leaf of residual mean (≈ 0) = global mean.
        assert!((gbm.predict_seconds(&odt) - mean).abs() < 1e-6);
    }
}
