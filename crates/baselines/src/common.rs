//! Shared oracle interface and feature context.

use odt_roadnet::Projection;
use odt_traj::{GridSpec, OdtInput, Trajectory};

/// Shared context for feature extraction: the grid fixes the coordinate
/// normalization and the projection provides metric distances.
#[derive(Copy, Clone, Debug)]
pub struct OracleContext {
    /// The dataset grid (bounding box + `L_G`).
    pub grid: GridSpec,
    /// Meters↔degrees projection.
    pub proj: Projection,
}

impl OracleContext {
    /// Crow-fly OD distance in meters.
    pub fn od_distance_m(&self, odt: &OdtInput) -> f64 {
        self.proj
            .to_point(odt.origin)
            .distance(&self.proj.to_point(odt.dest))
    }

    /// The standard regression feature vector: normalized origin/dest
    /// coordinates, time-of-day as sin/cos, crow-fly distance in km.
    pub fn features(&self, odt: &OdtInput) -> Vec<f32> {
        let base = odt.features(self.grid.min, self.grid.max);
        let sod = odt.second_of_day() / 86_400.0 * std::f64::consts::TAU;
        vec![
            base[0],
            base[1],
            base[2],
            base[3],
            sod.sin() as f32,
            sod.cos() as f32,
            (self.od_distance_m(odt) / 1_000.0) as f32,
        ]
    }

    /// Grid cell of the origin, as a flat row-major index.
    pub fn origin_cell(&self, odt: &OdtInput) -> usize {
        let (r, c) = self.grid.cell_of(odt.origin);
        self.grid.flat_index(r, c)
    }

    /// Grid cell of the destination, as a flat row-major index.
    pub fn dest_cell(&self, odt: &OdtInput) -> usize {
        let (r, c) = self.grid.cell_of(odt.dest);
        self.grid.flat_index(r, c)
    }
}

/// An ODT-Oracle: predicts travel time (seconds) from an ODT-Input (Eq. 1's
/// `Δt` output; the PiT output is specific to DOT).
pub trait OdtOracle {
    /// Method name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Predicted travel time in seconds.
    fn predict_seconds(&self, odt: &OdtInput) -> f64;

    /// Approximate in-memory model size in bytes (Table 5's "model size").
    fn model_size_bytes(&self) -> usize;
}

/// Supervised training pairs from trajectories: (ODT-Input, seconds).
pub fn training_pairs(trips: &[Trajectory]) -> Vec<(OdtInput, f64)> {
    trips
        .iter()
        .map(|t| (OdtInput::from_trajectory(t), t.travel_time()))
        .collect()
}

/// Mean/std of the travel times, for target normalization.
pub fn target_stats(trips: &[Trajectory]) -> (f64, f64) {
    let n = trips.len().max(1) as f64;
    let mean = trips.iter().map(Trajectory::travel_time).sum::<f64>() / n;
    let var = trips
        .iter()
        .map(|t| (t.travel_time() - mean).powi(2))
        .sum::<f64>()
        / n;
    (mean, var.sqrt().max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_roadnet::LngLat;
    use odt_traj::GpsPoint;

    fn ctx() -> OracleContext {
        OracleContext {
            grid: GridSpec::new(
                LngLat {
                    lng: 104.0,
                    lat: 30.0,
                },
                LngLat {
                    lng: 104.2,
                    lat: 30.2,
                },
                10,
            ),
            proj: Projection::new(LngLat {
                lng: 104.1,
                lat: 30.1,
            }),
        }
    }

    #[test]
    fn features_have_expected_layout() {
        let c = ctx();
        let odt = OdtInput {
            origin: LngLat {
                lng: 104.0,
                lat: 30.0,
            },
            dest: LngLat {
                lng: 104.2,
                lat: 30.2,
            },
            t_dep: 21_600.0, // 6:00
        };
        let f = c.features(&odt);
        assert_eq!(f.len(), 7);
        assert_eq!(f[0], -1.0); // origin at min corner
        assert_eq!(f[3], 1.0); // dest at max corner
        assert!(f[6] > 10.0, "diagonal of a ~20km box, got {} km", f[6]);
    }

    #[test]
    fn cells_differ_for_distinct_endpoints() {
        let c = ctx();
        let odt = OdtInput {
            origin: LngLat {
                lng: 104.01,
                lat: 30.01,
            },
            dest: LngLat {
                lng: 104.19,
                lat: 30.19,
            },
            t_dep: 0.0,
        };
        assert_ne!(c.origin_cell(&odt), c.dest_cell(&odt));
        assert!(c.origin_cell(&odt) < 100);
    }

    #[test]
    fn target_stats_sane() {
        let p = Projection::new(LngLat { lng: 0.0, lat: 0.0 });
        let mk = |tt: f64| {
            Trajectory::new(vec![
                GpsPoint {
                    loc: p.to_lnglat(odt_roadnet::Point::new(0.0, 0.0)),
                    t: 0.0,
                },
                GpsPoint {
                    loc: p.to_lnglat(odt_roadnet::Point::new(1000.0, 0.0)),
                    t: tt,
                },
            ])
        };
        let trips = vec![mk(600.0), mk(1200.0)];
        let (mean, std) = target_stats(&trips);
        assert_eq!(mean, 900.0);
        assert_eq!(std, 300.0);
    }
}
