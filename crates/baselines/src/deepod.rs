//! DeepOD (Yuan et al., SIGMOD 2020): "incorporates the correlation between
//! ODT-Inputs and travel trajectories from history through an auxiliary
//! loss during training" — an OD-representation network whose embedding is
//! pulled toward a trajectory encoder's embedding of the affiliated trip.
//!
//! The paper's central criticism (Introduction): outlier trajectories like
//! `T_4` still participate in training, dragging the OD representation —
//! and therefore the prediction — toward the outlier's travel time.

use crate::common::{target_stats, OdtOracle, OracleContext};
use crate::mlp::{train_adam, Mlp};
use crate::pathbased::{resample_by_arclength, PATH_STEPS};
use crate::stnn::NeuralConfig;
use odt_nn::{Embedding, Gru, HasParams};
use odt_tensor::{Graph, Tensor, Var};
use odt_traj::{OdtInput, Trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CELL_DIM: usize = 12;

/// The DeepOD oracle.
pub struct DeepOd {
    ctx: OracleContext,
    cell_emb: Embedding,
    od_net: Mlp,   // [7 + 2*CELL_DIM] -> hidden -> rep
    traj_enc: Gru, // 3 features per resampled point -> rep
    head: Mlp,     // rep -> 1
    tt_mean: f64,
    tt_std: f64,
    /// Weight of the auxiliary representation-matching loss.
    lambda: f32,
}

impl DeepOd {
    fn od_rep(&self, g: &Graph, odts: &[OdtInput]) -> Var {
        let n = odts.len();
        let mut feats = Tensor::zeros(vec![n, 7]);
        let mut ocells = Vec::with_capacity(n);
        let mut dcells = Vec::with_capacity(n);
        for (i, odt) in odts.iter().enumerate() {
            for (j, &v) in self.ctx.features(odt).iter().enumerate() {
                feats.set(&[i, j], v);
            }
            ocells.push(self.ctx.origin_cell(odt));
            dcells.push(self.ctx.dest_cell(odt));
        }
        let x = g.input(feats);
        let eo = self.cell_emb.forward(g, &ocells);
        let ed = self.cell_emb.forward(g, &dcells);
        self.od_net.forward(g, g.concat(&[x, eo, ed], 1))
    }

    fn traj_features(&self, t: &Trajectory) -> Tensor {
        let pts: Vec<odt_roadnet::Point> = t
            .points
            .iter()
            .map(|p| self.ctx.proj.to_point(p.loc))
            .collect();
        let resampled = resample_by_arclength(&pts, PATH_STEPS);
        let min = self.ctx.proj.to_point(self.ctx.grid.min);
        let max = self.ctx.proj.to_point(self.ctx.grid.max);
        let mut out = Tensor::zeros(vec![PATH_STEPS, 3]);
        for (i, (p, frac)) in resampled.iter().enumerate() {
            out.set(
                &[i, 0],
                (2.0 * (p.x - min.x) / (max.x - min.x) - 1.0) as f32,
            );
            out.set(
                &[i, 1],
                (2.0 * (p.y - min.y) / (max.y - min.y) - 1.0) as f32,
            );
            out.set(&[i, 2], (*frac * 2.0 - 1.0) as f32);
        }
        out
    }

    /// Fit with the main (travel time) + auxiliary (representation
    /// matching) loss combination.
    pub fn fit(ctx: OracleContext, trips: &[Trajectory], cfg: &NeuralConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let rep = cfg.hidden / 2;
        let cell_emb = Embedding::new(&mut rng, ctx.grid.num_cells(), CELL_DIM, "deepod.cell");
        let od_net = Mlp::new(&mut rng, &[7 + 2 * CELL_DIM, cfg.hidden, rep], "deepod.od");
        let traj_enc = Gru::new(&mut rng, 3, rep, "deepod.traj");
        let head = Mlp::new(&mut rng, &[rep, cfg.hidden, 1], "deepod.head");
        let (tt_mean, tt_std) = target_stats(trips);
        let model = DeepOd {
            ctx,
            cell_emb,
            od_net,
            traj_enc,
            head,
            tt_mean,
            tt_std,
            lambda: 0.5,
        };

        let odts: Vec<OdtInput> = trips.iter().map(OdtInput::from_trajectory).collect();
        let traj_feats: Vec<Tensor> = trips.iter().map(|t| model.traj_features(t)).collect();
        let targets: Vec<f32> = trips
            .iter()
            .map(|t| ((t.travel_time() - tt_mean) / tt_std) as f32)
            .collect();

        let mut params = model.cell_emb.params();
        params.extend(model.od_net.params());
        params.extend(model.traj_enc.params());
        params.extend(model.head.params());
        let n = trips.len();
        let batch = cfg.batch.min(16);
        train_adam(params, cfg.lr, cfg.iters, |g, it| {
            let idx: Vec<usize> = (0..batch).map(|k| (it * batch + k * 3) % n).collect();
            let batch_odts: Vec<OdtInput> = idx.iter().map(|&i| odts[i]).collect();
            let z_od = model.od_rep(g, &batch_odts); // [b, rep]
                                                     // Trajectory encodings, one GRU pass per sample, stacked.
            let encs: Vec<Var> = idx
                .iter()
                .map(|&i| {
                    let x = g.reshape(g.input(traj_feats[i].clone()), vec![1, PATH_STEPS, 3]);
                    model.traj_enc.forward_last(g, x)
                })
                .collect();
            let z_traj = g.concat(&encs, 0); // [b, rep]
                                             // Main loss on travel time from the OD representation.
            let pred = model.head.forward(g, z_od);
            let y = g.input(Tensor::from_vec(
                idx.iter().map(|&i| targets[i]).collect(),
                vec![batch, 1],
            ));
            let main = g.mse(pred, y);
            // Auxiliary loss: match the two representations (trajectory side
            // detached, as the trajectory is the teacher).
            let aux = g.mse(z_od, g.detach(z_traj));
            g.add(main, g.scale(aux, model.lambda))
        });
        model
    }
}

impl OdtOracle for DeepOd {
    fn name(&self) -> &'static str {
        "DeepOD"
    }

    fn predict_seconds(&self, odt: &OdtInput) -> f64 {
        let g = Graph::new();
        let z = self.od_rep(&g, std::slice::from_ref(odt));
        let out = g.value(self.head.forward(&g, z));
        (out.data()[0] as f64 * self.tt_std + self.tt_mean).max(0.0)
    }

    fn model_size_bytes(&self) -> usize {
        (self.cell_emb.num_params()
            + self.od_net.num_params()
            + self.traj_enc.num_params()
            + self.head.num_params())
            * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stnn::tests::{ctx, distance_world};
    use odt_roadnet::Point;

    #[test]
    fn learns_distance_relation() {
        let c = ctx();
        let trips = distance_world(&c, 200);
        let cfg = NeuralConfig {
            iters: 200,
            ..Default::default()
        };
        let m = DeepOd::fit(c, &trips, &cfg);
        let mk = |d: f64| OdtInput {
            origin: c.proj.to_lnglat(Point::new(0.0, 0.0)),
            dest: c.proj.to_lnglat(Point::new(d, 0.0)),
            t_dep: 9.0 * 3_600.0,
        };
        let short = m.predict_seconds(&mk(1_200.0));
        let long = m.predict_seconds(&mk(3_400.0));
        assert!(long > short, "long {long:.0} vs short {short:.0}");
    }

    #[test]
    fn predictions_finite_and_nonnegative() {
        let c = ctx();
        let trips = distance_world(&c, 60);
        let cfg = NeuralConfig {
            iters: 20,
            ..Default::default()
        };
        let m = DeepOd::fit(c, &trips, &cfg);
        let odt = OdtInput {
            origin: c.proj.to_lnglat(Point::new(-10_000.0, 0.0)), // out of grid
            dest: c.proj.to_lnglat(Point::new(10_000.0, 0.0)),
            t_dep: 0.0,
        };
        let p = m.predict_seconds(&odt);
        assert!(p.is_finite() && p >= 0.0);
    }
}
