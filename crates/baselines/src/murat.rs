//! MURAT (Li et al., KDD 2018): "extends the input features with embeddings
//! from road segments, spatial cells, and temporal slots" and "jointly
//! predicts the travel distance and travel time given origin, destination
//! and departure time."

use crate::common::{target_stats, OdtOracle, OracleContext};
use crate::mlp::{train_adam, Mlp};
use crate::stnn::NeuralConfig;
use odt_nn::{Embedding, HasParams};
use odt_tensor::{Graph, Tensor};
use odt_traj::{OdtInput, Trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CELL_DIM: usize = 12;
const SLOT_DIM: usize = 8;
const SLOTS: usize = 24;

/// The MURAT oracle: coordinate features + spatial-cell embeddings +
/// temporal-slot embeddings feeding a multi-task MLP.
pub struct Murat {
    ctx: OracleContext,
    cell_emb: Embedding,
    slot_emb: Embedding,
    net: Mlp, // [7 + 2*CELL_DIM + SLOT_DIM] -> hidden -> 2 (time, dist)
    tt_mean: f64,
    tt_std: f64,
}

impl Murat {
    fn slot(odt: &OdtInput) -> usize {
        ((odt.second_of_day() / 3_600.0) as usize).min(SLOTS - 1)
    }

    fn assemble(&self, g: &Graph, odts: &[OdtInput]) -> odt_tensor::Var {
        let n = odts.len();
        let mut feats = Tensor::zeros(vec![n, 7]);
        let mut ocells = Vec::with_capacity(n);
        let mut dcells = Vec::with_capacity(n);
        let mut slots = Vec::with_capacity(n);
        for (i, odt) in odts.iter().enumerate() {
            for (j, &v) in self.ctx.features(odt).iter().enumerate() {
                feats.set(&[i, j], v);
            }
            ocells.push(self.ctx.origin_cell(odt));
            dcells.push(self.ctx.dest_cell(odt));
            slots.push(Self::slot(odt));
        }
        let x = g.input(feats);
        let eo = self.cell_emb.forward(g, &ocells);
        let ed = self.cell_emb.forward(g, &dcells);
        let es = self.slot_emb.forward(g, &slots);
        g.concat(&[x, eo, ed, es], 1)
    }

    /// Fit on the training split.
    pub fn fit(ctx: OracleContext, trips: &[Trajectory], cfg: &NeuralConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let cells = ctx.grid.num_cells();
        let cell_emb = Embedding::new(&mut rng, cells, CELL_DIM, "murat.cell");
        let slot_emb = Embedding::new(&mut rng, SLOTS, SLOT_DIM, "murat.slot");
        let in_dim = 7 + 2 * CELL_DIM + SLOT_DIM;
        let net = Mlp::new(&mut rng, &[in_dim, cfg.hidden, cfg.hidden, 2], "murat.net");
        let (tt_mean, tt_std) = target_stats(trips);
        let model = Murat {
            ctx,
            cell_emb,
            slot_emb,
            net,
            tt_mean,
            tt_std,
        };

        let n = trips.len();
        let odts: Vec<OdtInput> = trips.iter().map(OdtInput::from_trajectory).collect();
        let mut targets = Tensor::zeros(vec![n, 2]);
        for (i, t) in trips.iter().enumerate() {
            targets.set(&[i, 0], ((t.travel_time() - tt_mean) / tt_std) as f32);
            targets.set(&[i, 1], (t.travel_distance(&ctx.proj) / 5_000.0) as f32);
        }

        let mut params = model.net.params();
        params.extend(model.cell_emb.params());
        params.extend(model.slot_emb.params());
        train_adam(params, cfg.lr, cfg.iters, |g, it| {
            let start = (it * cfg.batch) % n;
            let idx: Vec<usize> = (0..cfg.batch.min(n))
                .map(|k| (start + k * 13) % n)
                .collect();
            let batch_odts: Vec<OdtInput> = idx.iter().map(|&i| odts[i]).collect();
            let x = model.assemble(g, &batch_odts);
            let y = g.input(targets.index_select0(&idx));
            g.mse(model.net.forward(g, x), y)
        });
        model
    }
}

impl OdtOracle for Murat {
    fn name(&self) -> &'static str {
        "MURAT"
    }

    fn predict_seconds(&self, odt: &OdtInput) -> f64 {
        let g = Graph::new();
        let x = self.assemble(&g, std::slice::from_ref(odt));
        let out = g.value(self.net.forward(&g, x));
        (out.data()[0] as f64 * self.tt_std + self.tt_mean).max(0.0)
    }

    fn model_size_bytes(&self) -> usize {
        (self.net.num_params() + self.cell_emb.num_params() + self.slot_emb.num_params()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stnn::tests::{ctx, distance_world};
    use odt_roadnet::Point;

    #[test]
    fn learns_and_uses_departure_time() {
        let c = ctx();
        // World where rush hour doubles travel time.
        let trips: Vec<Trajectory> = distance_world(&c, 300)
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                if i % 2 == 0 {
                    // Shift to rush hour and double duration.
                    let mut pts = t.points.clone();
                    let t0 = 8.0 * 3_600.0;
                    let dt = (pts[1].t - pts[0].t) * 2.0;
                    pts[0].t = t0;
                    pts[1].t = t0 + dt;
                    Trajectory::new(pts)
                } else {
                    t
                }
            })
            .collect();
        let cfg = NeuralConfig {
            iters: 600,
            ..Default::default()
        };
        let m = Murat::fit(c, &trips, &cfg);
        let mk = |t_dep: f64| OdtInput {
            origin: c.proj.to_lnglat(Point::new(0.0, 0.0)),
            dest: c.proj.to_lnglat(Point::new(2_000.0, 0.0)),
            t_dep,
        };
        let rush = m.predict_seconds(&mk(8.2 * 3_600.0));
        let free = m.predict_seconds(&mk(13.0 * 3_600.0));
        assert!(rush > free * 1.2, "rush {rush:.0} vs free {free:.0}");
    }

    #[test]
    fn model_size_includes_embeddings() {
        let c = ctx();
        let trips = distance_world(&c, 60);
        let cfg = NeuralConfig {
            iters: 10,
            ..Default::default()
        };
        let m = Murat::fit(c, &trips, &cfg);
        // Cell table alone: 100 cells * 12 dims * 4 bytes.
        assert!(m.model_size_bytes() > 100 * 12 * 4);
    }
}
