//! Quickstart: train a small DOT oracle on a synthetic city and query it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use odt::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Data. The simulator stands in for the paper's Didi taxi datasets:
    //    a grid city with rush-hour congestion, hotspot demand, and a small
    //    fraction of outlier detour trips (see DESIGN.md).
    println!("generating synthetic Chengdu-like trajectories…");
    let data = Dataset::chengdu_like(600, 12, 7);
    let stats = data.stats();
    println!(
        "  {} trips | mean travel time {:.1} min | mean distance {:.0} m",
        stats.num_trajectories, stats.mean_travel_time_min, stats.mean_travel_distance_m
    );

    // 2. Train the two-stage DOT pipeline (reduced scale for the demo).
    let mut cfg = DotConfig::fast();
    cfg.lg = 12;
    cfg.n_steps = 20;
    cfg.stage1_iters = 300;
    cfg.stage2_iters = 300;
    cfg.early_stop_samples = 8;
    cfg.early_stop_every = 100;
    println!("training DOT (stage 1: diffusion denoiser; stage 2: MViT)…");
    let model = Dot::train(cfg, &data, |msg| {
        if msg.contains("stage") && !msg.contains("iter") {
            println!("  {msg}");
        }
    });

    // 3. Query the oracle on unseen test trips: Eq. 1, odt -> (Δt, PiT).
    let mut rng = StdRng::seed_from_u64(42);
    println!("\nquerying the oracle on 5 unseen test trips:");
    for trip in data.split(Split::Test).iter().take(5) {
        let query = OdtInput::from_trajectory(trip);
        let estimate = model.estimate(&query, &mut rng);
        println!(
            "  predicted {:>5.1} min | actual {:>5.1} min | inferred PiT visits {} cells",
            estimate.seconds / 60.0,
            trip.travel_time() / 60.0,
            estimate.pit.num_visited(),
        );
    }
    println!("\n(see examples/explainability.rs for PiT visualizations)");
}
