//! Explainability: the oracle returns not just a travel time but the PiT it
//! inferred — "an intuitive overview of the future trip" (§6.6).
//!
//! Renders inferred PiTs as ASCII maps for the same OD pair at different
//! departure times (the paper's Figure 11 scenario).
//!
//! ```sh
//! cargo run --release --example explainability
//! ```

use odt::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// '·' unvisited; digits 0-9 encode visit order along the trip.
fn render(pit: &Pit) -> String {
    let mut out = String::new();
    for row in (0..pit.lg()).rev() {
        for col in 0..pit.lg() {
            if pit.is_visited(row, col) {
                let offset = pit.at(2, row, col);
                let digit = (((offset + 1.0) / 2.0 * 9.0).round() as u8).min(9);
                out.push(char::from(b'0' + digit));
            } else {
                out.push('·');
            }
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn main() {
    let data = Dataset::chengdu_like(600, 12, 7);
    let mut cfg = DotConfig::fast();
    cfg.lg = 12;
    cfg.n_steps = 20;
    cfg.stage1_iters = 400;
    cfg.stage2_iters = 300;
    cfg.early_stop_samples = 8;
    cfg.early_stop_every = 150;
    println!("training DOT…");
    let model = Dot::train(cfg, &data, |_| {});

    // Pick a real test trip, show truth vs inference.
    let trip = &data.split(Split::Test)[0];
    let truth = Pit::from_trajectory(trip, &data.grid);
    let query = OdtInput::from_trajectory(trip);
    let mut rng = StdRng::seed_from_u64(3);
    let est = model.estimate(&query, &mut rng);

    println!(
        "\nground-truth PiT (actual {:.1} min):",
        trip.travel_time() / 60.0
    );
    println!("{}", render(&truth));
    println!("inferred PiT (estimated {:.1} min):", est.seconds / 60.0);
    println!("{}", render(&est.pit));

    // Figure 11: same OD pair, different departure times.
    let day0 = query.t_dep - query.second_of_day();
    println!("same OD pair at different departure times:");
    for hour in [8.5f64, 14.0, 18.0] {
        let q = OdtInput {
            t_dep: day0 + hour * 3_600.0,
            ..query
        };
        let e = model.estimate(&q, &mut rng);
        println!(
            "\ndeparting {:04.1}h → estimated {:.1} min, route:",
            hour,
            e.seconds / 60.0
        );
        println!("{}", render(&e.pit));
    }
}
