//! Flex-transport pricing — the paper's motivating application.
//!
//! "In flex-transport, taxi companies are paid by a public entity for
//! making trips. The payments are based on pricing models that involve
//! estimating the travel times of trips, but the driver is free to choose
//! any travel path." (§1)
//!
//! A pricing model that averages historical travel times (TEMP) is polluted
//! by outlier detours; the DOT oracle removes them. This example prices a
//! batch of trips with both and compares billing error.
//!
//! ```sh
//! cargo run --release --example flex_transport_pricing
//! ```

use odt::baselines::{OdtOracle, OracleContext, Temp};
use odt::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fare model: base fee + per-minute rate on the *estimated* travel time.
fn fare(minutes: f64) -> f64 {
    2.50 + 0.85 * minutes
}

fn main() {
    // A city with a heavy outlier rate: 15% of drivers detour.
    let mut sim = odt::traj::sim::CitySimConfig::chengdu_like();
    sim.nx = 12;
    sim.ny = 12;
    sim.outlier_rate = 0.15;
    let data = Dataset::simulated(sim, 700, 12, 21);
    println!(
        "{} trips, {:.0}% are outlier detours by construction",
        data.trips.len(),
        15.0
    );

    // Train both pricing back-ends on the same history.
    let ctx = OracleContext {
        grid: data.grid,
        proj: data.proj,
    };
    let temp = Temp::fit(ctx, data.split(Split::Train));

    let mut cfg = DotConfig::fast();
    cfg.lg = 12;
    cfg.n_steps = 20;
    cfg.stage1_iters = 400;
    cfg.stage2_iters = 400;
    cfg.early_stop_samples = 8;
    cfg.early_stop_every = 150;
    println!("training the DOT oracle…");
    let dot = Dot::train(cfg, &data, |_| {});

    // Price the test-month trips. Ground truth fare uses actual times.
    let mut rng = StdRng::seed_from_u64(5);
    let (mut temp_err, mut dot_err, mut n) = (0.0, 0.0, 0);
    for trip in data.split(Split::Test).iter().take(40) {
        let q = OdtInput::from_trajectory(trip);
        let true_fare = fare(trip.travel_time() / 60.0);
        let temp_fare = fare(temp.predict_seconds(&q) / 60.0);
        let dot_fare = fare(dot.estimate(&q, &mut rng).seconds / 60.0);
        temp_err += (temp_fare - true_fare).abs();
        dot_err += (dot_fare - true_fare).abs();
        n += 1;
    }
    println!("\nmean absolute billing error over {n} trips:");
    println!(
        "  TEMP (history averaging): €{:.2} per trip",
        temp_err / n as f64
    );
    println!(
        "  DOT (diffusion oracle):   €{:.2} per trip",
        dot_err / n as f64
    );
    if dot_err < temp_err {
        println!("\nDOT prices closer to the true cost: outlier detours no longer inflate fares.");
    } else {
        println!("\n(at this tiny demo scale DOT did not win — rerun with more trips/iterations)");
    }
}
