//! Fleet scheduling with an ODT-Oracle — "transportation scheduling" from
//! the paper's intro applications (§1).
//!
//! A dispatcher must promise pickup windows for a sequence of jobs. The ETA
//! source determines how many promises are kept: a naive constant-speed
//! estimate vs the DOT oracle's congestion- and route-aware estimate.
//!
//! ```sh
//! cargo run --release --example fleet_scheduling
//! ```

use odt::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let data = Dataset::chengdu_like(700, 12, 31);
    let mut cfg = DotConfig::fast();
    cfg.lg = 12;
    cfg.n_steps = 20;
    cfg.stage1_iters = 400;
    cfg.stage2_iters = 400;
    cfg.early_stop_samples = 8;
    cfg.early_stop_every = 150;
    println!("training DOT…");
    let model = Dot::train(cfg, &data, |_| {});

    // Naive ETA: crow-fly distance at a fixed 18 km/h city speed.
    let proj = data.proj;
    let naive_eta = |q: &OdtInput| {
        let d = proj.to_point(q.origin).distance(&proj.to_point(q.dest));
        d / (18_000.0 / 3_600.0)
    };

    // Dispatch the test trips as jobs: each promises arrival within the
    // estimate + a 20% buffer. A promise is kept when the actual time fits.
    let buffer = 1.20;
    let mut rng = StdRng::seed_from_u64(8);
    let (mut naive_kept, mut dot_kept, mut naive_slack, mut dot_slack, mut n) =
        (0usize, 0usize, 0.0f64, 0.0f64, 0usize);
    for trip in data.split(Split::Test).iter().take(40) {
        let q = OdtInput::from_trajectory(trip);
        let actual = trip.travel_time();
        let ne = naive_eta(&q) * buffer;
        let de = model.estimate(&q, &mut rng).seconds * buffer;
        if actual <= ne {
            naive_kept += 1;
        }
        if actual <= de {
            dot_kept += 1;
        }
        // Slack = how much promised time is wasted when the promise holds.
        naive_slack += (ne - actual).max(0.0);
        dot_slack += (de - actual).max(0.0);
        n += 1;
    }
    println!("\n{n} pickup promises, 20% buffer on the ETA:");
    println!(
        "  naive constant-speed ETA: {:>2}/{} kept, avg over-promise {:.1} min",
        naive_kept,
        n,
        naive_slack / n as f64 / 60.0
    );
    println!(
        "  DOT oracle ETA:           {:>2}/{} kept, avg over-promise {:.1} min",
        dot_kept,
        n,
        dot_slack / n as f64 / 60.0
    );
    println!(
        "\nA good ETA keeps promises *without* large buffers: DOT should keep at \
         least as many promises with less wasted slack."
    );
}
